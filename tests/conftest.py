"""Shared fixtures for the test suite.

Fixtures are session-scoped where the underlying object is immutable and
expensive to build (datasets, engines, trained surrogates) so the suite stays
fast; tests must not mutate them.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest
from hypothesis import settings

# Make the frozen PR 4 serving monolith (tests/helpers/legacy_service.py)
# importable from every suite; the API equivalence tests and benchmark use it
# as the bit-identity / overhead baseline.
HELPERS_DIR = os.path.join(os.path.dirname(__file__), "helpers")
if HELPERS_DIR not in sys.path:
    sys.path.insert(0, HELPERS_DIR)

# One registration point for the Hypothesis profiles (the property files used
# to each register their own, with import order picking the winner).  The
# "repro" profile is the local default; "ci" additionally derandomises so the
# property suite replays the exact same examples on every CI run.  Select with
# the HYPOTHESIS_PROFILE environment variable.
settings.register_profile("repro", max_examples=60, deadline=None)
settings.register_profile("ci", max_examples=60, deadline=None, derandomize=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))

from repro.core.finder import SuRF
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.dataset import Dataset
from repro.data.statistics import AverageStatistic, CountStatistic
from repro.data.synthetic import SyntheticConfig, make_synthetic_dataset
from repro.optim.gso import GSOParameters
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload
from repro.ml.boosting import GradientBoostingRegressor


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_density_synthetic():
    """A small 2-D density dataset with a single planted region."""
    config = SyntheticConfig(
        statistic="density", dim=2, num_regions=1, num_points=2_500, random_state=42
    )
    return make_synthetic_dataset(config)


@pytest.fixture(scope="session")
def multi_region_synthetic():
    """A small 1-D density dataset with three planted regions."""
    config = SyntheticConfig(
        statistic="density", dim=1, num_regions=3, num_points=3_000, random_state=7
    )
    return make_synthetic_dataset(config)


@pytest.fixture(scope="session")
def aggregate_synthetic():
    """A small 2-D aggregate dataset with a single planted region."""
    config = SyntheticConfig(
        statistic="aggregate", dim=2, num_regions=1, num_points=2_500, random_state=5
    )
    return make_synthetic_dataset(config)


@pytest.fixture(scope="session")
def density_engine(small_density_synthetic):
    return DataEngine(small_density_synthetic.dataset, small_density_synthetic.statistic)


@pytest.fixture(scope="session")
def aggregate_engine(aggregate_synthetic):
    return DataEngine(aggregate_synthetic.dataset, aggregate_synthetic.statistic)


@pytest.fixture(scope="session")
def density_workload(density_engine):
    return generate_workload(density_engine, 400, random_state=0)


@pytest.fixture(scope="session")
def small_gso_parameters():
    """A tiny swarm configuration used wherever a full run is unnecessary."""
    return GSOParameters(
        num_particles=30,
        num_iterations=25,
        min_iterations=5,
        convergence_patience=8,
        random_state=0,
    )


@pytest.fixture(scope="session")
def fast_trainer():
    """A quick gradient-boosting trainer for surrogate tests."""
    return SurrogateTrainer(
        estimator=GradientBoostingRegressor(n_estimators=40, max_depth=4, random_state=0),
        random_state=0,
    )


@pytest.fixture(scope="session")
def fitted_surf(density_engine, density_workload, fast_trainer, small_gso_parameters, small_density_synthetic):
    """A SuRF finder fitted on the small density dataset."""
    finder = SuRF(
        trainer=fast_trainer,
        gso_parameters=small_gso_parameters,
        random_state=0,
    )
    sample = (
        density_engine.dataset.sample(500, random_state=0)
        .select_columns(density_engine.region_columns)
        .values
    )
    finder.fit(density_workload, data_sample=sample)
    return finder


@pytest.fixture(scope="session")
def density_query(small_density_synthetic):
    return RegionQuery(
        threshold=small_density_synthetic.suggested_threshold(),
        direction="above",
        size_penalty=4.0,
    )


@pytest.fixture(scope="session")
def simple_dataset():
    """A tiny hand-built dataset with known contents."""
    values = np.array(
        [
            [0.1, 0.1, 1.0],
            [0.2, 0.2, 2.0],
            [0.8, 0.8, 3.0],
            [0.9, 0.9, 4.0],
            [0.5, 0.5, 5.0],
        ]
    )
    return Dataset(values, ["x", "y", "value"])
