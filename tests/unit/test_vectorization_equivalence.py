"""Equivalence tests for the vectorised hot paths.

The vectorised GSO movement kernel, the batched PSO evaluation and the
engine's ``evaluate_batch`` are all required to produce *identical* results to
their per-particle / per-region counterparts — same RNG draw order, same
floating-point decisions, bit for bit.  These tests pin that contract,
including the edge cases the ISSUE calls out: all-infeasible swarms and
isolated particles.
"""

import numpy as np
import pytest

from repro.data.engine import DataEngine
from repro.data.regions import Region, random_region
from repro.data.statistics import AverageStatistic, CountStatistic, RatioStatistic
from repro.data.synthetic import make_synthetic_dataset
from repro.optim.gso import GlowwormSwarmOptimizer, GSOParameters
from repro.optim.pso import ParticleSwarmOptimizer, PSOParameters


def sphere(vector: np.ndarray) -> float:
    return -float(np.sum((vector - 0.5) ** 2))


def sphere_batch(matrix: np.ndarray) -> np.ndarray:
    return -np.sum((matrix - 0.5) ** 2, axis=1)


def gated(vector: np.ndarray) -> float:
    """Feasible only in a narrow band, so most particles start infeasible."""
    x = float(vector[0])
    if abs(x - 0.6) > 0.05:
        return -np.inf
    return 1.0 - abs(x - 0.6)


def infeasible_everywhere(vector: np.ndarray) -> float:
    return -np.inf


def run_gso(movement, objective, dim, seed, **kwargs):
    params = GSOParameters(
        num_particles=40,
        num_iterations=40,
        min_iterations=5,
        convergence_patience=8,
        random_state=seed,
    )
    optimizer = GlowwormSwarmOptimizer(
        objective, [0.0] * dim, [1.0] * dim, params, movement=movement, **kwargs
    )
    return optimizer.run()


def assert_identical_runs(first, second):
    assert np.array_equal(first.positions, second.positions)
    np.testing.assert_array_equal(first.fitness, second.fitness)
    assert np.array_equal(first.initial_positions, second.initial_positions)
    # assert_array_equal treats NaN entries (all-infeasible iterations) as equal.
    np.testing.assert_array_equal(first.mean_fitness_history, second.mean_fitness_history)
    np.testing.assert_array_equal(first.feasible_fraction_history, second.feasible_fraction_history)
    assert first.num_iterations == second.num_iterations
    assert first.converged == second.converged
    assert first.function_evaluations == second.function_evaluations


class TestGSOMovementEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_smooth_objective(self, seed):
        reference = run_gso("reference", sphere, 2, seed)
        vectorized = run_gso("vectorized", sphere, 2, seed)
        assert_identical_runs(reference, vectorized)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mostly_infeasible_objective_with_explorers(self, seed):
        """Isolated infeasible particles take identical random-walk draws."""
        reference = run_gso("reference", gated, 1, seed)
        vectorized = run_gso("vectorized", gated, 1, seed)
        assert_identical_runs(reference, vectorized)

    def test_all_infeasible_swarm(self):
        reference = run_gso("reference", infeasible_everywhere, 2, 0)
        vectorized = run_gso("vectorized", infeasible_everywhere, 2, 0)
        assert_identical_runs(reference, vectorized)
        assert not np.isfinite(vectorized.fitness).any()

    def test_isolated_particles_without_exploration_stay_put(self):
        """With exploration off, isolated particles freeze identically."""
        params = dict(
            num_particles=8,
            num_iterations=10,
            min_iterations=2,
            convergence_patience=3,
            explore_when_isolated=False,
            initial_radius=1e-6,  # nobody sees anybody
            random_state=0,
        )
        runs = []
        for movement in ("reference", "vectorized"):
            optimizer = GlowwormSwarmOptimizer(
                infeasible_everywhere,
                [0.0, 0.0],
                [1.0, 1.0],
                GSOParameters(**params),
                movement=movement,
            )
            runs.append(optimizer.run())
        assert_identical_runs(*runs)
        # Isolated particles never moved.
        assert np.array_equal(runs[1].positions, runs[1].initial_positions)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_selection_weights(self, seed):
        def weight(vector):
            return 100.0 if vector[0] > 0.5 else 0.01

        reference = run_gso("reference", sphere, 3, seed, selection_weight=weight)
        vectorized = run_gso("vectorized", sphere, 3, seed, selection_weight=weight)
        assert_identical_runs(reference, vectorized)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_zero_selection_weights_fall_back_to_uniform(self, seed):
        """All-zero weights hit the degenerate uniform-probability branch."""
        reference = run_gso("reference", sphere, 2, seed, selection_weight=lambda v: 0.0)
        vectorized = run_gso("vectorized", sphere, 2, seed, selection_weight=lambda v: 0.0)
        assert_identical_runs(reference, vectorized)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_batch_objective(self, seed):
        reference = run_gso("reference", sphere, 2, seed, batch_objective=sphere_batch)
        vectorized = run_gso("vectorized", sphere, 2, seed, batch_objective=sphere_batch)
        assert_identical_runs(reference, vectorized)

    def test_invalid_movement_mode_rejected(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            GlowwormSwarmOptimizer(sphere, [0.0], [1.0], movement="warp")


class TestPSOBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_objective_matches_scalar_exactly(self, seed):
        params = PSOParameters(num_particles=30, num_iterations=40, random_state=seed)
        scalar = ParticleSwarmOptimizer(sphere, [0.0, 0.0], [1.0, 1.0], params).run()
        params = PSOParameters(num_particles=30, num_iterations=40, random_state=seed)
        batched = ParticleSwarmOptimizer(
            sphere, [0.0, 0.0], [1.0, 1.0], params, batch_objective=sphere_batch
        ).run()
        assert np.array_equal(scalar.positions, batched.positions)
        np.testing.assert_array_equal(scalar.fitness, batched.fitness)
        assert scalar.mean_fitness_history == batched.mean_fitness_history
        assert scalar.function_evaluations == batched.function_evaluations

    def test_batch_nan_treated_as_infeasible(self):
        params = PSOParameters(num_particles=10, num_iterations=5, random_state=0)
        result = ParticleSwarmOptimizer(
            sphere,
            [0.0, 0.0],
            [1.0, 1.0],
            params,
            batch_objective=lambda m: np.full(m.shape[0], np.nan),
        ).run()
        assert not np.isfinite(result.fitness).any()


@pytest.fixture(scope="module")
def batch_synthetic():
    return make_synthetic_dataset(
        statistic="density", dim=2, num_regions=1, num_points=3_000, random_state=3
    )


@pytest.fixture(scope="module")
def batch_regions(batch_synthetic):
    engine = DataEngine(batch_synthetic.dataset, CountStatistic())
    rng = np.random.default_rng(7)
    bounds = engine.region_bounds()
    return [random_region(rng, bounds, 0.01, 0.3) for _ in range(200)]


class TestEngineBatchEquivalence:
    @pytest.mark.parametrize(
        "statistic_factory",
        [
            lambda: CountStatistic(),
            lambda: AverageStatistic(0),
            lambda: RatioStatistic(1, positive_value=0.5),
        ],
        ids=["count", "average", "ratio"],
    )
    def test_evaluate_batch_matches_scalar_loop(self, batch_synthetic, batch_regions, statistic_factory):
        engine = DataEngine(batch_synthetic.dataset, statistic_factory())
        regions = [
            region
            for region in batch_regions
            if region.dim == engine.region_dim
        ] or [
            Region(region.center[: engine.region_dim], region.half_lengths[: engine.region_dim])
            for region in batch_regions
        ]
        vectors = np.stack([region.to_vector() for region in regions])
        looped = np.asarray([engine.evaluate_vector(vector) for vector in vectors])
        batched = engine.evaluate_batch(vectors)
        assert np.array_equal(looped, batched)
        assert np.array_equal(looped, engine.evaluate_many(regions))

    def test_indexed_engine_matches_scan(self, batch_synthetic, batch_regions):
        scan = DataEngine(batch_synthetic.dataset, CountStatistic(), use_index=False)
        indexed = DataEngine(batch_synthetic.dataset, CountStatistic(), use_index=True)
        vectors = np.stack([region.to_vector() for region in batch_regions])
        assert np.array_equal(scan.evaluate_batch(vectors), indexed.evaluate_batch(vectors))

    def test_evaluation_counter_advances_by_batch_size(self, batch_synthetic, batch_regions):
        engine = DataEngine(batch_synthetic.dataset, CountStatistic())
        vectors = np.stack([region.to_vector() for region in batch_regions])
        engine.reset_evaluation_counter()
        engine.evaluate_batch(vectors)
        assert engine.num_evaluations == len(batch_regions)

    def test_empty_batch(self, batch_synthetic):
        engine = DataEngine(batch_synthetic.dataset, CountStatistic())
        assert engine.evaluate_batch(np.empty((0, 4))).shape == (0,)
        assert engine.evaluate_many([]).shape == (0,)

    def test_nonpositive_half_lengths_are_empty_regions(self, batch_synthetic):
        engine = DataEngine(batch_synthetic.dataset, CountStatistic())
        vectors = np.array([[0.5, 0.5, -0.1, 0.2], [0.5, 0.5, 0.0, 0.2]])
        np.testing.assert_array_equal(engine.evaluate_batch(vectors), [0.0, 0.0])

    def test_zero_half_length_on_a_data_point_is_still_empty(self):
        """A degenerate slab must not catch points sitting exactly on it."""
        from repro.data.dataset import Dataset

        dataset = Dataset(np.array([[0.5, 0.3], [0.2, 0.2]]), ["x", "y"])
        engine = DataEngine(dataset, CountStatistic())
        vectors = np.array([[0.5, 0.3, 0.0, 0.0], [0.5, 0.3, 0.1, 0.0]])
        np.testing.assert_array_equal(engine.evaluate_batch(vectors), [0.0, 0.0])

    def test_blocked_batch_matches_unblocked(self, batch_synthetic, batch_regions, monkeypatch):
        """Batches larger than the mask-memory cap are processed in row blocks."""
        # The blocking moved into the backends with the repro.backends
        # refactor, so the cap must be patched where the block loop reads it.
        import repro.backends.numpy_backend as numpy_backend_module

        engine = DataEngine(batch_synthetic.dataset, CountStatistic())
        vectors = np.stack([region.to_vector() for region in batch_regions])
        unblocked = engine.evaluate_batch(vectors)
        # Force a tiny block size so this batch spans many blocks.
        monkeypatch.setattr(
            numpy_backend_module, "MAX_MASK_ELEMENTS", 7 * batch_synthetic.dataset.num_rows
        )
        blocked = engine.evaluate_batch(vectors)
        assert np.array_equal(unblocked, blocked)
        assert len(batch_regions) > 7  # the patched cap really forces multiple blocks

    def test_bad_shape_rejected(self, batch_synthetic):
        from repro.exceptions import ValidationError

        engine = DataEngine(batch_synthetic.dataset, CountStatistic())
        with pytest.raises(ValidationError):
            engine.evaluate_batch(np.ones((3, 5)))

    def test_region_masks_match_region_mask(self, batch_synthetic, batch_regions):
        engine = DataEngine(batch_synthetic.dataset, CountStatistic())
        lowers = np.stack([region.lower for region in batch_regions])
        uppers = np.stack([region.upper for region in batch_regions])
        masks = engine.region_masks(lowers, uppers)
        for row, region in zip(masks[:25], batch_regions[:25]):
            assert np.array_equal(row, engine.region_mask(region))


class TestGridIndexBatch:
    def test_query_many_matches_query_indices(self, batch_synthetic, batch_regions):
        from repro.data.index import GridIndex

        engine = DataEngine(batch_synthetic.dataset, CountStatistic())
        index = GridIndex(batch_synthetic.dataset.values, cells_per_dim=8)
        lowers = np.stack([region.lower for region in batch_regions])
        uppers = np.stack([region.upper for region in batch_regions])
        batched = index.query_many(lowers, uppers)
        counts = index.count_many(lowers, uppers)
        for region, indices, count in zip(batch_regions, batched, counts):
            expected = index.query_indices(region)
            assert np.array_equal(np.sort(indices), np.sort(expected))
            assert count == expected.size
