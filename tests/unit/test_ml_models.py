"""Unit tests for the from-scratch regressors (tree, boosting, forest, knn, linear)."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import clone
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.metrics import root_mean_squared_error
from repro.ml.tree import DecisionTreeRegressor, bin_features


@pytest.fixture(scope="module")
def regression_problem():
    """A smooth nonlinear regression problem all models should handle."""
    rng = np.random.default_rng(0)
    features = rng.uniform(-1.0, 1.0, size=(600, 3))
    targets = (
        2.0 * features[:, 0]
        - 1.5 * features[:, 1] ** 2
        + np.sin(3 * features[:, 2])
        + rng.normal(0, 0.05, size=600)
    )
    split = 450
    return (features[:split], targets[:split], features[split:], targets[split:])


class TestBinning:
    def test_codes_shape_and_range(self, rng):
        features = rng.uniform(size=(100, 2))
        binned = bin_features(features, max_bins=16)
        assert binned.codes.shape == (100, 2)
        assert binned.codes.min() >= 0
        assert binned.codes.max() <= 15

    def test_constant_feature_single_bin(self):
        features = np.column_stack([np.full(50, 2.0), np.linspace(0, 1, 50)])
        binned = bin_features(features, max_bins=8)
        assert np.all(binned.codes[:, 0] == binned.codes[0, 0])

    def test_invalid_bins_rejected(self, rng):
        with pytest.raises(ValidationError):
            bin_features(rng.uniform(size=(10, 1)), max_bins=1)


class TestDecisionTree:
    def test_fits_step_function_exactly(self):
        features = np.linspace(0, 1, 200).reshape(-1, 1)
        targets = (features[:, 0] > 0.5).astype(float) * 10.0
        tree = DecisionTreeRegressor(max_depth=2).fit(features, targets)
        predictions = tree.predict(features)
        assert root_mean_squared_error(targets, predictions) < 0.5

    def test_depth_zero_predicts_mean(self):
        features = np.arange(10, dtype=float).reshape(-1, 1)
        targets = np.arange(10, dtype=float)
        tree = DecisionTreeRegressor(max_depth=0).fit(features, targets)
        np.testing.assert_allclose(tree.predict(features), targets.mean())

    def test_deeper_trees_fit_training_data_better(self, regression_problem):
        features, targets, _, _ = regression_problem
        shallow = DecisionTreeRegressor(max_depth=2).fit(features, targets)
        deep = DecisionTreeRegressor(max_depth=8).fit(features, targets)
        assert root_mean_squared_error(targets, deep.predict(features)) < root_mean_squared_error(
            targets, shallow.predict(features)
        )

    def test_min_samples_leaf_respected(self):
        features = np.linspace(0, 1, 40).reshape(-1, 1)
        targets = np.sin(6 * features[:, 0])
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=10).fit(features, targets)
        assert tree.num_leaves() <= 4

    def test_reported_depth_bounded_by_max_depth(self, regression_problem):
        features, targets, _, _ = regression_problem
        tree = DecisionTreeRegressor(max_depth=3).fit(features, targets)
        assert tree.depth() <= 3

    def test_constant_targets_yield_single_leaf(self):
        features = np.random.default_rng(1).uniform(size=(50, 2))
        targets = np.full(50, 7.0)
        tree = DecisionTreeRegressor(max_depth=5).fit(features, targets)
        assert tree.num_leaves() == 1
        np.testing.assert_allclose(tree.predict(features), 7.0)

    def test_reg_lambda_shrinks_leaf_values(self):
        features = np.zeros((4, 1)) + [[0.0], [0.0], [1.0], [1.0]]
        targets = np.array([0.0, 0.0, 10.0, 10.0])
        plain = DecisionTreeRegressor(max_depth=1, reg_lambda=0.0).fit(features, targets)
        shrunk = DecisionTreeRegressor(max_depth=1, reg_lambda=2.0).fit(features, targets)
        assert shrunk.predict(np.array([[1.0]]))[0] < plain.predict(np.array([[1.0]]))[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.ones((1, 2)))

    def test_feature_count_mismatch_raises(self, regression_problem):
        features, targets, _, _ = regression_problem
        tree = DecisionTreeRegressor(max_depth=2).fit(features, targets)
        with pytest.raises(ValidationError):
            tree.predict(np.ones((3, 5)))

    def test_invalid_hyper_parameters(self):
        with pytest.raises(ValidationError):
            DecisionTreeRegressor(max_depth=-1).fit(np.ones((5, 1)), np.ones(5))
        with pytest.raises(ValidationError):
            DecisionTreeRegressor(min_samples_split=1).fit(np.ones((5, 1)), np.ones(5))
        with pytest.raises(ValidationError):
            DecisionTreeRegressor(reg_lambda=-1).fit(np.ones((5, 1)), np.ones(5))


class TestGradientBoosting:
    def test_outperforms_single_tree(self, regression_problem):
        features, targets, test_features, test_targets = regression_problem
        tree = DecisionTreeRegressor(max_depth=3).fit(features, targets)
        boosted = GradientBoostingRegressor(n_estimators=60, max_depth=3, random_state=0).fit(features, targets)
        tree_rmse = root_mean_squared_error(test_targets, tree.predict(test_features))
        boosted_rmse = root_mean_squared_error(test_targets, boosted.predict(test_features))
        assert boosted_rmse < tree_rmse

    def test_training_score_decreases_monotonically_in_early_rounds(self, regression_problem):
        features, targets, _, _ = regression_problem
        model = GradientBoostingRegressor(n_estimators=30, max_depth=3, random_state=0).fit(features, targets)
        scores = model.train_scores_
        assert scores[5] < scores[0]
        assert scores[-1] <= scores[5]

    def test_early_stopping_limits_trees(self):
        # A noiseless step function is fitted perfectly after a few rounds, so the
        # validation score stops improving and early stopping kicks in.
        rng = np.random.default_rng(2)
        features = rng.uniform(size=(400, 1))
        targets = (features[:, 0] > 0.5).astype(float)
        model = GradientBoostingRegressor(
            n_estimators=300, max_depth=2, learning_rate=0.5, early_stopping_rounds=5, random_state=0
        ).fit(features, targets)
        assert model.num_trees_ < 300

    def test_staged_predict_final_matches_predict(self, regression_problem):
        features, targets, test_features, _ = regression_problem
        model = GradientBoostingRegressor(n_estimators=20, max_depth=3, random_state=0).fit(features, targets)
        staged = list(model.staged_predict(test_features))
        np.testing.assert_allclose(staged[-1], model.predict(test_features), rtol=1e-10)

    def test_subsample_produces_valid_model(self, regression_problem):
        features, targets, test_features, test_targets = regression_problem
        model = GradientBoostingRegressor(
            n_estimators=40, max_depth=3, subsample=0.6, random_state=0
        ).fit(features, targets)
        assert root_mean_squared_error(test_targets, model.predict(test_features)) < 1.0

    def test_reproducible_with_seed(self, regression_problem):
        features, targets, test_features, _ = regression_problem
        first = GradientBoostingRegressor(n_estimators=15, random_state=3).fit(features, targets)
        second = GradientBoostingRegressor(n_estimators=15, random_state=3).fit(features, targets)
        np.testing.assert_allclose(first.predict(test_features), second.predict(test_features))

    def test_invalid_learning_rate_rejected(self, regression_problem):
        features, targets, _, _ = regression_problem
        with pytest.raises(ValidationError):
            GradientBoostingRegressor(learning_rate=0.0).fit(features, targets)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GradientBoostingRegressor().predict(np.ones((2, 2)))

    def test_get_set_params_round_trip(self):
        model = GradientBoostingRegressor(n_estimators=10, max_depth=2)
        params = model.get_params()
        assert params["n_estimators"] == 10
        model.set_params(max_depth=7)
        assert model.get_params()["max_depth"] == 7

    def test_clone_returns_unfitted_copy(self, regression_problem):
        features, targets, _, _ = regression_problem
        model = GradientBoostingRegressor(n_estimators=5, random_state=0).fit(features, targets)
        copy = clone(model)
        assert copy.get_params()["n_estimators"] == 5
        with pytest.raises(NotFittedError):
            copy.predict(features)


class TestRandomForest:
    def test_learns_nonlinear_signal(self, regression_problem):
        features, targets, test_features, test_targets = regression_problem
        forest = RandomForestRegressor(n_estimators=30, max_depth=8, random_state=0).fit(features, targets)
        baseline = np.full_like(test_targets, targets.mean())
        assert root_mean_squared_error(test_targets, forest.predict(test_features)) < root_mean_squared_error(
            test_targets, baseline
        )

    def test_prediction_is_average_of_trees(self, regression_problem):
        features, targets, test_features, _ = regression_problem
        forest = RandomForestRegressor(n_estimators=5, max_depth=4, random_state=1).fit(features, targets)
        stacked = np.stack([tree.predict(test_features) for tree in forest._trees])
        np.testing.assert_allclose(forest.predict(test_features), stacked.mean(axis=0))

    def test_invalid_n_estimators(self, regression_problem):
        features, targets, _, _ = regression_problem
        with pytest.raises(ValidationError):
            RandomForestRegressor(n_estimators=0).fit(features, targets)


class TestKNN:
    def test_exact_neighbour_recovery(self):
        features = np.arange(10, dtype=float).reshape(-1, 1)
        targets = np.arange(10, dtype=float) * 2
        model = KNeighborsRegressor(n_neighbors=1).fit(features, targets)
        np.testing.assert_allclose(model.predict(features), targets)

    def test_uniform_average_of_neighbours(self):
        features = np.array([[0.0], [1.0], [2.0], [10.0]])
        targets = np.array([0.0, 1.0, 2.0, 100.0])
        model = KNeighborsRegressor(n_neighbors=3).fit(features, targets)
        assert model.predict(np.array([[1.0]]))[0] == pytest.approx(1.0)

    def test_distance_weighting_prefers_closer_points(self):
        features = np.array([[0.0], [1.0]])
        targets = np.array([0.0, 10.0])
        model = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(features, targets)
        assert model.predict(np.array([[0.1]]))[0] < 5.0

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValidationError):
            KNeighborsRegressor(weights="gaussian").fit(np.ones((3, 1)), np.ones(3))

    def test_k_larger_than_dataset_is_capped(self):
        features = np.array([[0.0], [1.0]])
        targets = np.array([2.0, 4.0])
        model = KNeighborsRegressor(n_neighbors=10).fit(features, targets)
        assert model.predict(np.array([[0.5]]))[0] == pytest.approx(3.0)


class TestLinearModels:
    def test_linear_regression_recovers_coefficients(self, rng):
        features = rng.uniform(-1, 1, size=(200, 2))
        targets = 3.0 * features[:, 0] - 2.0 * features[:, 1] + 0.5
        model = LinearRegression().fit(features, targets)
        np.testing.assert_allclose(model.coefficients_, [3.0, -2.0], atol=1e-8)
        assert model.intercept_ == pytest.approx(0.5, abs=1e-8)

    def test_linear_regression_without_intercept(self, rng):
        features = rng.uniform(-1, 1, size=(100, 1))
        targets = 2.0 * features[:, 0]
        model = LinearRegression(fit_intercept=False).fit(features, targets)
        assert model.intercept_ == 0.0
        np.testing.assert_allclose(model.coefficients_, [2.0], atol=1e-8)

    def test_ridge_shrinks_towards_zero(self, rng):
        features = rng.uniform(-1, 1, size=(50, 1))
        targets = 5.0 * features[:, 0]
        plain = RidgeRegression(alpha=0.0).fit(features, targets)
        heavy = RidgeRegression(alpha=100.0).fit(features, targets)
        assert abs(heavy.coefficients_[0]) < abs(plain.coefficients_[0])

    def test_ridge_alpha_zero_matches_ols(self, rng):
        features = rng.uniform(-1, 1, size=(80, 3))
        targets = features @ np.array([1.0, -2.0, 0.5]) + 1.0
        ols = LinearRegression().fit(features, targets)
        ridge = RidgeRegression(alpha=0.0).fit(features, targets)
        np.testing.assert_allclose(ridge.coefficients_, ols.coefficients_, atol=1e-6)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValidationError):
            RidgeRegression(alpha=-1.0).fit(np.ones((3, 1)), np.ones(3))

    def test_score_returns_r2(self, rng):
        features = rng.uniform(-1, 1, size=(100, 2))
        targets = features[:, 0] + features[:, 1]
        model = LinearRegression().fit(features, targets)
        assert model.score(features, targets) == pytest.approx(1.0)
