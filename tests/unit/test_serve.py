"""Unit tests for artifact bundles and the SuRFService serving layer."""

import pickle

import numpy as np
import pytest

from repro.core.finder import SuRF
from repro.core.query import RegionQuery
from repro.exceptions import NotFittedError, ValidationError
from repro.serve.service import ServiceStats, SuRFService
from repro.surrogate.persistence import BUNDLE_VERSION, load_bundle, save_bundle


def proposals_identical(first, second) -> bool:
    """Bit-identical proposal lists: same regions, predictions, objectives, support."""
    if len(first) != len(second):
        return False
    return all(
        np.array_equal(lhs.region.to_vector(), rhs.region.to_vector())
        and lhs.predicted_value == rhs.predicted_value
        and lhs.objective_value == rhs.objective_value
        and lhs.support == rhs.support
        for lhs, rhs in zip(first, second)
    )


@pytest.fixture()
def hopeless_query(density_workload):
    """A threshold far beyond every past evaluation — Eq. 5 probability 0."""
    return RegionQuery(threshold=float(density_workload.targets.max()) * 10, direction="above")


class TestArtifactBundles:
    def test_round_trip_returns_bit_identical_proposals(self, fitted_surf, density_query, tmp_path):
        path = fitted_surf.save(tmp_path / "finder.surf")
        loaded = SuRF.load(path)
        before = fitted_surf.find_regions(density_query)
        after = loaded.find_regions(density_query)
        assert proposals_identical(before.proposals, after.proposals)

    def test_round_trip_preserves_configuration_and_state(self, fitted_surf, tmp_path):
        loaded = SuRF.load(fitted_surf.save(tmp_path / "finder.surf"))
        assert loaded.objective_kind == fitted_surf.objective_kind
        assert loaded.random_state == fitted_surf.random_state
        assert loaded.overlap_threshold == fitted_surf.overlap_threshold
        assert loaded.warm_start_fraction == fitted_surf.warm_start_fraction
        assert loaded.workload_size_ == fitted_surf.workload_size_
        assert loaded.density_ is not None
        assert loaded.satisfiability_ is not None
        np.testing.assert_array_equal(loaded.workload_features_, fitted_surf.workload_features_)
        probe = np.array([[0.5, 0.5, 0.1, 0.1]])
        np.testing.assert_array_equal(
            loaded.surrogate_.predict(probe), fitted_surf.surrogate_.predict(probe)
        )

    def test_save_rejects_unfitted_finder(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_bundle(SuRF(), tmp_path / "unfitted.surf")

    def test_save_rejects_non_finder(self, tmp_path):
        with pytest.raises(ValidationError):
            save_bundle("not-a-finder", tmp_path / "bad.surf")

    def test_load_rejects_foreign_pickles(self, tmp_path):
        path = tmp_path / "other.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"not": "a bundle"}, handle)
        with pytest.raises(ValidationError):
            load_bundle(path)

    def test_load_reconstructs_calling_subclass(self, fitted_surf, tmp_path):
        class CustomSuRF(SuRF):
            pass

        path = fitted_surf.save(tmp_path / "finder.surf")
        loaded = CustomSuRF.load(path)
        assert type(loaded) is CustomSuRF
        with pytest.raises(ValidationError):
            load_bundle(path, finder_cls=dict)

    def test_load_rejects_future_bundle_version(self, fitted_surf, tmp_path):
        path = fitted_surf.save(tmp_path / "finder.surf")
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["version"] = BUNDLE_VERSION + 1
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        with pytest.raises(ValidationError):
            load_bundle(path)


class TestServiceBasics:
    def test_service_requires_fitted_finder(self):
        with pytest.raises(NotFittedError):
            SuRFService(SuRF())

    def test_service_rejects_invalid_configuration(self, fitted_surf):
        with pytest.raises(ValidationError):
            SuRFService(fitted_surf, cache_size=-1)
        with pytest.raises(ValidationError):
            SuRFService(fitted_surf, min_satisfiability=1.0)
        with pytest.raises(ValidationError):
            SuRFService(fitted_surf, max_workers=0)
        with pytest.raises(ValidationError):
            SuRFService("not-a-finder")

    def test_from_bundle_builds_working_service(self, fitted_surf, density_query, tmp_path):
        path = fitted_surf.save(tmp_path / "finder.surf")
        service = SuRFService.from_bundle(path)
        response = service.find_regions(density_query)
        assert response.status == "served"
        assert response.proposals

    def test_normalize_query_canonicalises_numpy_scalars(self, fitted_surf, density_query):
        service = SuRFService(fitted_surf)
        twin = RegionQuery(
            threshold=np.float64(density_query.threshold),
            direction=density_query.direction,
            size_penalty=np.float64(density_query.size_penalty),
        )
        assert service.normalize_query(twin) == service.normalize_query(density_query)
        with pytest.raises(ValidationError):
            service.normalize_query("not-a-query")


class TestCaching:
    def test_repeated_query_is_answered_from_cache_without_gso(self, fitted_surf, density_query):
        service = SuRFService(fitted_surf)
        first = service.find_regions(density_query)
        second = service.find_regions(density_query)
        assert first.status == "served"
        assert second.status == "cached"
        assert second.result is first.result
        stats = service.stats
        assert stats.queries == 2
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        assert stats.gso_runs == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_numpy_threshold_hits_float_cache_entry(self, fitted_surf, density_query):
        service = SuRFService(fitted_surf)
        service.find_regions(density_query)
        twin = RegionQuery(
            threshold=np.float64(density_query.threshold),
            direction=density_query.direction,
            size_penalty=density_query.size_penalty,
        )
        assert service.find_regions(twin).status == "cached"

    def test_lru_eviction_recomputes_oldest_query(self, fitted_surf, density_query):
        other = RegionQuery(
            threshold=density_query.threshold * 0.8,
            direction="above",
            size_penalty=density_query.size_penalty,
        )
        service = SuRFService(fitted_surf, cache_size=1)
        service.find_regions(density_query)
        service.find_regions(other)  # evicts density_query
        assert service.cached_queries == 1
        assert service.find_regions(density_query).status == "served"
        assert service.stats.gso_runs == 3

    def test_cache_size_zero_disables_caching(self, fitted_surf, density_query):
        service = SuRFService(fitted_surf, cache_size=0)
        assert service.find_regions(density_query).status == "served"
        assert service.find_regions(density_query).status == "served"
        assert service.stats.gso_runs == 2
        assert service.cached_queries == 0

    def test_clear_cache_and_reset_stats(self, fitted_surf, density_query):
        service = SuRFService(fitted_surf)
        service.find_regions(density_query)
        service.clear_cache()
        assert service.cached_queries == 0
        service.reset_stats()
        assert service.stats == ServiceStats()


class TestSatisfiabilityGate:
    def test_hopeless_threshold_rejected_without_gso(self, fitted_surf, hopeless_query):
        service = SuRFService(fitted_surf)
        response = service.find_regions(hopeless_query)
        assert response.status == "rejected"
        assert response.satisfiability == 0.0
        assert response.result is None
        assert response.proposals == []
        stats = service.stats
        assert stats.rejected == 1
        assert stats.gso_runs == 0

    def test_gate_threshold_is_configurable(self, fitted_surf, density_query):
        probability = fitted_surf.satisfiability(density_query)
        permissive = SuRFService(fitted_surf, min_satisfiability=0.0)
        strict = SuRFService(fitted_surf, min_satisfiability=min(0.99, probability + 1e-9))
        assert permissive.find_regions(density_query).status == "served"
        assert strict.find_regions(density_query).status == "rejected"
        assert strict.stats.gso_runs == 0


class TestBatchServing:
    def test_batch_equals_sequential_under_fixed_seeds(self, fitted_surf, density_query, hopeless_query):
        variant = RegionQuery(
            threshold=density_query.threshold * 0.9,
            direction="above",
            size_penalty=density_query.size_penalty,
        )
        burst = [density_query, hopeless_query, variant, density_query, variant]

        sequential_service = SuRFService(fitted_surf)
        sequential = [sequential_service.find_regions(query) for query in burst]
        batch_service = SuRFService(fitted_surf)
        batched = batch_service.find_regions_batch(burst)

        assert [response.query for response in batched] == [response.query for response in sequential]
        for before, after in zip(sequential, batched):
            if before.status == "rejected":
                assert after.status == "rejected"
                continue
            assert proposals_identical(before.proposals, after.proposals)

    def test_batch_coalesces_duplicates_into_one_gso_run(self, fitted_surf, density_query):
        service = SuRFService(fitted_surf)
        responses = service.find_regions_batch([density_query] * 4)
        assert [response.status for response in responses] == ["served"] * 4
        assert all(response.result is responses[0].result for response in responses)
        stats = service.stats
        assert stats.queries == 4
        assert stats.cache_misses == 4
        assert stats.coalesced == 3
        assert stats.gso_runs == 1

    def test_batch_uses_cache_from_earlier_requests(self, fitted_surf, density_query, hopeless_query):
        service = SuRFService(fitted_surf)
        service.find_regions(density_query)
        responses = service.find_regions_batch([density_query, hopeless_query, density_query])
        assert [response.status for response in responses] == ["cached", "rejected", "cached"]
        assert service.stats.gso_runs == 1

    def test_batch_respects_explicit_worker_count(self, fitted_surf, density_query):
        variant = RegionQuery(
            threshold=density_query.threshold * 0.85,
            direction="above",
            size_penalty=density_query.size_penalty,
        )
        service = SuRFService(fitted_surf)
        responses = service.find_regions_batch([density_query, variant], max_workers=1)
        assert [response.status for response in responses] == ["served", "served"]
        assert service.stats.gso_runs == 2

    def test_empty_batch_returns_empty_list(self, fitted_surf):
        assert SuRFService(fitted_surf).find_regions_batch([]) == []

    def test_shared_generator_finder_falls_back_to_one_worker(
        self, density_workload, density_query, fast_trainer
    ):
        # A live numpy Generator is shared mutable state and not thread-safe;
        # the batch path must detect it and run sequentially.
        from repro.optim.gso import GSOParameters

        shared = np.random.default_rng(0)
        finder = SuRF(
            trainer=fast_trainer,
            use_density_guidance=False,
            gso_parameters=GSOParameters(num_particles=20, num_iterations=10, random_state=shared),
            random_state=shared,
        )
        finder.fit(density_workload)
        service = SuRFService(finder)
        assert service._uses_shared_generator()
        variant = RegionQuery(threshold=density_query.threshold * 0.9, direction="above")
        responses = service.find_regions_batch([density_query, variant], max_workers=4)
        assert [response.status for response in responses] == ["served", "served"]
        assert service.stats.gso_runs == 2

    def test_seeded_finder_does_not_trigger_fallback(self, fitted_surf):
        assert not SuRFService(fitted_surf)._uses_shared_generator()
