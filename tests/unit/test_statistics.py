"""Unit tests for region statistics (Definition 2/3)."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.statistics import (
    AverageStatistic,
    CountStatistic,
    MedianStatistic,
    RatioStatistic,
    SumStatistic,
    VarianceStatistic,
    make_statistic,
)
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def labelled_dataset():
    values = np.array(
        [
            [0.1, 0.1, 2.0, 1.0],
            [0.2, 0.2, 4.0, 0.0],
            [0.3, 0.3, 6.0, 1.0],
            [0.8, 0.8, 8.0, 0.0],
        ]
    )
    return Dataset(values, ["x", "y", "measurement", "label"])


def full_mask(dataset):
    return np.ones(dataset.num_rows, dtype=bool)


class TestCountStatistic:
    def test_counts_selected_rows(self, labelled_dataset):
        statistic = CountStatistic()
        mask = np.array([True, False, True, False])
        assert statistic.compute(labelled_dataset, mask) == 2.0

    def test_region_columns_are_all_columns(self, labelled_dataset):
        assert CountStatistic().region_columns(labelled_dataset) == labelled_dataset.column_names

    def test_empty_mask_counts_zero(self, labelled_dataset):
        assert CountStatistic().compute(labelled_dataset, np.zeros(4, dtype=bool)) == 0.0

    def test_name(self):
        assert CountStatistic().name == "count"


class TestAttributeStatistics:
    def test_average(self, labelled_dataset):
        statistic = AverageStatistic("measurement")
        assert statistic.compute(labelled_dataset, full_mask(labelled_dataset)) == pytest.approx(5.0)

    def test_average_excludes_target_from_region_columns(self, labelled_dataset):
        columns = AverageStatistic("measurement").region_columns(labelled_dataset)
        assert "measurement" not in columns
        assert columns == ["x", "y", "label"]

    def test_average_can_keep_target_in_region(self, labelled_dataset):
        statistic = AverageStatistic("measurement", exclude_target_from_region=False)
        assert statistic.region_columns(labelled_dataset) == labelled_dataset.column_names

    def test_average_of_empty_region_is_empty_value(self, labelled_dataset):
        statistic = AverageStatistic("measurement")
        assert statistic.compute(labelled_dataset, np.zeros(4, dtype=bool)) == statistic.empty_value

    def test_sum(self, labelled_dataset):
        assert SumStatistic("measurement").compute(labelled_dataset, full_mask(labelled_dataset)) == 20.0

    def test_variance(self, labelled_dataset):
        expected = np.var([2.0, 4.0, 6.0, 8.0])
        statistic = VarianceStatistic("measurement")
        assert statistic.compute(labelled_dataset, full_mask(labelled_dataset)) == pytest.approx(expected)

    def test_median(self, labelled_dataset):
        statistic = MedianStatistic("measurement")
        assert statistic.compute(labelled_dataset, full_mask(labelled_dataset)) == pytest.approx(5.0)

    def test_ratio(self, labelled_dataset):
        statistic = RatioStatistic("label", positive_value=1.0)
        assert statistic.compute(labelled_dataset, full_mask(labelled_dataset)) == pytest.approx(0.5)

    def test_ratio_of_subset(self, labelled_dataset):
        statistic = RatioStatistic("label", positive_value=1.0)
        mask = np.array([True, True, True, False])
        assert statistic.compute(labelled_dataset, mask) == pytest.approx(2.0 / 3.0)

    def test_region_dim_matches_columns(self, labelled_dataset):
        assert CountStatistic().region_dim(labelled_dataset) == 4
        assert AverageStatistic("measurement").region_dim(labelled_dataset) == 3


class TestFactory:
    @pytest.mark.parametrize(
        "name, expected_type",
        [
            ("count", CountStatistic),
            ("density", CountStatistic),
        ],
    )
    def test_count_aliases(self, name, expected_type):
        assert isinstance(make_statistic(name), expected_type)

    @pytest.mark.parametrize(
        "name, expected_type",
        [
            ("average", AverageStatistic),
            ("aggregate", AverageStatistic),
            ("sum", SumStatistic),
            ("variance", VarianceStatistic),
            ("median", MedianStatistic),
        ],
    )
    def test_attribute_statistics_require_target(self, name, expected_type):
        statistic = make_statistic(name, target_column="measurement")
        assert isinstance(statistic, expected_type)

    def test_ratio_requires_positive_value(self):
        statistic = make_statistic("ratio", target_column="label", positive_value=1.0)
        assert isinstance(statistic, RatioStatistic)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            make_statistic("p99")

    def test_missing_argument_rejected(self):
        with pytest.raises(ValidationError):
            make_statistic("average")
