"""Unit tests for the pluggable data-engine backends (repro.backends)."""

import os

import numpy as np
import pytest

from repro.backends import (
    BACKEND_NAMES,
    ChunkedBackend,
    DataBackend,
    NumpyBackend,
    ShardedBackend,
    SQLiteBackend,
    make_backend,
)
from repro.data.dataset import Dataset
from repro.data.engine import DataEngine
from repro.data.index import GridIndex
from repro.data.regions import Region
from repro.data.statistics import (
    AverageStatistic,
    CountStatistic,
    MedianStatistic,
    RatioStatistic,
    SumStatistic,
    VarianceStatistic,
)
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def arrays():
    rng = np.random.default_rng(5)
    region = rng.uniform(-2.0, 2.0, size=(600, 2))
    target = rng.normal(size=600)
    return region, target


@pytest.fixture(scope="module")
def corners():
    lowers = np.array([[-1.0, -1.0], [0.0, -2.0], [5.0, 5.0], [-2.0, 0.5]])
    uppers = np.array([[1.0, 1.0], [2.0, 2.0], [6.0, 6.0], [2.0, 0.5001]])
    return lowers, uppers


def reference_stats(region, target, lowers, uppers, statistic):
    """Direct NumPy reference: full masks + the statistic's scalar kernel."""
    masks = np.all(
        (region[None, :, :] >= lowers[:, None, :]) & (region[None, :, :] <= uppers[:, None, :]),
        axis=2,
    )
    if statistic.count_only:
        return masks, masks.sum(axis=1).astype(np.float64)
    values = np.asarray(
        [statistic.compute_from_values(target[mask]) for mask in masks], dtype=np.float64
    )
    return masks, values


def all_backends(region, target):
    return [
        NumpyBackend(region, target),
        NumpyBackend(region, target, index=GridIndex(region, cells_per_dim=6)),
        ChunkedBackend.from_arrays(region, target, block_rows=113),
        SQLiteBackend(region, target),
        ShardedBackend.from_arrays(region, target, num_shards=3, max_workers=1),
        ShardedBackend.from_arrays(region, target, num_shards=4, max_workers=2),
    ]


STATISTICS = [
    CountStatistic(),
    AverageStatistic("t"),
    SumStatistic("t"),
    VarianceStatistic("t"),
    MedianStatistic("t"),
    RatioStatistic("t", 0.25),
]


class TestBackendEquivalence:
    def test_masks_counts_and_statistics_match_reference(self, arrays, corners):
        region, target = arrays
        lowers, uppers = corners
        for backend in all_backends(region, target):
            with backend:
                masks, _ = reference_stats(region, target, lowers, uppers, CountStatistic())
                assert np.array_equal(backend.scan_masks(lowers, uppers), masks), backend.name
                assert np.array_equal(
                    backend.count(lowers, uppers), masks.sum(axis=1).astype(np.int64)
                )
                for statistic in STATISTICS:
                    _, expected = reference_stats(region, target, lowers, uppers, statistic)
                    got = backend.evaluate(statistic, lowers, uppers)
                    assert np.array_equal(got, expected), (backend.name, statistic.name)

    def test_gather_preserves_row_order(self, arrays, corners):
        region, target = arrays
        lowers, uppers = corners
        masks, _ = reference_stats(region, target, lowers, uppers, CountStatistic())
        for backend in all_backends(region, target):
            with backend:
                for row, values in enumerate(backend.gather(lowers, uppers)):
                    assert np.array_equal(values, target[masks[row]]), backend.name

    def test_take_and_sample_match_in_memory(self, arrays):
        region, target = arrays
        indices = np.array([5, 0, 599, 300, 5])
        for backend in all_backends(region, target):
            with backend:
                assert np.array_equal(backend.take(indices), region[indices]), backend.name
                assert np.array_equal(
                    backend.sample(7, random_state=3), region[np.random.default_rng(3).choice(600, 7, replace=False)]
                )

    def test_zero_regions(self, arrays):
        region, target = arrays
        empty = np.empty((0, 2))
        for backend in all_backends(region, target):
            with backend:
                assert backend.scan_masks(empty, empty).shape == (0, 600)
                assert backend.count(empty, empty).shape == (0,)
                assert backend.evaluate(CountStatistic(), empty, empty).shape == (0,)


class TestBackendValidation:
    def test_factory_rejects_unknown_backend(self, arrays):
        with pytest.raises(ValidationError, match="unknown backend"):
            make_backend("parquet", arrays[0])

    def test_factory_builds_every_registered_name(self, arrays):
        region, target = arrays
        for name in BACKEND_NAMES:
            backend = make_backend(name, region, target)
            assert isinstance(backend, DataBackend)
            assert backend.name == name
            assert backend.num_rows == 600 and backend.region_dim == 2
            backend.close()

    def test_corner_shape_mismatch_rejected(self, arrays):
        backend = NumpyBackend(*arrays)
        with pytest.raises(ValidationError, match="lowers/uppers"):
            backend.count(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_gather_without_target_rejected(self, arrays):
        for name in BACKEND_NAMES:
            backend = make_backend(name, arrays[0], None)
            with pytest.raises(ValidationError, match="target"):
                backend.gather(np.zeros((1, 2)), np.ones((1, 2)))
            with pytest.raises(ValidationError, match="target"):
                backend.evaluate(AverageStatistic("t"), np.zeros((1, 2)), np.ones((1, 2)))
            backend.close()

    def test_empty_region_values_rejected(self):
        for name in BACKEND_NAMES:
            with pytest.raises(ValidationError):
                make_backend(name, np.empty((0, 2)))

    def test_target_shape_mismatch_rejected(self, arrays):
        for name in BACKEND_NAMES:
            with pytest.raises(ValidationError):
                make_backend(name, arrays[0], np.zeros(3))

    def test_bad_sample_sizes_rejected(self, arrays):
        backend = NumpyBackend(*arrays)
        with pytest.raises(ValidationError):
            backend.sample(0)
        with pytest.raises(ValidationError):
            backend.sample(601)


class TestNumpyBackend:
    def test_index_must_cover_rows(self, arrays):
        region, target = arrays
        with pytest.raises(ValidationError, match="index does not cover"):
            NumpyBackend(region, target, index=GridIndex(region[:10]))

    def test_indexed_attribute_statistics_prune_without_full_masks(self, arrays, corners):
        """The count-only restriction is lifted: pruning serves attribute stats too."""
        region, target = arrays
        lowers, uppers = corners
        plain = NumpyBackend(region, target)
        indexed = NumpyBackend(region, target, index=GridIndex(region, cells_per_dim=5))
        for statistic in STATISTICS:
            assert np.array_equal(
                plain.evaluate(statistic, lowers, uppers),
                indexed.evaluate(statistic, lowers, uppers),
            ), statistic.name


class TestChunkedBackend:
    def test_roundtrip_through_files(self, arrays, tmp_path):
        region, target = arrays
        backend = ChunkedBackend.from_arrays(region, target, directory=tmp_path, block_rows=64)
        assert (tmp_path / "region_columns.npy").exists()
        assert backend.out_of_core and backend.block_rows == 64
        reopened = ChunkedBackend(
            tmp_path / "region_columns.npy", tmp_path / "target_column.npy", block_rows=50
        )
        lowers = np.array([[-0.5, -0.5]])
        uppers = np.array([[0.5, 0.5]])
        assert np.array_equal(
            backend.evaluate(AverageStatistic("t"), lowers, uppers),
            reopened.evaluate(AverageStatistic("t"), lowers, uppers),
        )
        backend.close()
        reopened.close()
        # Explicit-directory files are caller-owned and survive close().
        assert (tmp_path / "region_columns.npy").exists()

    def test_temporary_directory_removed_on_close(self, arrays):
        backend = ChunkedBackend.from_arrays(arrays[0], block_rows=100)
        directory = os.path.dirname(backend._region.filename)
        assert os.path.isdir(directory)
        backend.close()
        assert not os.path.isdir(directory)

    def test_invalid_block_rows(self, arrays):
        with pytest.raises(ValidationError):
            ChunkedBackend.from_arrays(arrays[0], block_rows=0)


class TestSQLiteBackend:
    def test_on_disk_database(self, arrays, tmp_path):
        region, target = arrays
        backend = SQLiteBackend(region, target, path=tmp_path / "data.db")
        assert (tmp_path / "data.db").exists()
        assert backend.count(np.array([[-2.0, -2.0]]), np.array([[2.0, 2.0]]))[0] == 600
        backend.close()

    def test_sql_aggregates_match_numpy_closely(self, arrays, corners):
        region, target = arrays
        lowers, uppers = corners
        exact = SQLiteBackend(region, target, exact_reductions=True)
        fast = SQLiteBackend(region, target, exact_reductions=False)
        for statistic in (SumStatistic("t"), AverageStatistic("t")):
            a = exact.evaluate(statistic, lowers, uppers)
            b = fast.evaluate(statistic, lowers, uppers)
            np.testing.assert_allclose(a, b, rtol=1e-12)
        exact.close()
        fast.close()

    def test_nan_data_rejected(self):
        bad = np.array([[0.0, np.nan]])
        with pytest.raises(ValidationError, match="finite"):
            SQLiteBackend(bad)

    def test_take_out_of_range_rejected(self, arrays):
        backend = SQLiteBackend(arrays[0])
        with pytest.raises(ValidationError, match="out of range"):
            backend.take(np.array([600]))
        backend.close()


class TestShardedBackend:
    def test_requires_consistent_shards(self, arrays):
        region, target = arrays
        with pytest.raises(ValidationError, match="at least one shard"):
            ShardedBackend([])
        with pytest.raises(ValidationError, match="region_dim"):
            ShardedBackend([NumpyBackend(region), NumpyBackend(region[:, :1])])
        with pytest.raises(ValidationError, match="target"):
            ShardedBackend([NumpyBackend(region, target), NumpyBackend(region)])
        with pytest.raises(ValidationError, match="merge"):
            ShardedBackend([NumpyBackend(region)], merge="median")
        with pytest.raises(ValidationError, match="max_workers"):
            ShardedBackend([NumpyBackend(region)], max_workers=0)

    def test_heterogeneous_shards_compose(self, arrays, corners):
        """A sharded backend over mixed storage kinds still matches the reference."""
        region, target = arrays
        lowers, uppers = corners
        shards = [
            NumpyBackend(region[:200], target[:200]),
            SQLiteBackend(region[200:400], target[200:400]),
            ChunkedBackend.from_arrays(region[400:], target[400:], block_rows=37),
        ]
        backend = ShardedBackend(shards, max_workers=2)
        for statistic in STATISTICS:
            _, expected = reference_stats(region, target, lowers, uppers, statistic)
            assert np.array_equal(backend.evaluate(statistic, lowers, uppers), expected)
        backend.close()

    def test_stats_merge_mode_is_close_for_float_statistics(self, arrays, corners):
        region, target = arrays
        lowers, uppers = corners
        fast = ShardedBackend.from_arrays(region, target, num_shards=3, merge="stats", max_workers=1)
        for statistic in (SumStatistic("t"), AverageStatistic("t"), VarianceStatistic("t")):
            _, expected = reference_stats(region, target, lowers, uppers, statistic)
            np.testing.assert_allclose(
                fast.evaluate(statistic, lowers, uppers), expected, rtol=1e-10
            )
        # Integer-exact decompositions and gathered medians stay bit-identical
        # even in stats mode.
        for statistic in (CountStatistic(), RatioStatistic("t", 0.25), MedianStatistic("t")):
            _, expected = reference_stats(region, target, lowers, uppers, statistic)
            assert np.array_equal(fast.evaluate(statistic, lowers, uppers), expected)
        fast.close()

    def test_shard_storage_locations_do_not_collide(self, tmp_path):
        """Each sqlite/chunked shard must get its own storage target."""
        rng = np.random.default_rng(1)
        region = rng.uniform(size=(64, 2))
        lowers, uppers = np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]])
        for shard_backend, options in (
            ("sqlite", {"path": tmp_path / "shards.db"}),
            ("chunked", {"directory": tmp_path / "chunks"}),
        ):
            backend = ShardedBackend.from_arrays(
                region, num_shards=2, shard_backend=shard_backend, max_workers=1, **options
            )
            # With a shared storage target only the last shard's rows survive.
            assert backend.count(lowers, uppers)[0] == 64, shard_backend
            backend.close()

    def test_take_rejects_out_of_range_indices(self, arrays):
        backend = ShardedBackend.from_arrays(arrays[0], num_shards=3, max_workers=1)
        with pytest.raises(ValidationError, match="row indices"):
            backend.take(np.array([600]))
        with pytest.raises(ValidationError, match="row indices"):
            backend.take(np.array([-601]))

    def test_variance_stats_merge_survives_tiny_variance_at_huge_mean(self):
        """The (count, mean, M2) merge must not cancel catastrophically."""
        target = np.array([1e6, 1e6 + 1e-4])
        region = np.zeros((2, 1))
        fast = ShardedBackend.from_arrays(
            region, target, num_shards=2, max_workers=1, merge="stats"
        )
        expected = float(target.var())  # 2.5e-9
        got = fast.evaluate(
            VarianceStatistic("t"), np.array([[-1.0]]), np.array([[1.0]])
        )[0]
        np.testing.assert_allclose(got, expected, rtol=1e-9)

    def test_shard_count_capped_by_rows(self):
        region = np.arange(6, dtype=np.float64).reshape(3, 2)
        backend = ShardedBackend.from_arrays(region, num_shards=10)
        assert backend.num_shards == 3
        assert backend.num_rows == 3

    def test_out_of_core_flag_inherited(self, arrays):
        region, target = arrays
        assert not ShardedBackend.from_arrays(region, target, num_shards=2).out_of_core
        assert ShardedBackend.from_arrays(
            region, target, num_shards=2, shard_backend="chunked"
        ).out_of_core


class TestEngineBackendIntegration:
    @pytest.fixture(scope="class")
    def dataset(self, arrays=None):
        rng = np.random.default_rng(11)
        values = rng.uniform(size=(800, 3))
        return Dataset(values, ["x", "y", "t"])

    def test_engine_results_identical_across_backends(self, dataset):
        statistic = AverageStatistic("t")
        vectors = np.column_stack(
            [
                np.random.default_rng(2).uniform(size=(50, 2)),
                np.random.default_rng(3).uniform(0.01, 0.4, size=(50, 2)),
            ]
        )
        reference = DataEngine(dataset, statistic).evaluate_batch(vectors)
        for name in BACKEND_NAMES:
            engine = DataEngine(dataset, statistic, backend=name)
            assert engine.backend.name == name
            assert np.array_equal(engine.evaluate_batch(vectors), reference), name
            assert engine.num_evaluations == 50
            engine.close()

    def test_engine_accepts_prebuilt_backend(self, dataset):
        statistic = CountStatistic()
        backend = ShardedBackend.from_arrays(dataset.values, num_shards=2)
        engine = DataEngine(dataset, statistic, backend=backend)
        assert engine.backend is backend
        region = Region.from_bounds([0.2, 0.2, 0.0], [0.8, 0.8, 1.0])
        assert engine.evaluate(region) == DataEngine(dataset, statistic).evaluate(region)
        assert engine.support(region) == int(np.count_nonzero(engine.region_mask(region)))

    def test_engine_rejects_mismatched_prebuilt_backend(self, dataset):
        statistic = CountStatistic()
        with pytest.raises(ValidationError, match="rows"):
            DataEngine(dataset, statistic, backend=NumpyBackend(dataset.values[:10]))
        with pytest.raises(ValidationError, match="region_dim"):
            DataEngine(dataset, statistic, backend=NumpyBackend(dataset.values[:, :2]))
        with pytest.raises(ValidationError, match="target"):
            DataEngine(
                dataset,
                AverageStatistic("t"),
                backend=NumpyBackend(dataset.values[:, [0, 1]]),
            )
        with pytest.raises(ValidationError, match="use_index"):
            DataEngine(
                dataset, statistic, backend=NumpyBackend(dataset.values), use_index=True
            )
        with pytest.raises(ValidationError, match="backend_options"):
            DataEngine(
                dataset,
                statistic,
                backend=NumpyBackend(dataset.values),
                backend_options={"num_shards": 2},
            )

    def test_engine_rejects_index_on_non_numpy_backend(self, dataset):
        with pytest.raises(ValidationError, match="use_index"):
            DataEngine(dataset, CountStatistic(), backend="sqlite", use_index=True)

    def test_sample_region_points_matches_dataset_sample(self, dataset):
        engine = DataEngine(dataset, AverageStatistic("t"), backend="chunked")
        expected = (
            dataset.sample(40, random_state=21).select_columns(engine.region_columns).values
        )
        assert np.array_equal(engine.sample_region_points(40, random_state=21), expected)
        engine.close()

    def test_statistic_sample_identical_on_out_of_core_backend(self, dataset):
        plain = DataEngine(dataset, CountStatistic())
        chunked = DataEngine(
            dataset, CountStatistic(), backend="chunked", backend_options={"block_rows": 97}
        )
        assert np.array_equal(
            plain.statistic_sample(30, random_state=8),
            chunked.statistic_sample(30, random_state=8),
        )
        chunked.close()
