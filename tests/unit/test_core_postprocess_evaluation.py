"""Unit tests for proposal post-processing and accuracy metrics."""

import numpy as np
import pytest

from repro.core.evaluation import average_iou, compliance_rate, match_to_ground_truth, proposal_statistics
from repro.core.objective import LogObjective
from repro.core.postprocess import RegionProposal, proposals_from_result
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.regions import Region
from repro.data.statistics import CountStatistic
from repro.exceptions import ValidationError
from repro.optim.result import OptimizationResult


def constant_statistic(vector: np.ndarray) -> float:
    return 50.0


def make_result(vectors, fitness):
    vectors = np.asarray(vectors, dtype=np.float64)
    return OptimizationResult(
        positions=vectors,
        fitness=np.asarray(fitness, dtype=np.float64),
        initial_positions=vectors.copy(),
    )


@pytest.fixture()
def simple_objective():
    return LogObjective(constant_statistic, RegionQuery(threshold=10.0, direction="above"))


class TestProposalsFromResult:
    def test_infeasible_particles_are_dropped(self, simple_objective):
        result = make_result([[0.5, 0.5, 0.1, 0.1]], [-np.inf])
        assert proposals_from_result(result, simple_objective, constant_statistic) == []

    def test_overlapping_particles_merge_into_one_proposal(self, simple_objective):
        vectors = [
            [0.5, 0.5, 0.1, 0.1],
            [0.51, 0.5, 0.1, 0.1],
            [0.5, 0.49, 0.1, 0.1],
        ]
        result = make_result(vectors, [3.0, 2.0, 1.0])
        proposals = proposals_from_result(result, simple_objective, constant_statistic, overlap_threshold=0.3)
        assert len(proposals) == 1
        assert proposals[0].support == 3

    def test_distant_particles_stay_separate(self, simple_objective):
        vectors = [
            [0.2, 0.2, 0.05, 0.05],
            [0.8, 0.8, 0.05, 0.05],
        ]
        result = make_result(vectors, [2.0, 1.0])
        proposals = proposals_from_result(result, simple_objective, constant_statistic)
        assert len(proposals) == 2

    def test_proposals_sorted_by_objective(self, simple_objective):
        vectors = [
            [0.2, 0.2, 0.05, 0.05],
            [0.8, 0.8, 0.05, 0.05],
        ]
        result = make_result(vectors, [1.0, 5.0])
        proposals = proposals_from_result(result, simple_objective, constant_statistic)
        assert proposals[0].objective_value >= proposals[1].objective_value

    def test_max_proposals_limits_output(self, simple_objective):
        vectors = [[0.1 * i + 0.05, 0.5, 0.02, 0.02] for i in range(8)]
        result = make_result(vectors, list(range(8)))
        proposals = proposals_from_result(
            result, simple_objective, constant_statistic, max_proposals=3
        )
        assert len(proposals) == 3

    def test_min_support_filters_singletons(self, simple_objective):
        vectors = [
            [0.2, 0.2, 0.05, 0.05],
            [0.21, 0.2, 0.05, 0.05],
            [0.8, 0.8, 0.05, 0.05],
        ]
        result = make_result(vectors, [3.0, 2.0, 1.0])
        proposals = proposals_from_result(
            result, simple_objective, constant_statistic, overlap_threshold=0.3, min_support=2
        )
        assert len(proposals) == 1
        assert proposals[0].support == 2

    def test_predicted_value_comes_from_predictor(self, simple_objective):
        result = make_result([[0.5, 0.5, 0.1, 0.1]], [1.0])
        proposals = proposals_from_result(result, simple_objective, lambda v: 123.0)
        assert proposals[0].predicted_value == pytest.approx(123.0)

    def test_invalid_parameters_rejected(self, simple_objective):
        result = make_result([[0.5, 0.5, 0.1, 0.1]], [1.0])
        with pytest.raises(ValidationError):
            proposals_from_result(result, simple_objective, constant_statistic, overlap_threshold=1.5)
        with pytest.raises(ValidationError):
            proposals_from_result(result, simple_objective, constant_statistic, min_support=0)

    def test_proposal_vector_round_trip(self):
        region = Region([0.4, 0.6], [0.1, 0.2])
        proposal = RegionProposal(region=region, predicted_value=1.0, objective_value=2.0)
        np.testing.assert_allclose(proposal.vector, region.to_vector())

    def test_objective_value_matches_reported_region(self):
        # Regression: proposals used to report the cluster *seed's* fitness but
        # the max-margin *member's* region, so objective_value did not
        # correspond to region.  The representative's objective must be
        # re-evaluated for the vector actually reported.
        def center_statistic(vector):
            return float(100.0 * vector[0])

        def batch_center_statistic(vectors):
            return 100.0 * vectors[:, 0]

        query = RegionQuery(threshold=10.0, direction="above")
        objective = LogObjective(center_statistic, query, batch_center_statistic)
        # Two overlapping particles: index 0 gets the (fake) higher swarm
        # fitness and seeds the cluster, index 1 has the larger predicted
        # margin and becomes the representative.
        vectors = np.array(
            [
                [0.50, 0.5, 0.1, 0.1],
                [0.52, 0.5, 0.1, 0.1],
            ]
        )
        result = make_result(vectors, [99.0, 1.0])
        proposals = proposals_from_result(
            result, objective, center_statistic, overlap_threshold=0.3
        )
        assert len(proposals) == 1
        proposal = proposals[0]
        np.testing.assert_allclose(proposal.vector, vectors[1])
        assert proposal.predicted_value == pytest.approx(52.0)
        assert proposal.objective_value == pytest.approx(objective(vectors[1]))
        assert proposal.objective_value != pytest.approx(99.0)

    def test_proposals_sorted_by_recomputed_objective(self):
        def center_statistic(vector):
            return float(100.0 * vector[0])

        query = RegionQuery(threshold=10.0, direction="above")
        objective = LogObjective(center_statistic, query)
        # Swarm fitness order (fake) disagrees with the true objective order;
        # sorting must follow the re-evaluated representative objectives.
        vectors = np.array(
            [
                [0.30, 0.5, 0.05, 0.05],
                [0.90, 0.5, 0.05, 0.05],
            ]
        )
        result = make_result(vectors, [50.0, 1.0])
        proposals = proposals_from_result(result, objective, center_statistic)
        assert len(proposals) == 2
        assert proposals[0].objective_value >= proposals[1].objective_value
        assert proposals[0].predicted_value == pytest.approx(90.0)


class TestEvaluationMetrics:
    def test_match_to_ground_truth_perfect_match(self):
        truth = [Region([0.5, 0.5], [0.1, 0.1])]
        proposals = [Region([0.5, 0.5], [0.1, 0.1])]
        assert match_to_ground_truth(proposals, truth) == [pytest.approx(1.0)]

    def test_match_handles_empty_proposals(self):
        truth = [Region([0.5], [0.1]), Region([0.2], [0.05])]
        assert match_to_ground_truth([], truth) == [0.0, 0.0]

    def test_average_iou_mixes_matched_and_unmatched(self):
        truth = [Region([0.2, 0.2], [0.1, 0.1]), Region([0.8, 0.8], [0.1, 0.1])]
        proposals = [Region([0.2, 0.2], [0.1, 0.1])]
        assert average_iou(proposals, truth) == pytest.approx(0.5)

    def test_average_iou_accepts_region_proposals(self):
        truth = [Region([0.2, 0.2], [0.1, 0.1])]
        proposals = [
            RegionProposal(region=Region([0.2, 0.2], [0.1, 0.1]), predicted_value=1.0, objective_value=1.0)
        ]
        assert average_iou(proposals, truth) == pytest.approx(1.0)

    def test_average_iou_empty_ground_truth_is_zero(self):
        assert average_iou([Region([0.5], [0.1])], []) == 0.0

    def test_compliance_rate_counts_true_satisfaction(self, simple_dataset):
        engine = DataEngine(simple_dataset, CountStatistic())
        query = RegionQuery(threshold=1.5, direction="above")
        good = Region.from_bounds([0.0, 0.0, 0.0], [1.0, 1.0, 10.0])  # contains 5 points
        bad = Region.from_bounds([0.0, 0.0, 0.0], [0.05, 0.05, 0.5])  # contains none
        assert compliance_rate([good, bad], engine, query) == pytest.approx(0.5)

    def test_compliance_rate_empty_proposals_is_zero(self, simple_dataset):
        engine = DataEngine(simple_dataset, CountStatistic())
        assert compliance_rate([], engine, RegionQuery(threshold=1.0)) == 0.0

    def test_proposal_statistics_returns_true_values(self, simple_dataset):
        engine = DataEngine(simple_dataset, CountStatistic())
        regions = [Region.from_bounds([0.0, 0.0, 0.0], [0.3, 0.3, 3.0])]
        np.testing.assert_allclose(proposal_statistics(regions, engine), [2.0])
