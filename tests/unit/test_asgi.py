"""Unit tests for the ASGI front door (repro.api.asgi).

Everything runs in-process through :func:`asgi_request` — no sockets, no
third-party server or client — except the dev-server test, which exercises
the stdlib :class:`HttpFrontDoor` bridge over a real loopback connection.
"""

import asyncio
import http.client
import json

import pytest

from repro.api import (
    AsgiApp,
    FindRequest,
    HttpFrontDoor,
    ModelRegistry,
    ServiceKernel,
    asgi_request,
)
from repro.api.asgi import STATUS_HTTP
from repro.exceptions import ValidationError


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def registry(fitted_surf):
    registry = ModelRegistry()
    registry.register("demo", fitted_surf, cache_size=64)
    return registry


@pytest.fixture(scope="module")
def app(registry):
    return AsgiApp(registry)


class TestRouting:
    def test_healthz(self, app):
        response = run(asgi_request(app, "GET", "/healthz"))
        assert response.status == 200
        assert response.headers["content-type"] == "application/json"
        assert response.json() == {"status": "ok", "models": ["demo"]}

    def test_models_lists_generation_and_cache_occupancy(self, app, registry):
        response = run(asgi_request(app, "GET", "/models"))
        assert response.status == 200
        (row,) = response.json()["models"]
        kernel = registry.get("demo")
        assert row["model"] == "demo"
        assert row["generation"] == kernel.generation
        assert row["cached_queries"] == kernel.cached_queries

    def test_stats_returns_per_tenant_counters(self, app, registry):
        response = run(asgi_request(app, "GET", "/stats"))
        assert response.status == 200
        payload = response.json()
        assert payload["demo"] == registry.get("demo").stats.as_dict()

    def test_unknown_path_is_404(self, app):
        assert run(asgi_request(app, "GET", "/nope")).status == 404

    def test_wrong_method_is_405(self, app):
        assert run(asgi_request(app, "POST", "/healthz")).status == 405
        assert run(asgi_request(app, "GET", "/find")).status == 405


class TestFind:
    def test_find_served_round_trip(self, app, registry, density_query):
        body = {"threshold": density_query.threshold, "model": "demo"}
        response = run(asgi_request(app, "POST", "/find", json_body=body))
        assert response.status == 200
        payload = response.json()
        assert payload["status"] in ("served", "cached")
        assert payload["model"] == "demo"
        assert payload["proposals"]
        # The wire payload is exactly the envelope's dict form.
        direct = registry.find(
            FindRequest(threshold=density_query.threshold, model="demo")
        )
        assert set(payload) == set(direct.to_dict())

    def test_find_batch_preserves_order_and_statuses(self, app, density_query):
        requests = [
            {"threshold": density_query.threshold, "model": "demo", "trace_id": "a"},
            {"threshold": density_query.threshold * 1.5, "model": "demo", "trace_id": "b"},
        ]
        response = run(
            asgi_request(app, "POST", "/find_batch", json_body={"requests": requests})
        )
        assert response.status == 200
        responses = response.json()["responses"]
        assert [item["trace_id"] for item in responses] == ["a", "b"]

    def test_single_tenant_apps_default_the_model_field(self, fitted_surf, density_query):
        app = AsgiApp(ServiceKernel(fitted_surf, name="solo"))
        response = run(
            asgi_request(
                app, "POST", "/find", json_body={"threshold": density_query.threshold}
            )
        )
        assert response.status == 200
        assert response.json()["model"] == "solo"

    def test_unknown_model_is_404(self, app):
        response = run(
            asgi_request(
                app, "POST", "/find", json_body={"threshold": 1.0, "model": "ghost"}
            )
        )
        assert response.status == 404
        assert "ghost" in response.json()["error"]

    def test_degraded_statuses_map_to_http_errors(self):
        assert STATUS_HTTP["throttled"] == 429
        assert STATUS_HTTP["shed"] == 503
        assert STATUS_HTTP["timeout"] == 504
        assert STATUS_HTTP["error"] == 500

    def test_throttled_request_comes_back_429(self, fitted_surf, density_query):
        from repro.api import RateLimit, production_chain

        kernel = ServiceKernel(
            fitted_surf,
            name="tight",
            middleware=production_chain(rate_limit=RateLimit(rate=1e-9, capacity=1)),
        )
        app = AsgiApp(kernel)

        async def burst():
            first = await asgi_request(
                app, "POST", "/find", json_body={"threshold": density_query.threshold}
            )
            second = await asgi_request(
                app,
                "POST",
                "/find",
                json_body={"threshold": density_query.threshold * 1.01},
            )
            return first, second

        first, second = run(burst())
        assert first.status == 200
        assert second.status == 429
        assert second.json()["status"] == "throttled"


class TestBadInput:
    def test_malformed_json_is_400(self, app):
        response = run(asgi_request(app, "POST", "/find", body=b"{oops"))
        assert response.status == 400
        assert "JSON" in response.json()["error"]

    def test_bad_field_types_are_400(self, app):
        for payload in (
            {"threshold": "many", "model": "demo"},
            {"threshold": 1.0, "direction": "sideways", "model": "demo"},
            {"threshold": 1.0, "bogus_key": 1, "model": "demo"},
            ["not", "a", "mapping"],
        ):
            response = run(asgi_request(app, "POST", "/find", json_body=payload))
            assert response.status == 400, payload

    def test_batch_payload_shape_is_validated(self, app):
        for payload in ({}, {"requests": "nope"}, [1, 2]):
            response = run(asgi_request(app, "POST", "/find_batch", json_body=payload))
            assert response.status == 400, payload

    def test_oversized_body_is_413(self, registry):
        app = AsgiApp(registry, max_body_bytes=64)
        response = run(asgi_request(app, "POST", "/find", body=b"x" * 65))
        assert response.status == 413
        # Declared-length fast path: refused before any chunk is read.
        response = run(
            asgi_request(
                app, "POST", "/find", body=b"x", headers=[(b"content-length", b"9999")]
            )
        )
        assert response.status == 413

    def test_chunked_bodies_are_reassembled(self, app, density_query):
        payload = json.dumps(
            {"threshold": density_query.threshold, "model": "demo"}
        ).encode()

        async def chunked():
            sent = {"offset": 0}

            async def receive():
                offset = sent["offset"]
                chunk, sent["offset"] = payload[offset : offset + 7], offset + 7
                return {
                    "type": "http.request",
                    "body": chunk,
                    "more_body": sent["offset"] < len(payload),
                }

            messages = []

            async def send(message):
                messages.append(message)

            scope = {"type": "http", "method": "POST", "path": "/find", "headers": []}
            await app(scope, receive, send)
            return messages

        messages = run(chunked())
        assert messages[0]["status"] == 200

    def test_app_requires_a_registry_or_kernel(self):
        with pytest.raises(ValidationError):
            AsgiApp("not-a-service")
        with pytest.raises(ValidationError):
            AsgiApp(ModelRegistry(), max_body_bytes=0)


class TestLifespanAndConcurrency:
    def test_lifespan_protocol_completes(self, registry):
        app = AsgiApp(registry)

        async def lifecycle():
            incoming = [
                {"type": "lifespan.startup"},
                {"type": "lifespan.shutdown"},
            ]
            outgoing = []

            async def receive():
                return incoming.pop(0)

            async def send(message):
                outgoing.append(message)

            await app({"type": "lifespan"}, receive, send)
            return outgoing

        events = run(lifecycle())
        assert [event["type"] for event in events] == [
            "lifespan.startup.complete",
            "lifespan.shutdown.complete",
        ]

    def test_concurrent_requests_share_the_event_loop(self, app, density_query):
        async def storm():
            tasks = [
                asgi_request(
                    app,
                    "POST",
                    "/find",
                    json_body={
                        "threshold": density_query.threshold * (1 + 0.01 * i),
                        "model": "demo",
                    },
                )
                for i in range(16)
            ]
            return await asyncio.gather(*tasks)

        responses = run(storm())
        assert all(r.status == 200 for r in responses)
        assert all(r.json()["status"] in ("served", "cached") for r in responses)


class TestHttpFrontDoor:
    def test_round_trip_over_a_real_socket(self, app, density_query):
        with HttpFrontDoor(app) as door:
            assert door.port > 0
            connection = http.client.HTTPConnection("127.0.0.1", door.port, timeout=30)
            try:
                connection.request(
                    "POST",
                    "/find",
                    body=json.dumps(
                        {"threshold": density_query.threshold, "model": "demo"}
                    ),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["status"] in ("served", "cached")
            finally:
                connection.close()
            connection = http.client.HTTPConnection("127.0.0.1", door.port, timeout=30)
            try:
                connection.request("GET", "/healthz")
                assert connection.getresponse().status == 200
            finally:
                connection.close()

    def test_stop_is_idempotent(self, app):
        door = HttpFrontDoor(app).start()
        door.stop()
        door.stop()
