"""Unit tests for the online learning loop: query log, drift, incremental refresh, hot swap."""

import numpy as np
import pytest

from repro.core.query import RegionQuery
from repro.data.regions import Region
from repro.exceptions import NotFittedError, ValidationError
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.metrics import root_mean_squared_error
from repro.online import DriftMonitor, IncrementalTrainer, QueryLog, RefreshPolicy
from repro.serve.service import ServiceStats, SuRFService
from repro.surrogate.workload import RegionEvaluation, RegionWorkload


def make_evaluation(center, value, half=0.1):
    center = np.atleast_1d(np.asarray(center, dtype=np.float64))
    return RegionEvaluation(Region(center, np.full(center.shape, half)), float(value))


def shifted_copy(workload, shift):
    """The same regions with every statistic shifted — a mean-drifted workload."""
    return [RegionEvaluation(e.region, e.value + shift) for e in workload]


def proposals_identical(first, second) -> bool:
    if len(first) != len(second):
        return False
    return all(
        np.array_equal(lhs.region.to_vector(), rhs.region.to_vector())
        and lhs.predicted_value == rhs.predicted_value
        and lhs.objective_value == rhs.objective_value
        and lhs.support == rhs.support
        for lhs, rhs in zip(first, second)
    )


# --------------------------------------------------------------------------- QueryLog
class TestQueryLog:
    def test_capacity_is_never_exceeded_and_drops_are_counted(self):
        log = QueryLog(capacity=5)
        for index in range(12):
            log.record_vector([float(index), 0.1], float(index))
        assert len(log) == 5
        assert log.total_recorded == 12
        assert log.dropped == 7
        # The retained entries are the newest ones, oldest first.
        assert [entry.value for entry in log.snapshot()] == [7.0, 8.0, 9.0, 10.0, 11.0]

    def test_since_returns_only_unconsumed_entries(self):
        log = QueryLog(capacity=100)
        log.record_many([make_evaluation(i, i) for i in range(4)])
        first, cursor = log.since(0)
        assert [entry.value for entry in first] == [0.0, 1.0, 2.0, 3.0]
        assert cursor == 4
        nothing, cursor = log.since(cursor)
        assert nothing == [] and cursor == 4
        log.record(Region(np.array([9.0]), np.array([0.1])), 9.0)
        fresh, cursor = log.since(cursor)
        assert [entry.value for entry in fresh] == [9.0] and cursor == 5

    def test_since_survives_ring_buffer_drops(self):
        log = QueryLog(capacity=3)
        log.record_many([make_evaluation(i, i) for i in range(3)])
        _, cursor = log.since(0)
        log.record_many([make_evaluation(i, i) for i in range(3, 8)])  # drops 0..4
        fresh, cursor = log.since(cursor)
        # Entries 3 and 4 were dropped before consumption; the survivors arrive.
        assert [entry.value for entry in fresh] == [5.0, 6.0, 7.0]
        assert cursor == 8

    def test_dimensionality_is_pinned_by_first_record(self):
        log = QueryLog(capacity=10)
        log.record_vector([0.0, 0.0, 0.1, 0.1], 1.0)
        assert log.region_dim == 2
        with pytest.raises(ValidationError):
            log.record_vector([0.0, 0.1], 1.0)

    def test_rejects_non_finite_values_and_bad_capacity(self):
        with pytest.raises(ValidationError):
            QueryLog(capacity=0)
        log = QueryLog(capacity=4)
        with pytest.raises(ValidationError):
            log.record(Region(np.array([0.0]), np.array([0.1])), float("nan"))
        with pytest.raises(ValidationError):
            log.since(-1)

    def test_persistence_round_trip_is_lossless(self, tmp_path):
        log = QueryLog(capacity=50)
        rng = np.random.default_rng(3)
        for _ in range(20):
            log.record_vector(np.concatenate([rng.normal(size=2), rng.uniform(0.05, 0.5, 2)]), rng.normal())
        path = log.save(tmp_path / "log.npz")
        restored = QueryLog.load(path, capacity=50)
        original = log.as_workload()
        reloaded = restored.as_workload()
        np.testing.assert_array_equal(original.features, reloaded.features)
        np.testing.assert_array_equal(original.targets, reloaded.targets)

    def test_saved_log_is_a_valid_training_workload(self, tmp_path):
        from repro.surrogate.persistence import load_workload, save_workload

        log = QueryLog(capacity=10)
        log.record_many([make_evaluation(i, 2 * i) for i in range(6)])
        workload = load_workload(log.save(tmp_path / "log"))
        assert len(workload) == 6
        # And the other direction: a saved workload loads as a log.
        save_workload(workload, tmp_path / "wl.npz")
        assert len(QueryLog.load(tmp_path / "wl.npz")) == 6

    def test_empty_log_refuses_snapshot_as_workload(self):
        with pytest.raises(ValidationError):
            QueryLog(capacity=3).as_workload()

    def test_record_many_is_atomic_on_dimension_mismatch(self):
        log = QueryLog(capacity=10)
        log.record_vector([0.0, 0.0, 0.1, 0.1], 1.0)
        batch = [make_evaluation([0.0, 0.0], 1.0), make_evaluation([0.5], 2.0)]
        with pytest.raises(ValidationError):
            log.record_many(batch)
        # Nothing from the bad batch was committed: a retry cannot duplicate pairs.
        assert len(log) == 1
        assert log.total_recorded == 1


# --------------------------------------------------------------------------- warm start
class TestWarmStartBoosting:
    @pytest.fixture()
    def regression_problem(self):
        rng = np.random.default_rng(11)
        features = rng.normal(size=(240, 3))
        targets = 2.0 * features[:, 0] + np.sin(3.0 * features[:, 1]) + 0.1 * rng.normal(size=240)
        return features, targets

    def test_warm_start_adds_exactly_the_requested_rounds(self, regression_problem):
        features, targets = regression_problem
        model = GradientBoostingRegressor(n_estimators=15, max_depth=3, random_state=0)
        model.fit(features, targets)
        model.set_params(warm_start=True, n_estimators=25)
        model.fit(features, targets)
        assert model.num_trees_ == 25

    def test_warm_start_preserves_the_existing_trees(self, regression_problem):
        features, targets = regression_problem
        import copy

        model = GradientBoostingRegressor(n_estimators=15, max_depth=3, random_state=0)
        model.fit(features, targets)
        frozen = copy.deepcopy(model)
        model.set_params(warm_start=True, n_estimators=25)
        model.fit(features, targets)
        for old_tree, new_tree in zip(frozen._trees, model._trees):
            np.testing.assert_array_equal(old_tree.predict(features), new_tree.predict(features))

    def test_warm_start_reduces_training_error(self, regression_problem):
        features, targets = regression_problem
        model = GradientBoostingRegressor(n_estimators=10, max_depth=3, random_state=0)
        model.fit(features, targets)
        before = root_mean_squared_error(targets, model.predict(features))
        model.set_params(warm_start=True, n_estimators=40)
        model.fit(features, targets)
        after = root_mean_squared_error(targets, model.predict(features))
        assert after < before

    def test_warm_start_requires_n_estimators_to_grow(self, regression_problem):
        features, targets = regression_problem
        model = GradientBoostingRegressor(n_estimators=10, max_depth=3, random_state=0)
        model.fit(features, targets)
        model.set_params(warm_start=True)
        with pytest.raises(ValidationError):
            model.fit(features, targets)

    def test_warm_start_rejects_feature_count_changes(self, regression_problem):
        features, targets = regression_problem
        model = GradientBoostingRegressor(n_estimators=10, max_depth=3, random_state=0)
        model.fit(features, targets)
        model.set_params(warm_start=True, n_estimators=20)
        with pytest.raises(ValidationError):
            model.fit(features[:, :2], targets)

    def test_warm_start_on_unfitted_model_behaves_like_plain_fit(self, regression_problem):
        features, targets = regression_problem
        warm = GradientBoostingRegressor(n_estimators=12, max_depth=3, warm_start=True, random_state=0)
        cold = GradientBoostingRegressor(n_estimators=12, max_depth=3, random_state=0)
        np.testing.assert_array_equal(
            warm.fit(features, targets).predict(features),
            cold.fit(features, targets).predict(features),
        )


# --------------------------------------------------------------------------- drift monitor
class TestDriftMonitor:
    def test_no_drift_when_residuals_match_baseline(self):
        monitor = DriftMonitor(window=50, threshold=2.0, min_observations=10, baseline_rmse=1.0)
        rng = np.random.default_rng(0)
        targets = rng.normal(size=100)
        monitor.observe(targets + rng.normal(scale=1.0, size=100), targets)
        assert not monitor.drifted
        assert monitor.drift_score == pytest.approx(1.0, rel=0.35)

    def test_drift_fires_on_a_mean_shifted_workload(self):
        monitor = DriftMonitor(window=50, threshold=2.0, min_observations=10, baseline_rmse=1.0)
        rng = np.random.default_rng(1)
        targets = rng.normal(size=60)
        monitor.observe(targets, targets + 5.0)  # predictions off by a constant 5σ
        assert monitor.drifted
        assert monitor.drift_score > 2.0

    def test_min_observations_guards_against_early_firing(self):
        monitor = DriftMonitor(window=50, threshold=2.0, min_observations=30, baseline_rmse=1.0)
        monitor.observe(np.full(10, 100.0), np.zeros(10))
        assert monitor.num_observations == 10
        assert not monitor.drifted

    def test_rebaseline_clears_the_window(self):
        monitor = DriftMonitor(window=50, threshold=2.0, min_observations=5, baseline_rmse=1.0)
        monitor.observe(np.full(20, 10.0), np.zeros(20))
        assert monitor.drifted
        monitor.rebaseline(2.0)
        assert monitor.baseline_rmse == 2.0
        assert monitor.num_observations == 0
        assert not monitor.drifted

    def test_non_finite_residuals_are_skipped(self):
        monitor = DriftMonitor(window=10, min_observations=1, baseline_rmse=1.0)
        monitor.observe([1.0, np.nan, 2.0], [1.0, 0.0, np.inf])
        assert monitor.num_observations == 1  # only the first pair is finite

    def test_validation(self):
        with pytest.raises(ValidationError):
            DriftMonitor(window=0)
        with pytest.raises(ValidationError):
            DriftMonitor(threshold=0.0)
        with pytest.raises(ValidationError):
            DriftMonitor(baseline_rmse=float("nan"))
        with pytest.raises(ValidationError):
            DriftMonitor().observe([1.0, 2.0], [1.0])


# --------------------------------------------------------------------------- incremental trainer
class TestIncrementalTrainer:
    @pytest.fixture()
    def online_trainer(self, fitted_surf):
        return IncrementalTrainer.from_finder(fitted_surf, warm_start_rounds=10)

    def test_from_finder_reconstructs_the_training_workload(self, fitted_surf, online_trainer):
        assert len(online_trainer.workload) == fitted_surf.workload_size_
        np.testing.assert_array_equal(
            online_trainer.workload.features, fitted_surf.workload_features_
        )
        np.testing.assert_array_equal(
            online_trainer.workload.targets, fitted_surf.workload_targets_
        )

    def test_from_finder_requires_targets(self, fitted_surf):
        import copy

        stale = copy.copy(fitted_surf)
        stale.workload_targets_ = None  # what a pre-v2 bundle load leaves behind
        with pytest.raises(NotFittedError):
            IncrementalTrainer.from_finder(stale)

    def test_refresh_with_no_pairs_is_a_noop(self, online_trainer):
        surrogate = online_trainer.surrogate
        satisfiability = online_trainer.satisfiability
        outcome = online_trainer.refresh([])
        assert outcome.mode == "noop"
        assert outcome.num_new_pairs == 0
        assert online_trainer.surrogate is surrogate
        assert online_trainer.satisfiability is satisfiability

    def test_incremental_refresh_improves_rmse_on_the_new_pairs(self, online_trainer, density_engine):
        from repro.surrogate.workload import generate_workload

        fresh = list(generate_workload(density_engine, 120, random_state=123))
        outcome = online_trainer.refresh(fresh)
        assert outcome.mode == "incremental"
        assert outcome.num_new_pairs == 120
        assert outcome.rmse_after <= outcome.rmse_before
        assert len(online_trainer.workload) == 400 + 120

    def test_refresh_updates_the_satisfiability_sample(self, online_trainer):
        before = online_trainer.satisfiability.num_samples
        pairs = [make_evaluation([0.5, 0.5], value, half=0.05) for value in (1.0, 2.0, 3.0)]
        online_trainer.refresh(pairs)
        assert online_trainer.satisfiability.num_samples == before + 3

    def test_mean_shift_triggers_the_full_refit_fallback(self, online_trainer, density_workload):
        # Shift every statistic by many baseline-RMSEs: rolling residuals explode.
        shift = 20.0 * online_trainer.drift_monitor.baseline_rmse + 1.0
        drifted = shifted_copy(density_workload.subset(150, random_state=5), shift)
        outcome = online_trainer.refresh(drifted)
        assert outcome.drifted
        assert outcome.mode == "full"
        # The full refit rebaselines the monitor on the merged workload.
        assert online_trainer.drift_monitor.num_observations == 0

    def test_full_refit_can_be_forced(self, online_trainer):
        outcome = online_trainer.refresh([], force_full=True)
        assert outcome.mode == "full"

    def test_incremental_vs_full_refit_rmse_tolerance(self, fitted_surf, density_engine):
        """Warm-start refresh must stay in the same accuracy class as a full refit."""
        from repro.surrogate.workload import generate_workload

        fresh = generate_workload(density_engine, 200, random_state=77)
        holdout = generate_workload(density_engine, 200, random_state=78)

        incremental = IncrementalTrainer.from_finder(fitted_surf, warm_start_rounds=15)
        incremental.refresh(list(fresh))
        full = IncrementalTrainer.from_finder(fitted_surf)
        full.refresh(list(fresh), force_full=True)

        rmse_incremental = incremental.surrogate.rmse(holdout.features, holdout.targets)
        rmse_full = full.surrogate.rmse(holdout.features, holdout.targets)
        assert rmse_incremental <= 1.3 * rmse_full

    def test_max_workload_size_keeps_the_most_recent_evaluations(self, online_trainer, density_workload):
        trainer = IncrementalTrainer(
            trainer=online_trainer.trainer,
            workload=online_trainer.workload,
            surrogate=online_trainer.surrogate,
            warm_start_rounds=5,
            max_workload_size=420,
        )
        fresh = [make_evaluation([0.5, 0.5], float(i), half=0.05) for i in range(50)]
        trainer.refresh(fresh)
        assert len(trainer.workload) == 420
        assert trainer.workload[-1].value == 49.0

    def test_dimension_mismatch_is_rejected(self, online_trainer):
        with pytest.raises(ValidationError):
            online_trainer.refresh([make_evaluation([0.1], 1.0)])


# --------------------------------------------------------------------------- service refresh
@pytest.fixture()
def online_service(fitted_surf):
    return SuRFService(fitted_surf, query_log=QueryLog(capacity=10_000))


class TestServiceRefresh:
    def test_refresh_without_a_log_is_refused(self, fitted_surf):
        service = SuRFService(fitted_surf)
        with pytest.raises(ValidationError):
            service.refresh()
        with pytest.raises(ValidationError):
            service.observe(Region(np.array([0.5, 0.5]), np.array([0.1, 0.1])), 1.0)

    def test_exact_engine_requires_a_log(self, fitted_surf, density_engine):
        with pytest.raises(ValidationError):
            SuRFService(fitted_surf, exact_engine=density_engine)

    def test_refresh_with_zero_new_pairs_is_bit_identical(self, online_service, density_query):
        before = online_service.find_regions(density_query)
        outcome = online_service.refresh()
        assert outcome.mode == "noop"
        assert online_service.generation == 0
        after = online_service.find_regions(density_query)
        # The cache survived the no-op refresh and the finder was not swapped.
        assert after.status == "cached"
        assert after.result is before.result
        assert proposals_identical(before.proposals, after.proposals)
        assert online_service.stats.refreshes == 0

    def test_refresh_folds_observed_pairs_and_hot_swaps(self, online_service, density_query, density_engine):
        from repro.surrogate.workload import generate_workload

        served = online_service.find_regions(density_query)
        assert served.status == "served"
        samples_before = online_service.finder.satisfiability_.num_samples
        finder_before = online_service.finder

        online_service.observe_many(list(generate_workload(density_engine, 80, random_state=55)))
        assert online_service.pending_log_entries == 80
        outcome = online_service.refresh()

        assert outcome.mode == "incremental"
        assert outcome.num_new_pairs == 80
        assert online_service.pending_log_entries == 0
        assert online_service.generation == 1
        assert online_service.stats.refreshes == 1
        # The swap installed a NEW finder object; the old one is untouched.
        assert online_service.finder is not finder_before
        assert finder_before.satisfiability_.num_samples == samples_before
        assert online_service.finder.satisfiability_.num_samples == samples_before + 80
        assert online_service.finder.workload_size_ == finder_before.workload_size_ + 80
        # The cache was invalidated: the same query runs GSO again.
        assert online_service.cached_queries == 0
        assert online_service.find_regions(density_query).status == "served"

    def test_served_proposals_are_harvested_with_an_exact_engine(
        self, fitted_surf, density_query, density_engine
    ):
        log = QueryLog(capacity=1_000)
        service = SuRFService(fitted_surf, query_log=log, exact_engine=density_engine)
        response = service.find_regions(density_query)
        assert response.status == "served"
        assert len(log) == len(response.proposals)
        assert service.stats.harvested == len(response.proposals)
        # Harvested values are the engine's exact statistics for the proposals.
        for entry, proposal in zip(log.snapshot(), response.proposals):
            assert entry.value == pytest.approx(density_engine.evaluate(proposal.region))

    def test_observed_pairs_count_as_pending_until_refreshed(self, online_service):
        online_service.observe(Region(np.array([0.5, 0.5]), np.array([0.1, 0.1])), 2.0)
        assert online_service.pending_log_entries == 1

    def test_observed_pairs_count_as_harvested(self, online_service):
        online_service.observe(Region(np.array([0.5, 0.5]), np.array([0.1, 0.1])), 2.0)
        online_service.observe_many(
            [make_evaluation([0.4, 0.4], value, half=0.05) for value in (1.0, 2.0)]
        )
        assert online_service.stats.harvested == 3

    def test_bundle_round_trip_supports_online_refresh(self, fitted_surf, tmp_path, density_engine):
        """A v2 bundle carries workload targets, so a loaded service can refresh."""
        from repro.core.finder import SuRF
        from repro.surrogate.workload import generate_workload

        loaded = SuRF.load(fitted_surf.save(tmp_path / "finder.surf"))
        np.testing.assert_array_equal(loaded.workload_targets_, fitted_surf.workload_targets_)
        service = SuRFService(loaded, query_log=QueryLog())
        service.observe_many(list(generate_workload(density_engine, 40, random_state=2)))
        assert service.refresh().mode == "incremental"


# --------------------------------------------------------------------------- refresh policy
class TestRefreshPolicy:
    def test_run_once_waits_for_min_new_pairs(self, online_service, density_engine):
        from repro.surrogate.workload import generate_workload

        policy = RefreshPolicy(online_service, interval_seconds=60.0, min_new_pairs=50)
        online_service.observe_many(list(generate_workload(density_engine, 30, random_state=8)))
        assert not policy.run_once()
        online_service.observe_many(list(generate_workload(density_engine, 30, random_state=9)))
        assert policy.run_once()
        assert policy.num_refreshes == 1
        assert policy.last_outcome.mode == "incremental"
        assert online_service.generation == 1

    def test_background_thread_triggers_refresh(self, online_service, density_engine):
        import time

        from repro.surrogate.workload import generate_workload

        online_service.observe_many(list(generate_workload(density_engine, 40, random_state=10)))
        with RefreshPolicy(online_service, interval_seconds=0.05, min_new_pairs=10) as policy:
            deadline = time.time() + 30.0
            while policy.num_refreshes == 0 and time.time() < deadline:
                time.sleep(0.05)
        assert policy.num_refreshes >= 1
        assert online_service.generation >= 1

    def test_background_thread_survives_a_failed_refresh(self, online_service, density_engine):
        import time

        from repro.surrogate.workload import generate_workload

        calls = {"count": 0}
        real_refresh = online_service.refresh

        def flaky_refresh(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                raise ValidationError("transient training failure")
            return real_refresh(*args, **kwargs)

        online_service.refresh = flaky_refresh
        online_service.observe_many(list(generate_workload(density_engine, 40, random_state=11)))
        policy = RefreshPolicy(online_service, interval_seconds=0.05, min_new_pairs=10)
        policy.start()
        deadline = time.time() + 30.0
        while policy.num_refreshes == 0 and time.time() < deadline:
            time.sleep(0.05)
        with pytest.raises(ValidationError, match="transient"):
            policy.stop()
        # The first tick failed, the loop kept going and the retry succeeded.
        assert policy.num_errors == 1
        assert policy.num_refreshes >= 1
        assert online_service.generation >= 1

    def test_stop_reraises_background_errors(self, fitted_surf):
        service = SuRFService(fitted_surf)  # no query log: refresh raises
        policy = RefreshPolicy(service, interval_seconds=60.0, min_new_pairs=1)
        policy.last_error = ValidationError("boom")
        with pytest.raises(ValidationError):
            policy.stop()

    def test_exit_keeps_background_error_when_body_raised(self, fitted_surf):
        # A with-body exception must not silently erase a background refresh
        # failure: the body error propagates, the refresh error stays readable.
        policy = RefreshPolicy(SuRFService(fitted_surf), interval_seconds=60.0)
        background = ValidationError("refresh died")
        with pytest.raises(RuntimeError, match="body failed"):
            with policy:
                policy.last_error = background
                raise RuntimeError("body failed")
        assert policy.last_error is background

    def test_validation(self, online_service):
        with pytest.raises(ValidationError):
            RefreshPolicy(online_service, interval_seconds=0.0)
        with pytest.raises(ValidationError):
            RefreshPolicy(online_service, min_new_pairs=0)


# --------------------------------------------------------------------------- stats
class TestServiceStatsHitRate:
    def test_hit_rate_is_zero_before_any_query(self):
        # Regression guard: reading stats on a fresh service must not divide by zero.
        assert ServiceStats().hit_rate == 0.0
        assert ServiceStats().as_dict()["hit_rate"] == 0.0

    def test_hit_rate_on_a_fresh_service(self, fitted_surf):
        assert SuRFService(fitted_surf).stats.hit_rate == 0.0
