"""Unit tests for the baseline region-mining methods."""

import numpy as np
import pytest

from repro.baselines.naive import NaiveGridSearch
from repro.baselines.prim import PRIM, PrimBox
from repro.baselines.topk import TopKRegionFinder
from repro.baselines.true_gso import TrueFunctionGSO
from repro.core.evaluation import average_iou, compliance_rate
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.exceptions import ValidationError
from repro.optim.gso import GSOParameters


class TestNaiveGridSearch:
    def test_candidate_count_formula(self, density_engine):
        naive = NaiveGridSearch(num_centers=4, num_lengths=3)
        assert naive.num_candidates(density_engine) == (4 * 3) ** density_engine.region_dim

    def test_finds_planted_region(self, small_density_synthetic, density_engine, density_query):
        naive = NaiveGridSearch(num_centers=6, num_lengths=4, max_half_fraction=0.3)
        proposals = naive.find_regions(density_engine, density_query, max_proposals=5)
        assert proposals
        assert average_iou(proposals, small_density_synthetic.ground_truth_regions) > 0.2

    def test_all_proposals_satisfy_query(self, density_engine, density_query):
        naive = NaiveGridSearch(num_centers=5, num_lengths=3, max_half_fraction=0.3)
        proposals = naive.find_regions(density_engine, density_query)
        assert compliance_rate(proposals, density_engine, density_query) == pytest.approx(1.0)

    def test_report_records_evaluations(self, density_engine, density_query):
        naive = NaiveGridSearch(num_centers=4, num_lengths=3)
        naive.find_regions(density_engine, density_query)
        report = naive.last_report_
        assert report.num_evaluated == report.num_candidates
        assert not report.timed_out
        assert report.fraction_evaluated == pytest.approx(1.0)

    def test_time_budget_stops_early(self, density_engine, density_query):
        naive = NaiveGridSearch(num_centers=12, num_lengths=12, time_budget_seconds=0.01)
        naive.find_regions(density_engine, density_query)
        report = naive.last_report_
        assert report.timed_out
        assert report.fraction_evaluated < 1.0

    def test_max_candidates_strides_the_grid(self, density_engine, density_query):
        naive = NaiveGridSearch(num_centers=10, num_lengths=10, max_candidates=100)
        naive.find_regions(density_engine, density_query)
        assert naive.last_report_.num_evaluated <= 110

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            NaiveGridSearch(num_centers=0)
        with pytest.raises(ValidationError):
            NaiveGridSearch(min_half_fraction=0.5, max_half_fraction=0.1)


class TestPRIM:
    def test_finds_high_response_box(self, aggregate_synthetic):
        dataset = aggregate_synthetic.dataset
        points = dataset.select_columns(aggregate_synthetic.region_columns).values
        response = dataset.column("target")
        prim = PRIM(mass_min=0.02, threshold=2.0, max_boxes=2)
        boxes = prim.find_boxes(points, response)
        assert boxes
        assert boxes[0].mean_response > 2.0

    def test_box_overlaps_ground_truth_on_aggregate_data(self, aggregate_synthetic):
        dataset = aggregate_synthetic.dataset
        points = dataset.select_columns(aggregate_synthetic.region_columns).values
        response = dataset.column("target")
        prim = PRIM(mass_min=0.02, threshold=2.0, max_boxes=2)
        proposals = prim.find_regions(points, response)
        assert average_iou(proposals, aggregate_synthetic.ground_truth_regions) > 0.15

    def test_density_data_without_response_gives_poor_regions(self, small_density_synthetic):
        dataset = small_density_synthetic.dataset
        points = dataset.values
        prim = PRIM(mass_min=0.02, max_boxes=2)
        proposals = prim.find_regions(points, np.ones(points.shape[0]))
        # With a constant response PRIM has no signal — exactly the paper's point.
        assert average_iou(proposals, small_density_synthetic.ground_truth_regions) < 0.3

    def test_box_support_respects_mass_min(self, aggregate_synthetic):
        dataset = aggregate_synthetic.dataset
        points = dataset.select_columns(aggregate_synthetic.region_columns).values
        response = dataset.column("target")
        prim = PRIM(mass_min=0.05, max_boxes=1)
        boxes = prim.find_boxes(points, response)
        assert boxes[0].support >= int(np.ceil(0.05 * points.shape[0]))

    def test_max_boxes_limits_output(self, aggregate_synthetic):
        dataset = aggregate_synthetic.dataset
        points = dataset.select_columns(aggregate_synthetic.region_columns).values
        response = dataset.column("target")
        prim = PRIM(mass_min=0.02, max_boxes=1)
        assert len(prim.find_boxes(points, response)) <= 1

    def test_prim_box_to_region_handles_degenerate_sides(self):
        box = PrimBox(
            lower=np.array([0.1, 0.5]),
            upper=np.array([0.3, 0.5]),
            mean_response=1.0,
            support=10,
            mass=0.1,
        )
        region = box.to_region()
        assert np.all(region.half_lengths > 0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            PRIM(peel_alpha=0.9)
        with pytest.raises(ValidationError):
            PRIM(mass_min=0.0)
        with pytest.raises(ValidationError):
            PRIM(max_boxes=0)

    def test_mismatched_response_length_rejected(self):
        prim = PRIM()
        with pytest.raises(ValidationError):
            prim.find_boxes(np.ones((10, 2)), np.ones(5))


class TestTrueFunctionGSO:
    def test_finds_planted_region(self, small_density_synthetic, density_engine, density_query):
        baseline = TrueFunctionGSO(
            gso_parameters=GSOParameters(num_particles=40, num_iterations=30, random_state=0),
            random_state=0,
        )
        proposals = baseline.find_regions(density_engine, density_query)
        result = baseline.last_result_
        assert result.function_evaluations > 0
        regions = proposals or []
        # Either the de-duplicated proposals or the feasible particles should hit the GT.
        from repro.data.regions import Region

        particles = [Region.from_vector(v) for v in result.optimization.feasible_positions]
        iou = average_iou(particles or regions, small_density_synthetic.ground_truth_regions)
        assert iou > 0.1

    def test_records_elapsed_time(self, density_engine, density_query):
        baseline = TrueFunctionGSO(
            gso_parameters=GSOParameters(num_particles=20, num_iterations=10, random_state=0)
        )
        baseline.find_regions(density_engine, density_query)
        assert baseline.last_result_.elapsed_seconds > 0


class TestTopK:
    def test_returns_k_proposals_sorted_desc(self, density_engine):
        finder = TopKRegionFinder(num_candidates=200, random_state=0)
        proposals = finder.find_regions(density_engine, k=5)
        assert len(proposals) == 5
        values = [proposal.predicted_value for proposal in proposals]
        assert values == sorted(values, reverse=True)

    def test_largest_false_returns_smallest(self, density_engine):
        finder = TopKRegionFinder(num_candidates=100, random_state=0)
        smallest = finder.find_regions(density_engine, k=3, largest=False)
        largest = finder.find_regions(density_engine, k=3, largest=True)
        assert max(p.predicted_value for p in smallest) <= min(p.predicted_value for p in largest)

    def test_deduplication_reduces_overlap(self, density_engine):
        finder = TopKRegionFinder(num_candidates=300, deduplicate=True, overlap_threshold=0.2, random_state=1)
        proposals = finder.find_regions(density_engine, k=5)
        for i in range(len(proposals)):
            for j in range(i + 1, len(proposals)):
                assert proposals[i].region.iou(proposals[j].region) < 0.2

    def test_invalid_k_rejected(self, density_engine):
        finder = TopKRegionFinder(num_candidates=10)
        with pytest.raises(ValidationError):
            finder.find_regions(density_engine, k=0)

    def test_invalid_candidates_rejected(self):
        with pytest.raises(ValidationError):
            TopKRegionFinder(num_candidates=0)
