"""Unit tests for experiment configuration, common helpers and public exports."""

import numpy as np
import pytest

import repro
from repro.exceptions import ValidationError
from repro.experiments import common
from repro.experiments.config import MEDIUM, PAPER, SMALL, ExperimentScale, get_scale
from repro.experiments.reporting import format_table, summarize_rows


class TestScales:
    def test_predefined_scales_are_ordered(self):
        assert SMALL.num_points < MEDIUM.num_points < PAPER.num_points
        assert SMALL.workload_size < MEDIUM.workload_size < PAPER.workload_size

    def test_get_scale_resolves_names(self):
        assert get_scale("medium") is MEDIUM
        assert get_scale("PAPER") is PAPER

    def test_get_scale_unknown_name(self):
        with pytest.raises(ValidationError):
            get_scale("galactic")

    def test_custom_scale_validation(self):
        with pytest.raises(ValidationError):
            ExperimentScale(
                name="bad",
                num_points=10,
                workload_size=600,
                num_particles=10,
                num_iterations=10,
                naive_max_candidates=10,
                time_budget_seconds=1.0,
            )


class TestCommonHelpers:
    def test_workload_size_grows_with_dim_and_is_capped(self):
        assert common.workload_size_for_dim(SMALL, 1) == SMALL.workload_size
        assert common.workload_size_for_dim(SMALL, 3) > common.workload_size_for_dim(SMALL, 1)
        assert common.workload_size_for_dim(SMALL, 50) <= 300_000

    def test_gso_parameters_from_scale(self):
        params = common.gso_parameters(SMALL, random_state=1)
        assert params.num_particles == SMALL.num_particles
        assert params.num_iterations == SMALL.num_iterations

    def test_gso_parameters_accept_overrides(self):
        params = common.gso_parameters(SMALL, num_iterations=7)
        assert params.num_iterations == 7

    def test_make_dataset_and_default_query(self):
        scale = ExperimentScale(
            name="tiny", num_points=1_200, workload_size=100, num_particles=10,
            num_iterations=5, naive_max_candidates=50, time_budget_seconds=1.0,
        )
        synthetic = common.make_dataset("density", dim=1, num_regions=1, scale=scale, random_state=0)
        assert synthetic.dataset.num_rows >= scale.num_points
        query = common.default_query(synthetic)
        assert query.direction == "above"
        assert query.threshold < synthetic.ground_truth[0].statistic_value


class TestReportingEdgeCases:
    def test_format_table_with_explicit_columns(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.strip().startswith("c")
        assert "b" not in header

    def test_format_table_handles_nan_and_large_values(self):
        text = format_table([{"x": float("nan"), "y": 123456.789, "z": 0.0001}])
        assert "nan" in text

    def test_summarize_rows_missing_value_column(self):
        with pytest.raises(ValidationError):
            summarize_rows([{"method": "SuRF"}], group_by=("method",), value="iou")

    def test_summarize_rows_empty_input(self):
        assert summarize_rows([], group_by=("method",), value="iou") == []


class TestPublicApi:
    def test_top_level_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_data_package_exports(self):
        import repro.data as data

        for name in data.__all__:
            assert hasattr(data, name), name

    def test_ml_package_exports(self):
        import repro.ml as ml

        for name in ml.__all__:
            assert hasattr(ml, name), name

    def test_surrogate_package_exports(self):
        import repro.surrogate as surrogate

        for name in surrogate.__all__:
            assert hasattr(surrogate, name), name
