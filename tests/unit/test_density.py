"""Unit tests for the density-estimation substrate (KDE, histogram, region mass)."""

import numpy as np
import pytest

from repro.data.regions import Region
from repro.density.histogram import HistogramDensityEstimator
from repro.density.kde import GaussianKDE
from repro.density.region_mass import RegionMassEstimator
from repro.exceptions import NotFittedError, ValidationError


@pytest.fixture(scope="module")
def gaussian_cloud():
    rng = np.random.default_rng(8)
    return rng.normal(loc=[0.5, 0.5], scale=0.1, size=(3_000, 2))


@pytest.fixture(scope="module")
def uniform_cloud():
    rng = np.random.default_rng(9)
    return rng.uniform(size=(3_000, 2))


class TestGaussianKDE:
    def test_pdf_is_higher_at_the_mode(self, gaussian_cloud):
        kde = GaussianKDE().fit(gaussian_cloud)
        center = kde.pdf(np.array([[0.5, 0.5]]))[0]
        tail = kde.pdf(np.array([[0.95, 0.95]]))[0]
        assert center > 10 * tail

    def test_pdf_nonnegative(self, uniform_cloud):
        kde = GaussianKDE().fit(uniform_cloud)
        values = kde.pdf(np.random.default_rng(0).uniform(size=(50, 2)))
        assert np.all(values >= 0)

    def test_region_mass_of_whole_domain_close_to_one(self, uniform_cloud):
        kde = GaussianKDE().fit(uniform_cloud)
        big = Region.from_bounds([-2.0, -2.0], [3.0, 3.0])
        assert kde.region_mass(big) == pytest.approx(1.0, abs=1e-3)

    def test_region_mass_monotone_in_region_size(self, gaussian_cloud):
        kde = GaussianKDE().fit(gaussian_cloud)
        small = Region([0.5, 0.5], [0.05, 0.05])
        large = Region([0.5, 0.5], [0.2, 0.2])
        assert kde.region_mass(large) > kde.region_mass(small)

    def test_region_mass_batch_matches_single(self, gaussian_cloud):
        kde = GaussianKDE().fit(gaussian_cloud)
        regions = [Region([0.5, 0.5], [0.1, 0.1]), Region([0.2, 0.8], [0.05, 0.05])]
        lowers = np.stack([region.lower for region in regions])
        uppers = np.stack([region.upper for region in regions])
        batch = kde.region_mass_batch(lowers, uppers)
        singles = [kde.region_mass(region) for region in regions]
        np.testing.assert_allclose(batch, singles, rtol=1e-10)

    def test_mass_roughly_matches_empirical_fraction(self, uniform_cloud):
        kde = GaussianKDE().fit(uniform_cloud)
        region = Region.from_bounds([0.2, 0.2], [0.6, 0.6])
        empirical = np.mean(
            np.all((uniform_cloud >= region.lower) & (uniform_cloud <= region.upper), axis=1)
        )
        assert kde.region_mass(region) == pytest.approx(empirical, abs=0.05)

    def test_subsampling_keeps_dim_and_works(self, uniform_cloud):
        kde = GaussianKDE(max_samples=200, random_state=0).fit(uniform_cloud)
        assert kde.dim == 2
        assert kde._samples.shape[0] == 200

    def test_fixed_bandwidth_scalar_and_vector(self, uniform_cloud):
        scalar = GaussianKDE(bandwidth=0.1).fit(uniform_cloud)
        np.testing.assert_allclose(scalar.bandwidths_, [0.1, 0.1])
        vector = GaussianKDE(bandwidth=np.array([0.1, 0.2])).fit(uniform_cloud)
        np.testing.assert_allclose(vector.bandwidths_, [0.1, 0.2])

    def test_silverman_rule_accepted(self, uniform_cloud):
        kde = GaussianKDE(bandwidth="silverman").fit(uniform_cloud)
        assert np.all(kde.bandwidths_ > 0)

    def test_invalid_bandwidth_rejected(self, uniform_cloud):
        with pytest.raises(ValidationError):
            GaussianKDE(bandwidth="unknown-rule").fit(uniform_cloud)
        with pytest.raises(ValidationError):
            GaussianKDE(bandwidth=-0.5).fit(uniform_cloud)

    def test_sampling_draws_near_training_data(self, gaussian_cloud):
        kde = GaussianKDE().fit(gaussian_cloud)
        samples = kde.sample(500, random_state=1)
        assert samples.shape == (500, 2)
        assert np.linalg.norm(samples.mean(axis=0) - [0.5, 0.5]) < 0.05

    def test_unfitted_usage_raises(self):
        with pytest.raises(NotFittedError):
            GaussianKDE().pdf(np.ones((1, 2)))

    def test_too_few_points_rejected(self):
        with pytest.raises(ValidationError):
            GaussianKDE().fit(np.ones((1, 2)))


class TestHistogramEstimator:
    def test_region_mass_of_domain_is_one(self, uniform_cloud):
        estimator = HistogramDensityEstimator(bins_per_dim=10).fit(uniform_cloud)
        box = Region.from_bounds([0.0, 0.0], [1.0, 1.0])
        assert estimator.region_mass(box) == pytest.approx(1.0, abs=1e-6)

    def test_region_mass_fractional_bins(self, uniform_cloud):
        estimator = HistogramDensityEstimator(bins_per_dim=10).fit(uniform_cloud)
        half = Region.from_bounds([0.0, 0.0], [0.5, 1.0])
        assert estimator.region_mass(half) == pytest.approx(0.5, abs=0.05)

    def test_pdf_zero_outside_domain(self, uniform_cloud):
        estimator = HistogramDensityEstimator(bins_per_dim=5).fit(uniform_cloud)
        assert estimator.pdf(np.array([[5.0, 5.0]]))[0] == 0.0

    def test_pdf_positive_inside_domain(self, uniform_cloud):
        estimator = HistogramDensityEstimator(bins_per_dim=5).fit(uniform_cloud)
        assert estimator.pdf(np.array([[0.5, 0.5]]))[0] > 0.0

    def test_high_dimensional_data_rejected(self):
        with pytest.raises(ValidationError):
            HistogramDensityEstimator().fit(np.random.default_rng(0).uniform(size=(100, 7)))

    def test_unfitted_usage_raises(self):
        with pytest.raises(NotFittedError):
            HistogramDensityEstimator().region_mass(Region([0.5], [0.1]))


class TestRegionMassEstimator:
    def test_kde_method(self, gaussian_cloud):
        estimator = RegionMassEstimator(method="kde").fit(gaussian_cloud)
        assert estimator.region_mass(Region([0.5, 0.5], [0.2, 0.2])) > 0.5

    def test_histogram_method(self, uniform_cloud):
        estimator = RegionMassEstimator(method="histogram").fit(uniform_cloud)
        assert estimator.region_mass(Region([0.5, 0.5], [0.25, 0.25])) == pytest.approx(0.25, abs=0.05)

    def test_floor_applied(self, gaussian_cloud):
        estimator = RegionMassEstimator(method="kde", floor=1e-3).fit(gaussian_cloud)
        far_away = Region([30.0, 30.0], [0.01, 0.01])
        assert estimator.region_mass(far_away) == pytest.approx(1e-3)

    def test_mass_of_vectors_matches_scalar(self, gaussian_cloud):
        estimator = RegionMassEstimator(method="kde").fit(gaussian_cloud)
        regions = [Region([0.5, 0.5], [0.1, 0.1]), Region([0.1, 0.9], [0.05, 0.05])]
        vectors = np.stack([region.to_vector() for region in regions])
        batch = estimator.mass_of_vectors(vectors)
        singles = [estimator.mass_of_vector(vector) for vector in vectors]
        np.testing.assert_allclose(batch, singles, rtol=1e-10)

    def test_invalid_method_rejected(self):
        with pytest.raises(ValidationError):
            RegionMassEstimator(method="parzen")

    def test_invalid_floor_rejected(self):
        with pytest.raises(ValidationError):
            RegionMassEstimator(floor=0.0)

    def test_unfitted_usage_raises(self):
        with pytest.raises(NotFittedError):
            RegionMassEstimator().region_mass(Region([0.5], [0.1]))
