"""Unit tests for the Eq. 5 satisfiability model."""

import numpy as np
import pytest

from repro.core.query import RegionQuery
from repro.core.satisfiability import SatisfiabilityModel
from repro.exceptions import NotFittedError, ValidationError


@pytest.fixture()
def uniform_model():
    """A model over the values 1..100 — every probability is exact."""
    return SatisfiabilityModel().fit(np.arange(1.0, 101.0))


class TestFitting:
    def test_unfitted_model_raises(self):
        model = SatisfiabilityModel()
        with pytest.raises(NotFittedError):
            model.cdf(1.0)
        with pytest.raises(NotFittedError):
            model.probability(RegionQuery(threshold=1.0))

    def test_empty_sample_rejected(self):
        with pytest.raises(ValidationError):
            SatisfiabilityModel().fit([])

    def test_all_nan_sample_rejected(self):
        with pytest.raises(ValidationError):
            SatisfiabilityModel().fit([np.nan, np.inf, -np.inf])

    def test_non_finite_values_dropped(self):
        model = SatisfiabilityModel().fit([1.0, np.nan, 2.0, np.inf])
        assert model.num_samples == 2

    def test_from_workload_uses_targets(self, density_workload):
        model = SatisfiabilityModel.from_workload(density_workload)
        assert model.num_samples == len(density_workload)


class TestCdf:
    def test_cdf_is_monotone_non_decreasing(self, density_workload):
        model = SatisfiabilityModel.from_workload(density_workload)
        probes = np.linspace(density_workload.targets.min() - 1, density_workload.targets.max() + 1, 200)
        values = [model.cdf(probe) for probe in probes]
        assert all(later >= earlier for earlier, later in zip(values, values[1:]))
        assert values[0] == 0.0
        assert values[-1] == 1.0

    def test_cdf_exact_on_known_sample(self, uniform_model):
        assert uniform_model.cdf(0.0) == 0.0
        assert uniform_model.cdf(50.0) == pytest.approx(0.5)
        assert uniform_model.cdf(100.0) == 1.0

    def test_quantile(self, uniform_model):
        assert uniform_model.quantile(0.0) == pytest.approx(1.0)
        assert uniform_model.quantile(1.0) == pytest.approx(100.0)
        with pytest.raises(ValidationError):
            uniform_model.quantile(1.5)


class TestProbability:
    def test_above_probability_counts_strict_exceedances(self, uniform_model):
        # 50 of the 100 values exceed 50.
        assert uniform_model.probability(RegionQuery(threshold=50.0, direction="above")) == pytest.approx(0.5)
        # Nothing exceeds the maximum.
        assert uniform_model.probability(RegionQuery(threshold=100.0, direction="above")) == 0.0
        assert uniform_model.probability(RegionQuery(threshold=0.0, direction="above")) == 1.0

    def test_below_probability_is_strict(self, uniform_model):
        # 49 of the 100 values are strictly below 50.
        assert uniform_model.probability(RegionQuery(threshold=50.0, direction="below")) == pytest.approx(0.49)
        assert uniform_model.probability(RegionQuery(threshold=1.0, direction="below")) == 0.0
        assert uniform_model.probability(RegionQuery(threshold=1_000.0, direction="below")) == 1.0

    def test_probabilities_are_probabilities(self, uniform_model):
        for threshold in (-5.0, 0.0, 3.7, 55.5, 200.0):
            for direction in ("above", "below"):
                value = uniform_model.probability(RegionQuery(threshold=threshold, direction=direction))
                assert 0.0 <= value <= 1.0

    def test_satisfiable_threshold_inverts_probability(self, uniform_model):
        threshold = uniform_model.satisfiable_threshold(0.25, direction="above")
        assert uniform_model.probability(
            RegionQuery(threshold=threshold, direction="above")
        ) == pytest.approx(0.25, abs=0.02)
        with pytest.raises(ValidationError):
            uniform_model.satisfiable_threshold(2.0)


class TestFinderIntegration:
    def test_fitted_surf_exposes_satisfiability(self, fitted_surf, density_query, density_workload):
        probability = fitted_surf.satisfiability(density_query)
        assert 0.0 < probability < 1.0
        hopeless = RegionQuery(threshold=float(density_workload.targets.max()) * 10, direction="above")
        assert fitted_surf.satisfiability(hopeless) == 0.0

    def test_unfitted_surf_satisfiability_raises(self, density_query):
        from repro.core.finder import SuRF

        with pytest.raises(NotFittedError):
            SuRF().satisfiability(density_query)
