"""Unit tests for the shared utility helpers."""

import numpy as np
import pytest

from repro.exceptions import (
    DimensionMismatchError,
    ReproError,
    TimeoutExceededError,
    ValidationError,
)
from repro.utils.rng import ensure_rng, optional_seed, spawn_rng
from repro.utils.validation import (
    check_array,
    check_dimensions_match,
    check_in_range,
    check_positive,
    check_probability,
    check_same_length,
)


class TestRng:
    def test_none_creates_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        first = ensure_rng(42).uniform(size=5)
        second = ensure_rng(42).uniform(size=5)
        np.testing.assert_allclose(first, second)

    def test_generator_passes_through(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_rng_children_are_independent(self):
        rng = np.random.default_rng(1)
        children = spawn_rng(rng, 3)
        assert len(children) == 3
        draws = [child.uniform() for child in children]
        assert len(set(draws)) == 3

    def test_spawn_rng_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(np.random.default_rng(0), -1)

    def test_optional_seed_in_range(self):
        seed = optional_seed(np.random.default_rng(0))
        assert 0 <= seed < 2**31


class TestValidation:
    def test_check_array_converts_lists(self):
        array = check_array([[1, 2], [3, 4]], ndim=2)
        assert array.dtype == np.float64
        assert array.shape == (2, 2)

    def test_check_array_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError):
            check_array([1.0, 2.0], ndim=2)

    def test_check_array_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_array([np.nan, 1.0])

    def test_check_array_rejects_empty_by_default(self):
        with pytest.raises(ValidationError):
            check_array([])
        assert check_array([], allow_empty=True).size == 0

    def test_check_array_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_array(["a", "b"])

    def test_check_positive(self):
        assert check_positive(1.5) == 1.5
        with pytest.raises(ValidationError):
            check_positive(0.0)
        assert check_positive(0.0, strict=False) == 0.0
        with pytest.raises(ValidationError):
            check_positive(-1.0, strict=False)
        with pytest.raises(ValidationError):
            check_positive(np.inf)

    def test_check_in_range(self):
        assert check_in_range(0.5, 0.0, 1.0) == 0.5
        with pytest.raises(ValidationError):
            check_in_range(1.5, 0.0, 1.0)
        with pytest.raises(ValidationError):
            check_in_range(0.0, 0.0, 1.0, inclusive=False)

    def test_check_probability(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        with pytest.raises(ValidationError):
            check_probability(1.2)

    def test_check_same_length(self):
        check_same_length([1, 2], [3, 4])
        with pytest.raises(DimensionMismatchError):
            check_same_length([1, 2], [3])

    def test_check_dimensions_match(self):
        check_dimensions_match(3, 3)
        with pytest.raises(DimensionMismatchError):
            check_dimensions_match(2, 3)


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(ValidationError, ReproError)
        assert issubclass(ValidationError, ValueError)
        assert issubclass(DimensionMismatchError, ValidationError)
        assert issubclass(TimeoutExceededError, RuntimeError)

    def test_timeout_records_fraction(self):
        error = TimeoutExceededError("too slow", fraction_done=0.25)
        assert error.fraction_done == 0.25
