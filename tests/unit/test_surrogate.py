"""Unit tests for the surrogate layer: workloads, training and the fitted wrapper."""

import numpy as np
import pytest

from repro.data.regions import Region
from repro.exceptions import ValidationError
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.surrogate.model import SurrogateModel
from repro.surrogate.training import SurrogateTrainer, default_param_grid
from repro.surrogate.workload import (
    RegionEvaluation,
    RegionWorkload,
    generate_workload,
    recommended_workload_size,
)


class TestWorkload:
    def test_generate_workload_sizes_and_dim(self, density_engine):
        workload = generate_workload(density_engine, 50, random_state=1)
        assert len(workload) == 50
        assert workload.region_dim == density_engine.region_dim
        assert workload.features.shape == (50, 2 * density_engine.region_dim)
        assert workload.targets.shape == (50,)

    def test_workload_values_match_engine(self, density_engine):
        workload = generate_workload(density_engine, 10, random_state=2)
        for evaluation in workload:
            assert density_engine.evaluate(evaluation.region) == pytest.approx(evaluation.value)

    def test_generated_regions_respect_volume_fractions(self, density_engine):
        workload = generate_workload(
            density_engine, 40, min_fraction=0.01, max_fraction=0.15, random_state=3
        )
        bounds = density_engine.region_bounds()
        domain_volume = bounds.volume()
        for evaluation in workload:
            fraction = evaluation.region.volume() / domain_volume
            assert 0.005 <= fraction <= 0.16

    def test_subset_and_split(self, density_workload):
        subset = density_workload.subset(100, random_state=0)
        assert len(subset) == 100
        train, test = density_workload.split(test_fraction=0.25, random_state=0)
        assert len(train) + len(test) == len(density_workload)
        assert len(test) == round(0.25 * len(density_workload))

    def test_merged_with(self, density_workload):
        merged = density_workload.merged_with(density_workload)
        assert len(merged) == 2 * len(density_workload)

    def test_indexing_and_iteration(self, density_workload):
        first = density_workload[0]
        assert isinstance(first, RegionEvaluation)
        assert first.vector.shape == (2 * density_workload.region_dim,)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValidationError):
            RegionWorkload([])

    def test_mixed_dimensionality_rejected(self):
        evaluations = [
            RegionEvaluation(Region([0.5], [0.1]), 1.0),
            RegionEvaluation(Region([0.5, 0.5], [0.1, 0.1]), 2.0),
        ]
        with pytest.raises(ValidationError):
            RegionWorkload(evaluations)

    def test_invalid_subset_size_rejected(self, density_workload):
        with pytest.raises(ValidationError):
            density_workload.subset(0)
        with pytest.raises(ValidationError):
            density_workload.subset(10_000)

    def test_recommended_workload_size_grows_with_dim(self):
        assert recommended_workload_size(1) < recommended_workload_size(3)
        assert recommended_workload_size(10) <= 300_000


class TestSurrogateTrainer:
    def test_training_produces_accurate_surrogate(self, density_workload, density_engine):
        trainer = SurrogateTrainer(
            estimator=GradientBoostingRegressor(n_estimators=60, max_depth=4, random_state=0),
            random_state=0,
        )
        surrogate = trainer.train(density_workload)
        report = trainer.last_report_
        assert report.test_rmse is not None
        # The statistic spans roughly [0, few thousand]; the surrogate should do
        # far better than predicting the mean everywhere.
        baseline = float(np.std(density_workload.targets))
        assert report.test_rmse < baseline

    def test_report_fields(self, density_workload):
        trainer = SurrogateTrainer(random_state=0)
        trainer.train(density_workload)
        report = trainer.last_report_
        assert report.num_training_examples < len(density_workload)
        assert report.training_seconds > 0
        assert not report.hypertuned
        assert report.best_params is None

    def test_hypertuning_records_best_params(self, density_workload):
        small_workload = density_workload.subset(150, random_state=1)
        trainer = SurrogateTrainer(
            estimator=GradientBoostingRegressor(n_estimators=20, random_state=0),
            hypertune=True,
            param_grid={"max_depth": [2, 4], "learning_rate": [0.1]},
            cv=2,
            random_state=0,
        )
        trainer.train(small_workload)
        report = trainer.last_report_
        assert report.hypertuned
        assert set(report.best_params) == {"max_depth", "learning_rate"}
        assert len(report.cv_results) == 2

    def test_holdout_can_be_disabled(self, density_workload):
        trainer = SurrogateTrainer(holdout_fraction=0.0, random_state=0)
        trainer.train(density_workload)
        report = trainer.last_report_
        assert report.num_training_examples == len(density_workload)
        assert report.test_rmse is None

    def test_invalid_holdout_rejected(self):
        with pytest.raises(ValidationError):
            SurrogateTrainer(holdout_fraction=1.0)

    def test_train_from_engine_matches_manual_pipeline(self, density_engine, fast_trainer):
        from repro.ml.base import clone
        from repro.surrogate.workload import generate_workload

        trainer = SurrogateTrainer(estimator=clone(fast_trainer.estimator), random_state=0)
        surrogate = trainer.train_from_engine(density_engine, num_evaluations=200, random_state=1)
        report = trainer.last_report_
        assert report is not None

        # Same seed, same protocol: identical to generate_workload + train.
        manual_trainer = SurrogateTrainer(estimator=clone(fast_trainer.estimator), random_state=0)
        workload = generate_workload(density_engine, 200, random_state=1)
        manual = manual_trainer.train(workload)
        probe = workload.features[:16]
        np.testing.assert_array_equal(surrogate.predict(probe), manual.predict(probe))

    def test_alternative_estimator_family(self, density_workload):
        trainer = SurrogateTrainer(estimator=KNeighborsRegressor(n_neighbors=5), random_state=0)
        surrogate = trainer.train(density_workload)
        assert isinstance(surrogate.estimator, KNeighborsRegressor)

    def test_default_param_grid_matches_paper_parameters(self):
        full = default_param_grid(small=False)
        assert set(full) == {"learning_rate", "max_depth", "n_estimators", "reg_lambda"}
        combinations = 1
        for values in full.values():
            combinations *= len(values)
        assert combinations == 144  # 3 × 4 × 3 × 4, as stated in the paper


class TestSurrogateModel:
    def test_predict_region_matches_vector(self, fitted_surf, small_density_synthetic):
        surrogate = fitted_surf.surrogate_
        region = small_density_synthetic.ground_truth[0].region
        assert surrogate.predict_region(region) == pytest.approx(
            surrogate.predict_vector(region.to_vector())
        )

    def test_predict_shapes(self, fitted_surf):
        surrogate = fitted_surf.surrogate_
        vectors = np.tile(np.array([0.5, 0.5, 0.1, 0.1]), (7, 1))
        assert surrogate.predict(vectors).shape == (7,)

    def test_predict_accepts_single_vector(self, fitted_surf):
        surrogate = fitted_surf.surrogate_
        assert np.isscalar(surrogate.predict_vector(np.array([0.5, 0.5, 0.1, 0.1])))

    def test_dimension_checks(self, fitted_surf):
        surrogate = fitted_surf.surrogate_
        with pytest.raises(ValidationError):
            surrogate.predict(np.ones((2, 3)))
        with pytest.raises(ValidationError):
            surrogate.predict_region(Region([0.5], [0.1]))

    def test_surrogate_tracks_planted_density_peak(self, fitted_surf, small_density_synthetic):
        surrogate = fitted_surf.surrogate_
        truth = small_density_synthetic.ground_truth[0].region
        background = truth.translated(np.full(truth.dim, 0.4)).clipped([0.0, 0.0], [1.0, 1.0])
        assert surrogate.predict_region(truth) > surrogate.predict_region(background)

    def test_rmse_helper(self, fitted_surf, density_workload):
        surrogate = fitted_surf.surrogate_
        rmse = surrogate.rmse(density_workload.features, density_workload.targets)
        assert rmse >= 0

    def test_invalid_region_dim_rejected(self):
        with pytest.raises(ValidationError):
            SurrogateModel(GradientBoostingRegressor(), region_dim=0)
