"""Unit tests for train/test splitting, K-fold CV and grid search."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.linear import RidgeRegression
from repro.ml.metrics import root_mean_squared_error
from repro.ml.model_selection import GridSearchCV, KFold, cross_val_score, train_test_split
from repro.ml.tree import DecisionTreeRegressor


@pytest.fixture(scope="module")
def linear_problem():
    rng = np.random.default_rng(4)
    features = rng.uniform(-1, 1, size=(300, 2))
    targets = features[:, 0] * 2 - features[:, 1] + rng.normal(0, 0.1, 300)
    return features, targets


class TestTrainTestSplit:
    def test_sizes(self, linear_problem):
        features, targets = linear_problem
        f_train, f_test, t_train, t_test = train_test_split(features, targets, test_size=0.2, random_state=0)
        assert f_test.shape[0] == 60
        assert f_train.shape[0] == 240
        assert t_train.shape[0] == 240
        assert t_test.shape[0] == 60

    def test_disjoint_and_complete(self, linear_problem):
        features, targets = linear_problem
        f_train, f_test, _, _ = train_test_split(features, targets, test_size=0.25, random_state=1)
        combined = np.vstack([f_train, f_test])
        assert combined.shape[0] == features.shape[0]
        assert {tuple(row) for row in combined} == {tuple(row) for row in features}

    def test_reproducible(self, linear_problem):
        features, targets = linear_problem
        first = train_test_split(features, targets, random_state=7)
        second = train_test_split(features, targets, random_state=7)
        np.testing.assert_allclose(first[0], second[0])

    def test_no_shuffle_keeps_order(self, linear_problem):
        features, targets = linear_problem
        _, f_test, _, _ = train_test_split(features, targets, test_size=0.1, shuffle=False)
        np.testing.assert_allclose(f_test, features[:30])

    def test_invalid_test_size(self, linear_problem):
        features, targets = linear_problem
        with pytest.raises(ValidationError):
            train_test_split(features, targets, test_size=1.5)

    def test_mismatched_lengths(self, linear_problem):
        features, targets = linear_problem
        with pytest.raises(ValidationError):
            train_test_split(features, targets[:-5])


class TestKFold:
    def test_every_sample_appears_in_exactly_one_test_fold(self):
        data = np.arange(23).reshape(-1, 1)
        seen = []
        for _, test_idx in KFold(n_splits=5).split(data):
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(23))

    def test_number_of_folds(self):
        data = np.arange(10).reshape(-1, 1)
        assert len(list(KFold(n_splits=5).split(data))) == 5

    def test_train_and_test_are_disjoint(self):
        data = np.arange(20).reshape(-1, 1)
        for train_idx, test_idx in KFold(n_splits=4).split(data):
            assert set(train_idx).isdisjoint(set(test_idx))

    def test_shuffle_changes_order_but_not_coverage(self):
        data = np.arange(12).reshape(-1, 1)
        plain = [test.tolist() for _, test in KFold(n_splits=3).split(data)]
        shuffled = [test.tolist() for _, test in KFold(n_splits=3, shuffle=True, random_state=0).split(data)]
        assert plain != shuffled
        assert sorted(sum(shuffled, [])) == list(range(12))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValidationError):
            list(KFold(n_splits=5).split(np.arange(3).reshape(-1, 1)))

    def test_invalid_n_splits(self):
        with pytest.raises(ValidationError):
            KFold(n_splits=1)


class TestCrossValScore:
    def test_returns_one_score_per_fold(self, linear_problem):
        features, targets = linear_problem
        scores = cross_val_score(RidgeRegression(alpha=0.1), features, targets, cv=4, random_state=0)
        assert scores.shape == (4,)

    def test_good_model_scores_better_than_bad(self, linear_problem):
        features, targets = linear_problem
        good = cross_val_score(RidgeRegression(alpha=0.01), features, targets, cv=3, random_state=0)
        bad = cross_val_score(RidgeRegression(alpha=10_000.0), features, targets, cv=3, random_state=0)
        assert good.mean() < bad.mean()

    def test_custom_scoring_callable(self, linear_problem):
        features, targets = linear_problem
        scores = cross_val_score(
            RidgeRegression(alpha=0.1),
            features,
            targets,
            cv=3,
            scoring=lambda y_true, y_pred: float(np.max(np.abs(y_true - y_pred))),
            random_state=0,
        )
        assert np.all(scores >= 0)


class TestGridSearchCV:
    def test_finds_better_alpha(self, linear_problem):
        features, targets = linear_problem
        search = GridSearchCV(
            RidgeRegression(), {"alpha": [0.01, 1_000.0]}, cv=3, random_state=0
        ).fit(features, targets)
        assert search.best_params_ == {"alpha": 0.01}

    def test_results_cover_all_combinations(self, linear_problem):
        features, targets = linear_problem
        search = GridSearchCV(
            DecisionTreeRegressor(),
            {"max_depth": [1, 3], "min_samples_leaf": [1, 5]},
            cv=3,
            random_state=0,
        )
        assert search.num_combinations == 4
        search.fit(features, targets)
        assert len(search.results_) == 4

    def test_best_estimator_is_refitted(self, linear_problem):
        features, targets = linear_problem
        search = GridSearchCV(RidgeRegression(), {"alpha": [0.1, 1.0]}, cv=3, random_state=0)
        search.fit(features, targets)
        predictions = search.predict(features)
        assert predictions.shape == targets.shape

    def test_refit_false_blocks_predict(self, linear_problem):
        features, targets = linear_problem
        search = GridSearchCV(RidgeRegression(), {"alpha": [0.1]}, cv=3, refit=False, random_state=0)
        search.fit(features, targets)
        with pytest.raises(NotFittedError):
            search.predict(features)

    def test_predict_before_fit_raises(self):
        search = GridSearchCV(RidgeRegression(), {"alpha": [0.1]})
        with pytest.raises(NotFittedError):
            search.predict(np.ones((2, 2)))

    def test_empty_grid_rejected(self):
        with pytest.raises(ValidationError):
            GridSearchCV(RidgeRegression(), {})

    def test_greater_is_better_flips_selection(self, linear_problem):
        features, targets = linear_problem
        # With RMSE and greater_is_better=True the *worse* alpha wins, by construction.
        search = GridSearchCV(
            RidgeRegression(),
            {"alpha": [0.01, 10_000.0]},
            cv=3,
            scoring=root_mean_squared_error,
            greater_is_better=True,
            random_state=0,
        ).fit(features, targets)
        assert search.best_params_ == {"alpha": 10_000.0}

    def test_works_with_gradient_boosting_grid(self, linear_problem):
        features, targets = linear_problem
        search = GridSearchCV(
            GradientBoostingRegressor(n_estimators=10, random_state=0),
            {"max_depth": [2, 3], "learning_rate": [0.1]},
            cv=3,
            random_state=0,
        ).fit(features[:150], targets[:150])
        assert set(search.best_params_) == {"max_depth", "learning_rate"}
