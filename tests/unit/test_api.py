"""Unit tests for the repro.api front door: envelopes, kernel, middleware,
multi-tenant routing and the declarative plugin registries."""

import json

import numpy as np
import pytest

from repro.api import (
    BACKENDS,
    OPTIMIZERS,
    STATISTICS,
    SURROGATES,
    Cache,
    Coalesce,
    Execute,
    FindRequest,
    FindResponse,
    Harvest,
    ModelRegistry,
    Normalize,
    ProposalPayload,
    Registry,
    SatisfiabilityGate,
    ServiceKernel,
    ServiceStats,
    compose,
    default_chain,
    engine_from_config,
    kernel_from_config,
    resolve_backend,
    resolve_optimizer,
    resolve_statistic,
    resolve_surrogate,
    statistic_from_config,
)
from repro.core.finder import SuRF
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.statistics import AverageStatistic, CountStatistic
from repro.exceptions import NotFittedError, ValidationError
from repro.optim.gso import GlowwormSwarmOptimizer, GSOParameters
from repro.serve.service import SuRFService
from repro.surrogate.training import SurrogateTrainer


def proposals_identical(first, second) -> bool:
    if len(first) != len(second):
        return False
    return all(
        np.array_equal(lhs.region.to_vector(), rhs.region.to_vector())
        and lhs.predicted_value == rhs.predicted_value
        and lhs.objective_value == rhs.objective_value
        and lhs.support == rhs.support
        for lhs, rhs in zip(first, second)
    )


@pytest.fixture()
def hopeless_query(density_workload):
    return RegionQuery(threshold=float(density_workload.targets.max()) * 10, direction="above")


@pytest.fixture(scope="module")
def aggregate_surf(aggregate_engine):
    """A second fitted finder (different dataset x statistic) for tenancy tests."""
    from repro.ml.boosting import GradientBoostingRegressor
    from repro.surrogate.workload import generate_workload

    finder = SuRF(
        trainer=SurrogateTrainer(
            estimator=GradientBoostingRegressor(n_estimators=30, max_depth=3, random_state=0),
            random_state=0,
        ),
        use_density_guidance=False,
        gso_parameters=GSOParameters(num_particles=25, num_iterations=15, random_state=0),
        random_state=0,
    )
    return finder.fit(generate_workload(aggregate_engine, 300, random_state=3))


# --------------------------------------------------------------------------- envelopes
class TestFindRequest:
    def test_defaults_and_query_round_trip(self, density_query):
        request = FindRequest.from_query(density_query)
        assert request.model == "default"
        assert request.trace_id is None
        assert request.max_proposals is None
        assert request.query() == density_query

    def test_dict_and_json_round_trip(self):
        request = FindRequest(
            threshold=123.456,
            direction="below",
            size_penalty=2.5,
            model="crimes/count",
            max_proposals=3,
            trace_id="req-42",
        )
        assert FindRequest.from_dict(request.to_dict()) == request
        assert FindRequest.from_json(request.to_json()) == request
        payload = json.loads(request.to_json())
        assert payload["model"] == "crimes/count"

    def test_validation(self):
        with pytest.raises(ValidationError):
            FindRequest(threshold=float("nan"))
        with pytest.raises(ValidationError):
            FindRequest(threshold=1.0, direction="sideways")
        with pytest.raises(ValidationError):
            FindRequest(threshold=1.0, model="")
        with pytest.raises(ValidationError):
            FindRequest(threshold=1.0, max_proposals=0)
        with pytest.raises(ValidationError):
            FindRequest(threshold=1.0, trace_id=42)
        with pytest.raises(ValidationError):
            FindRequest.from_query("not-a-query")

    def test_unknown_payload_keys_are_rejected_by_name(self):
        with pytest.raises(ValidationError, match="tresh"):
            FindRequest.from_dict({"threshold": 1.0, "tresh": 2.0})
        with pytest.raises(ValidationError):
            FindRequest.from_dict("not-a-mapping")
        with pytest.raises(ValidationError):
            FindRequest.from_json("{not json")


class TestFindResponse:
    def test_round_trip_excludes_the_result_handle(self, fitted_surf, density_query):
        kernel = ServiceKernel(fitted_surf)
        response = kernel.handle(density_query)
        assert response.status == "served"
        assert response.result is not None
        reconstructed = FindResponse.from_json(response.to_json())
        assert reconstructed == response  # result is excluded from comparison
        assert reconstructed.result is None
        assert len(reconstructed.proposals) == len(response.proposals)

    def test_proposal_payload_round_trip_and_region(self):
        payload = ProposalPayload(
            center=(0.5, 0.25), half_lengths=(0.1, 0.2), predicted_value=7.0, objective_value=1.5
        )
        assert ProposalPayload.from_dict(payload.to_dict()) == payload
        region = payload.region()
        np.testing.assert_array_equal(region.center, [0.5, 0.25])
        np.testing.assert_array_equal(region.half_lengths, [0.1, 0.2])

    def test_status_is_validated(self):
        with pytest.raises(ValidationError):
            FindResponse(model="default", status="lost", satisfiability=0.5)

    def test_rejected_and_regions_views(self):
        response = FindResponse(model="m", status="rejected", satisfiability=0.0)
        assert response.rejected
        assert response.regions == ()


# --------------------------------------------------------------------------- generic registry
class TestRegistry:
    def test_register_resolve_create(self):
        registry = Registry("gadget")
        registry.register("one", dict)
        assert registry.resolve("one") is dict
        assert registry.create("one", a=1) == {"a": 1}
        assert "one" in registry and "two" not in registry
        assert len(registry) == 1
        assert list(registry) == ["one"]

    def test_reregistering_the_same_factory_is_idempotent(self):
        registry = Registry("gadget")
        registry.register("one", dict)
        registry.register("one", dict)  # no-op
        assert len(registry) == 1

    def test_conflicting_registration_requires_replace(self):
        registry = Registry("gadget")
        registry.register("one", dict)
        with pytest.raises(ValidationError, match="already registered"):
            registry.register("one", list)
        registry.register("one", list, replace=True)
        assert registry.resolve("one") is list

    def test_aliases_and_case_insensitivity(self):
        registry = Registry("gadget")
        registry.register("Main", dict, aliases=("other",))
        assert registry.resolve("main") is dict
        assert registry.resolve("OTHER") is dict
        assert registry.names() == ("main", "other")

    def test_decorator_form(self):
        registry = Registry("gadget")

        @registry.register("fn")
        def factory():
            return 7

        assert factory() == 7
        assert registry.create("fn") == 7

    def test_unregister_and_errors(self):
        registry = Registry("gadget")
        registry.register("one", dict)
        registry.unregister("one")
        assert "one" not in registry
        with pytest.raises(ValidationError, match="unknown gadget"):
            registry.unregister("one")
        with pytest.raises(ValidationError, match="unknown gadget 'one'"):
            registry.resolve("one")
        with pytest.raises(ValidationError):
            registry.register("", dict)
        with pytest.raises(ValidationError):
            registry.register("bad", "not-callable")

    def test_resolve_passes_callables_through(self):
        registry = Registry("gadget")
        assert registry.resolve(dict) is dict


# --------------------------------------------------------------------------- built-in registries
class TestBuiltinRegistries:
    def test_statistics_registry(self):
        assert isinstance(resolve_statistic("count")(), CountStatistic)
        assert {"count", "density", "average", "sum", "variance", "median", "ratio"} <= set(
            STATISTICS.names()
        )

    def test_backends_registry(self):
        from repro.backends import NumpyBackend

        assert resolve_backend("numpy") is NumpyBackend
        assert {"numpy", "chunked", "sqlite", "sharded"} <= set(BACKENDS.names())
        with pytest.raises(ValidationError, match="unknown backend"):
            resolve_backend("parquet")

    def test_surrogates_registry(self):
        from repro.ml import GradientBoostingRegressor, RandomForestRegressor

        assert resolve_surrogate("boosting") is GradientBoostingRegressor
        assert resolve_surrogate("forest") is RandomForestRegressor
        assert "knn" in SURROGATES.names()

    def test_optimizers_registry(self):
        assert resolve_optimizer("gso") is GlowwormSwarmOptimizer
        assert "pso" in OPTIMIZERS.names()

    def test_trainer_accepts_estimator_family_names(self, density_workload):
        trainer = SurrogateTrainer(
            estimator="forest",
            estimator_options={"n_estimators": 5, "max_depth": 3},
            random_state=0,
        )
        surrogate = trainer.train(density_workload)
        assert np.isfinite(surrogate.predict(density_workload.features[:4])).all()

    def test_trainer_rejects_options_without_a_name(self):
        with pytest.raises(ValidationError, match="estimator_options"):
            SurrogateTrainer(estimator=None, estimator_options={"n_estimators": 5})


# --------------------------------------------------------------------------- config builders
class TestConfigBuilders:
    def test_statistic_from_config_variants(self):
        assert isinstance(statistic_from_config("count"), CountStatistic)
        spec = statistic_from_config({"name": "average", "target_column": "value"})
        assert isinstance(spec, AverageStatistic)
        live = CountStatistic()
        assert statistic_from_config(live) is live
        with pytest.raises(ValidationError, match="'name'"):
            statistic_from_config({"target_column": "value"})
        with pytest.raises(ValidationError):
            statistic_from_config(42)

    def test_engine_from_config(self, simple_dataset):
        engine = engine_from_config(
            simple_dataset,
            {"statistic": {"name": "average", "target_column": "value"}, "backend": "sqlite"},
        )
        assert isinstance(engine, DataEngine)
        assert engine.backend.name == "sqlite"
        engine.close()

    def test_engine_from_config_rejects_unknown_keys(self, simple_dataset):
        with pytest.raises(ValidationError, match="cache"):
            engine_from_config(simple_dataset, {"statistic": "count", "cache": 5})
        with pytest.raises(ValidationError, match="'statistic'"):
            engine_from_config(simple_dataset, {"backend": "numpy"})
        with pytest.raises(ValidationError):
            engine_from_config(simple_dataset, "not-a-mapping")

    def test_kernel_from_config(self, fitted_surf, tmp_path):
        kernel = kernel_from_config(fitted_surf, {"cache_size": 9})
        assert kernel.cache_size == 9
        path = fitted_surf.save(tmp_path / "finder.surf")
        loaded = kernel_from_config(path, {"min_satisfiability": 0.1})
        assert loaded.min_satisfiability == 0.1
        with pytest.raises(ValidationError, match="cache_sz"):
            kernel_from_config(fitted_surf, {"cache_sz": 9})


# --------------------------------------------------------------------------- kernel serving
class TestServiceKernel:
    def test_requires_fitted_finder_and_valid_config(self, fitted_surf):
        with pytest.raises(NotFittedError):
            ServiceKernel(SuRF())
        with pytest.raises(ValidationError):
            ServiceKernel("not-a-finder")
        with pytest.raises(ValidationError):
            ServiceKernel(fitted_surf, cache_size=-1)
        with pytest.raises(ValidationError):
            ServiceKernel(fitted_surf, name="")

    def test_handle_accepts_queries_and_requests(self, fitted_surf, density_query):
        kernel = ServiceKernel(fitted_surf)
        served = kernel.handle(density_query)
        assert served.status == "served"
        assert served.model == "default"
        assert served.proposals
        cached = kernel.handle(FindRequest.from_query(density_query, trace_id="t-1"))
        assert cached.status == "cached"
        assert cached.trace_id == "t-1"
        assert cached.result is served.result
        with pytest.raises(ValidationError):
            kernel.handle("neither")

    def test_generation_is_reported_on_responses(self, fitted_surf, density_query):
        kernel = ServiceKernel(fitted_surf)
        assert kernel.handle(density_query).generation == 0
        assert kernel.generation == 0

    def test_rejection_and_stats(self, fitted_surf, density_query, hopeless_query):
        kernel = ServiceKernel(fitted_surf)
        rejected = kernel.handle(hopeless_query)
        assert rejected.status == "rejected"
        assert rejected.satisfiability == 0.0
        assert rejected.proposals == ()
        kernel.handle(density_query)
        kernel.handle(density_query)
        stats = kernel.stats
        assert stats.queries == 3
        assert stats.rejected == 1
        assert stats.cache_hits == 1
        assert stats.gso_runs == 1
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_batch_matches_sequential(self, fitted_surf, density_query, hopeless_query):
        variant = RegionQuery(
            threshold=density_query.threshold * 0.9,
            direction="above",
            size_penalty=density_query.size_penalty,
        )
        burst = [density_query, hopeless_query, variant, density_query]
        sequential = [ServiceKernel(fitted_surf).handle(query) for query in burst]
        batched = ServiceKernel(fitted_surf).handle_batch(burst)
        for before, after in zip(sequential, batched):
            assert before.status in ("served", "rejected")
            assert after.proposals == before.proposals

    def test_per_request_max_proposals_does_not_pollute_the_cache(
        self, fitted_surf, density_query
    ):
        kernel = ServiceKernel(fitted_surf)
        full = kernel.handle(FindRequest.from_query(density_query))
        capped = kernel.handle(FindRequest.from_query(density_query, max_proposals=1))
        assert capped.status == "served"  # distinct cache identity, not a hit
        assert len(capped.proposals) == 1
        assert len(full.proposals) >= len(capped.proposals)
        # And both entries are independently cached now.
        assert kernel.handle(FindRequest.from_query(density_query, max_proposals=1)).status == "cached"
        assert kernel.handle(FindRequest.from_query(density_query)).status == "cached"

    def test_batch_coalesces_same_cap_only(self, fitted_surf, density_query):
        kernel = ServiceKernel(fitted_surf)
        responses = kernel.handle_batch(
            [
                FindRequest.from_query(density_query),
                FindRequest.from_query(density_query),
                FindRequest.from_query(density_query, max_proposals=1),
            ]
        )
        assert [response.status for response in responses] == ["served"] * 3
        stats = kernel.stats
        assert stats.gso_runs == 2
        assert stats.coalesced == 1

    def test_from_bundle_rejects_unknown_options_by_name(self, fitted_surf, tmp_path):
        path = fitted_surf.save(tmp_path / "finder.surf")
        kernel = ServiceKernel.from_bundle(path, cache_size=4)
        assert kernel.cache_size == 4
        with pytest.raises(ValidationError, match="cache_sz"):
            ServiceKernel.from_bundle(path, cache_sz=4)

    def test_repr_names_the_chain(self, fitted_surf):
        assert "normalize" in repr(ServiceKernel(fitted_surf))


# --------------------------------------------------------------------------- middleware
class MetricsMiddleware:
    """A deployment-style custom middleware: counts statuses per batch."""

    name = "metrics"

    def __init__(self):
        self.batches = 0
        self.statuses = []

    def __call__(self, ctx, next):
        next(ctx)
        self.batches += 1
        self.statuses.extend(state.status for state in ctx.states)
        return ctx


class TestMiddleware:
    def test_custom_middleware_observes_every_batch(self, fitted_surf, density_query, hopeless_query):
        metrics = MetricsMiddleware()
        kernel = ServiceKernel(fitted_surf, middleware=[metrics, *default_chain()])
        kernel.handle(density_query)
        kernel.handle_batch([density_query, hopeless_query])
        assert metrics.batches == 2
        assert metrics.statuses == ["served", "cached", "rejected"]

    def test_custom_chain_results_are_bit_identical(self, fitted_surf, density_query):
        plain = ServiceKernel(fitted_surf).handle(density_query)
        observed = ServiceKernel(
            fitted_surf, middleware=[MetricsMiddleware(), *default_chain()]
        ).handle(density_query)
        assert proposals_identical(plain.result.proposals, observed.result.proposals)

    def test_compose_rejects_non_callables(self):
        with pytest.raises(ValidationError, match="position 1"):
            compose([Normalize(), "not-a-middleware"])

    def test_default_chain_order(self):
        names = [middleware.name for middleware in default_chain()]
        assert names == [
            "normalize",
            "satisfiability-gate",
            "cache",
            "coalesce",
            "execute",
            "harvest",
        ]
        for middleware in default_chain():
            assert isinstance(
                middleware, (Normalize, SatisfiabilityGate, Cache, Coalesce, Execute, Harvest)
            )

    def test_shim_accepts_a_custom_chain(self, fitted_surf, density_query):
        metrics = MetricsMiddleware()
        service = SuRFService(fitted_surf, middleware=[metrics, *default_chain()])
        assert service.find_regions(density_query).status == "served"
        assert metrics.statuses == ["served"]


# --------------------------------------------------------------------------- multi-tenant routing
class TestModelRegistry:
    @pytest.fixture()
    def registry(self, fitted_surf, aggregate_surf):
        registry = ModelRegistry()
        registry.register("crimes/count", fitted_surf)
        registry.register("sales/average", aggregate_surf)
        return registry

    def test_register_get_names(self, registry, fitted_surf):
        assert registry.names() == ("crimes/count", "sales/average")
        assert len(registry) == 2
        assert "crimes/count" in registry
        assert registry.get("crimes/count").finder is fitted_surf
        with pytest.raises(ValidationError, match="already registered"):
            registry.register("crimes/count", fitted_surf)
        with pytest.raises(ValidationError, match="registered:"):
            registry.get("nope")
        with pytest.raises(ValidationError):
            registry.register("", fitted_surf)

    def test_register_prebuilt_kernel_adopts_the_name(self, fitted_surf):
        registry = ModelRegistry()
        kernel = ServiceKernel(fitted_surf, cache_size=3)
        assert registry.register("tenant-a", kernel) is kernel
        assert kernel.name == "tenant-a"
        with pytest.raises(ValidationError, match="options"):
            ModelRegistry().register("tenant-b", ServiceKernel(fitted_surf), cache_size=5)

    def test_routing_by_model_name(self, registry, density_query):
        response = registry.find(FindRequest.from_query(density_query, model="crimes/count"))
        assert response.model == "crimes/count"
        assert response.status == "served"
        with pytest.raises(ValidationError, match="unknown model"):
            registry.find(FindRequest(threshold=1.0, model="ghost"))
        with pytest.raises(ValidationError):
            registry.find(density_query)  # plain queries carry no tenant name

    def test_mixed_tenant_batch_preserves_input_order(
        self, registry, density_query, aggregate_surf
    ):
        aggregate_threshold = float(aggregate_surf.satisfiability_.quantile(0.5))
        requests = [
            FindRequest.from_query(density_query, model="crimes/count"),
            FindRequest(threshold=aggregate_threshold, model="sales/average"),
            FindRequest.from_query(density_query, model="crimes/count"),
        ]
        responses = registry.find_batch(requests)
        assert [response.model for response in responses] == [
            "crimes/count",
            "sales/average",
            "crimes/count",
        ]
        # The two crimes requests went through one kernel batch: coalesced.
        stats = registry.stats()
        assert stats["crimes/count"].coalesced == 1
        assert stats["crimes/count"].gso_runs == 1

    def test_batch_with_unknown_tenant_fails_before_serving(self, registry, density_query):
        before = registry.stats()["crimes/count"].queries
        with pytest.raises(ValidationError, match="unknown model"):
            registry.find_batch(
                [
                    FindRequest.from_query(density_query, model="crimes/count"),
                    FindRequest(threshold=1.0, model="ghost"),
                ]
            )
        assert registry.stats()["crimes/count"].queries == before
        with pytest.raises(ValidationError, match="position 0"):
            registry.find_batch([density_query])

    def test_unregister(self, registry):
        kernel = registry.unregister("sales/average")
        assert kernel.name == "sales/average"
        assert registry.names() == ("crimes/count",)
        with pytest.raises(ValidationError):
            registry.unregister("sales/average")

    def test_load_from_bundle_validates_options(self, fitted_surf, tmp_path):
        path = fitted_surf.save(tmp_path / "finder.surf")
        registry = ModelRegistry()
        kernel = registry.load("from-disk", path, cache_size=7)
        assert kernel.cache_size == 7
        assert "from-disk" in registry
        with pytest.raises(ValidationError, match="cache_sz"):
            registry.load("bad-options", path, cache_sz=7)
        assert "bad-options" not in registry

    def test_tenant_option_listing_excludes_name(self, fitted_surf, tmp_path):
        # The registry supplies the kernel name itself (name= cannot even be
        # passed — it collides with the positional parameter), so the valid-
        # options listing in the error must not advertise it.
        registry = ModelRegistry()
        with pytest.raises(ValidationError) as exc_info:
            registry.register("tenant", fitted_surf, cache_sz=1)
        assert "cache_sz" in str(exc_info.value)
        assert "'name'" not in str(exc_info.value)
        path = fitted_surf.save(tmp_path / "finder.surf")
        with pytest.raises(ValidationError) as exc_info:
            registry.load("tenant", path, cache_sz=1)
        assert "'name'" not in str(exc_info.value)
        assert len(registry) == 0

    def test_rejected_registration_never_renames_a_live_kernel(self, fitted_surf):
        registry = ModelRegistry()
        kernel = registry.register("first", ServiceKernel(fitted_surf))
        assert kernel.name == "first"
        other = ServiceKernel(fitted_surf)
        with pytest.raises(ValidationError, match="already registered"):
            registry.register("first", other)
        assert other.name == "default"  # the losing kernel was not renamed
        assert kernel.name == "first"

    def test_per_model_refresh_and_refresh_all(self, fitted_surf, density_engine, tmp_path):
        from repro.online import QueryLog
        from repro.surrogate.workload import generate_workload

        registry = ModelRegistry()
        registry.register("online", fitted_surf, query_log=QueryLog(capacity=1_000))
        registry.register("offline", fitted_surf)
        registry.get("online").observe_many(
            list(generate_workload(density_engine, 60, random_state=21))
        )
        outcome = registry.refresh("online")
        assert outcome.mode == "incremental"
        assert registry.get("online").generation == 1
        assert registry.get("offline").generation == 0
        # refresh_all skips tenants without a log instead of raising.
        outcomes = registry.refresh_all()
        assert set(outcomes) == {"online"}
        assert outcomes["online"].mode == "noop"

    def test_default_middleware_applies_to_registered_finders(self, fitted_surf, density_query):
        metrics = MetricsMiddleware()
        registry = ModelRegistry(middleware=[metrics, *default_chain()])
        registry.register("observed", fitted_surf)
        registry.find(FindRequest.from_query(density_query, model="observed"))
        assert metrics.statuses == ["served"]

    def test_mixed_batch_serves_tenant_groups_concurrently(self, registry, density_query):
        # Correctness under the cross-tenant thread fan-out: a cold query per
        # tenant plus repeats — every response lands in its input slot.
        crimes = FindRequest.from_query(density_query, model="crimes/count")
        sales_threshold = float(
            registry.get("sales/average").finder.satisfiability_.quantile(0.5)
        )
        sales = FindRequest(threshold=sales_threshold, model="sales/average")
        responses = registry.find_batch([crimes, sales, crimes, sales])
        assert [r.model for r in responses] == [
            "crimes/count",
            "sales/average",
            "crimes/count",
            "sales/average",
        ]
        assert all(r.status == "served" for r in responses)
        assert responses[0].proposals == responses[2].proposals
        assert responses[1].proposals == responses[3].proposals


# --------------------------------------------------------------------------- compat shim satellites
class TestCompatShim:
    def test_from_bundle_rejects_unknown_kwargs_by_name(self, fitted_surf, tmp_path):
        path = fitted_surf.save(tmp_path / "finder.surf")
        with pytest.raises(ValidationError, match="cache_sz"):
            SuRFService.from_bundle(path, cache_sz=16)
        # The happy path still builds a working service.
        assert SuRFService.from_bundle(path, cache_size=16).cache_size == 16

    def test_shim_exposes_the_kernel(self, fitted_surf):
        service = SuRFService(fitted_surf)
        assert isinstance(service.kernel, ServiceKernel)
        assert service.kernel.finder is fitted_surf

    def test_shim_passthrough_configuration_views(self, fitted_surf):
        service = SuRFService(
            fitted_surf, cache_size=5, min_satisfiability=0.25, max_proposals=3, max_workers=2
        )
        assert service.cache_size == 5
        assert service.min_satisfiability == 0.25
        assert service.max_proposals == 3
        assert service.max_workers == 2

    def test_service_response_from_envelope(self, fitted_surf, density_query):
        from repro.serve.service import ServiceResponse

        envelope = ServiceKernel(fitted_surf).handle(density_query)
        legacy_view = ServiceResponse.from_envelope(
            envelope, SuRFService.normalize_query(density_query)
        )
        assert legacy_view.status == envelope.status
        assert legacy_view.result is envelope.result
        assert legacy_view.proposals == envelope.result.proposals
        assert legacy_view.satisfiability == envelope.satisfiability

    def test_stats_as_dict_keys_are_stable_and_include_hit_rate(self):
        stats = ServiceStats(queries=4, cache_hits=1)
        payload = stats.as_dict()
        assert list(payload) == [
            "queries",
            "cache_hits",
            "cache_misses",
            "coalesced",
            "rejected",
            "gso_runs",
            "harvested",
            "refreshes",
            "throttled",
            "shed",
            "timeouts",
            "errors",
            "hit_rate",
            "since_refresh",
        ]
        assert payload["hit_rate"] == pytest.approx(0.25)
        assert ServiceStats().as_dict()["hit_rate"] == 0.0

    def test_stats_since_refresh_tracks_deltas_from_the_baseline(self):
        from dataclasses import replace

        before = ServiceStats(queries=10, cache_hits=4, cache_misses=6, gso_runs=6)
        stats = ServiceStats(
            queries=14,
            cache_hits=7,
            cache_misses=7,
            gso_runs=7,
            baseline=replace(before),
        )
        window = stats.as_dict()["since_refresh"]
        assert window["queries"] == 4
        assert window["cache_hits"] == 3
        assert window["cache_misses"] == 1
        assert window["gso_runs"] == 1
        assert window["hit_rate"] == pytest.approx(3 / 4)
        # Without a refresh the window is the lifetime view.
        lifetime = ServiceStats(queries=4, cache_hits=1).as_dict()["since_refresh"]
        assert lifetime["queries"] == 4
        assert lifetime["hit_rate"] == pytest.approx(0.25)


# --------------------------------------------------------------------------- serving under load
class TestLoadControlSurface:
    """Envelope/kernel/registry surface added by the serving-under-load PR."""

    def test_deadline_seconds_round_trips_and_validates(self, density_query):
        request = FindRequest(threshold=10.0, deadline_seconds=2.5)
        assert request.deadline_seconds == 2.5
        assert FindRequest.from_dict(request.to_dict()) == request
        assert FindRequest.from_json(request.to_json()).deadline_seconds == 2.5
        via_query = FindRequest.from_query(density_query, deadline_seconds=1.0)
        assert via_query.deadline_seconds == 1.0
        for bad in (0.0, -1.0):
            with pytest.raises(ValidationError):
                FindRequest(threshold=10.0, deadline_seconds=bad)
            with pytest.raises(ValidationError):
                FindRequest.from_query(density_query, deadline_seconds=bad)

    def test_degraded_statuses_are_valid_and_carry_an_error(self):
        from repro.api import RESPONSE_STATUSES

        assert set(RESPONSE_STATUSES) >= {"throttled", "shed", "timeout", "error"}
        response = FindResponse(
            model="m", status="error", satisfiability=0.5, error="RuntimeError: boom"
        )
        assert response.error == "RuntimeError: boom"
        assert FindResponse.from_json(response.to_json()).error == "RuntimeError: boom"
        with pytest.raises(ValidationError):
            FindResponse(model="m", status="served", satisfiability=0.5, error=42)

    def test_executor_option_is_validated(self, fitted_surf):
        with pytest.raises(ValidationError, match="executor"):
            ServiceKernel(fitted_surf, executor="rocket")
        with pytest.raises(ValidationError):
            ServiceKernel(fitted_surf, executor="process", middleware=default_chain())

    def test_process_kernel_matches_thread_kernel(self, fitted_surf, density_query):
        with ServiceKernel(fitted_surf, executor="process", max_workers=2) as kernel:
            baseline = ServiceKernel(fitted_surf).handle(density_query)
            response = kernel.handle(density_query)
            assert response.status == "served"
            assert proposals_identical(response.result.proposals, baseline.result.proposals)
            # Second batch reuses the persistent pool.
            again = kernel.handle(FindRequest.from_query(density_query))
            assert again.status == "cached"

    def test_stats_fold_is_atomic_under_concurrent_batches(self, fitted_surf):
        from concurrent.futures import ThreadPoolExecutor

        kernel = ServiceKernel(fitted_surf, cache_size=0, min_satisfiability=0.0)

        def hammer(offset: int) -> None:
            # cache_size=0 disables caching, so every request really runs and
            # every counter increment races with the other threads' folds.
            for step in range(4):
                kernel.handle(FindRequest(threshold=1e-3 * (1 + offset) * (1 + step)))

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        stats = kernel.stats
        assert stats.queries == 32
        assert stats.gso_runs + stats.rejected == 32

    def test_registry_close_and_pending_log_entries(self, fitted_surf):
        from repro.online import QueryLog

        registry = ModelRegistry()
        registry.register("logged", fitted_surf, query_log=QueryLog(capacity=100))
        registry.register("plain", fitted_surf)
        assert registry.pending_log_entries == 0
        response = registry.find(FindRequest(threshold=1e-3, model="logged"))
        kernel = registry.get("logged")
        for proposal in response.result.proposals:
            kernel.observe(proposal.region, proposal.predicted_value)
        assert registry.pending_log_entries == kernel.pending_log_entries
        assert registry.pending_log_entries > 0
        with registry:
            pass  # close() is idempotent and safe on thread-pool kernels

    def test_refresh_policy_accepts_a_registry(self, fitted_surf):
        from repro.online import RefreshPolicy

        registry = ModelRegistry()
        registry.register("plain", fitted_surf)
        policy = RefreshPolicy(registry, interval_seconds=60.0, min_new_pairs=1)
        assert policy.run_once() is False  # no logs → nothing pending
