"""Unit tests for the columnar Dataset."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.regions import Region
from repro.exceptions import ValidationError


class TestConstruction:
    def test_default_column_names_follow_paper_convention(self):
        dataset = Dataset(np.zeros((3, 2)) + 0.5)
        assert dataset.column_names == ["a1", "a2"]

    def test_explicit_column_names(self, simple_dataset):
        assert simple_dataset.column_names == ["x", "y", "value"]

    def test_shape_accessors(self, simple_dataset):
        assert simple_dataset.num_rows == 5
        assert simple_dataset.num_columns == 3
        assert len(simple_dataset) == 5

    def test_values_are_read_only(self, simple_dataset):
        with pytest.raises(ValueError):
            simple_dataset.values[0, 0] = 99.0

    def test_wrong_number_of_names_rejected(self):
        with pytest.raises(ValidationError):
            Dataset(np.zeros((2, 2)) + 1.0, ["only_one"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            Dataset(np.ones((2, 2)), ["a", "a"])

    def test_non_2d_values_rejected(self):
        with pytest.raises(ValidationError):
            Dataset(np.ones(5))

    def test_from_dict_round_trip(self):
        dataset = Dataset.from_dict({"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert dataset.column_names == ["a", "b"]
        np.testing.assert_allclose(dataset.column("b"), [3.0, 4.0])

    def test_from_dict_unequal_lengths_rejected(self):
        with pytest.raises(ValidationError):
            Dataset.from_dict({"a": [1.0], "b": [1.0, 2.0]})

    def test_from_dict_empty_rejected(self):
        with pytest.raises(ValidationError):
            Dataset.from_dict({})

    def test_to_dict_returns_copies(self, simple_dataset):
        exported = simple_dataset.to_dict()
        exported["x"][0] = 123.0
        assert simple_dataset.column("x")[0] != 123.0


class TestColumnAccess:
    def test_column_by_name(self, simple_dataset):
        np.testing.assert_allclose(simple_dataset.column("value"), [1, 2, 3, 4, 5])

    def test_column_by_index(self, simple_dataset):
        np.testing.assert_allclose(simple_dataset.column(2), [1, 2, 3, 4, 5])

    def test_unknown_column_raises(self, simple_dataset):
        with pytest.raises(ValidationError):
            simple_dataset.column("missing")

    def test_out_of_range_index_raises(self, simple_dataset):
        with pytest.raises(ValidationError):
            simple_dataset.column(10)

    def test_select_columns_projects_and_reorders(self, simple_dataset):
        projected = simple_dataset.select_columns(["value", "x"])
        assert projected.column_names == ["value", "x"]
        np.testing.assert_allclose(projected.values[:, 0], simple_dataset.column("value"))


class TestSamplingAndFiltering:
    def test_sample_without_replacement_size(self, simple_dataset):
        sample = simple_dataset.sample(3, random_state=0)
        assert sample.num_rows == 3

    def test_sample_too_large_without_replacement_rejected(self, simple_dataset):
        with pytest.raises(ValidationError):
            simple_dataset.sample(10, random_state=0)

    def test_sample_with_replacement_allows_oversampling(self, simple_dataset):
        sample = simple_dataset.sample(10, random_state=0, replace=True)
        assert sample.num_rows == 10

    def test_sample_is_reproducible(self, simple_dataset):
        first = simple_dataset.sample(3, random_state=5)
        second = simple_dataset.sample(3, random_state=5)
        np.testing.assert_allclose(first.values, second.values)

    def test_region_mask_counts_expected_rows(self, simple_dataset):
        region = Region.from_bounds([0.0, 0.0], [0.3, 0.3])
        mask = simple_dataset.region_mask(region, columns=["x", "y"])
        assert mask.sum() == 2

    def test_filter_region_returns_subset(self, simple_dataset):
        region = Region.from_bounds([0.0, 0.0], [0.3, 0.3])
        subset = simple_dataset.filter_region(region, columns=["x", "y"])
        assert subset.num_rows == 2
        assert subset.column_names == simple_dataset.column_names

    def test_region_mask_dimension_mismatch(self, simple_dataset):
        region = Region.from_bounds([0.0], [0.3])
        with pytest.raises(ValidationError):
            simple_dataset.region_mask(region)

    def test_bounding_box_covers_all_rows(self, simple_dataset):
        box = simple_dataset.bounding_box(columns=["x", "y"])
        assert box.contains_points(simple_dataset.select_columns(["x", "y"]).values).all()
