"""Fault-injection tests: mid-batch failures, stalls and worker crashes.

The serving chain must degrade *per request*: a GSO run that raises (or
stalls past its deadline, or takes its whole worker process down) yields
``"error"`` / ``"timeout"`` on exactly the requests that depended on it,
never writes to the cache, never contaminates the other requests in the
batch, and leaves :class:`~repro.api.kernel.ServiceStats` consistent.  Both
execution paths — the thread pool and the
:class:`~repro.api.execution.ProcessExecute` process pool — are covered.

The flaky finders are **threshold-keyed**, not call-counted: a query whose
threshold lands in the poison set fails deterministically no matter which
thread or worker process runs it (call counters would not survive the process
boundary, where each worker holds its own unpickled copy).
"""

import copy
import os
import time

import pytest

from repro.api import (
    Deadline,
    FindRequest,
    ProcessExecute,
    ServiceKernel,
    production_chain,
)
from repro.core.finder import SuRF


# --------------------------------------------------------------------------- flaky finders
# Module level so instances pickle cleanly into process-pool workers.
class FlakyFinder(SuRF):
    """Raises on any query whose threshold is in the poison set."""

    def find_regions(self, query, max_proposals=None):
        if any(abs(query.threshold - poison) < 1e-12 for poison in self.poison):
            raise RuntimeError(f"injected failure at threshold {query.threshold}")
        return super().find_regions(query, max_proposals=max_proposals)


class StallFinder(SuRF):
    """Stalls (default 1s) on any poisoned threshold, then answers normally."""

    def find_regions(self, query, max_proposals=None):
        if any(abs(query.threshold - poison) < 1e-12 for poison in self.poison):
            time.sleep(self.stall_seconds)
        return super().find_regions(query, max_proposals=max_proposals)


class CrashFinder(SuRF):
    """Kills its own process on poisoned thresholds (worker-crash injection)."""

    def find_regions(self, query, max_proposals=None):
        if any(abs(query.threshold - poison) < 1e-12 for poison in self.poison):
            os._exit(13)
        return super().find_regions(query, max_proposals=max_proposals)


def make_flaky(fitted_surf, cls, poison, **attrs):
    """A shallow copy of the fitted finder re-classed to a flaky variant.

    The copy shares the (immutable, read-only) trained models, so behaviour
    on non-poisoned queries is bit-identical to the original finder.
    """
    flaky = copy.copy(fitted_surf)
    flaky.__class__ = cls
    flaky.poison = tuple(poison)
    for name, value in attrs.items():
        setattr(flaky, name, value)
    return flaky


def assert_stats_consistent(kernel, responses):
    """Every response status is accounted for exactly once in the counters."""
    stats = kernel.stats
    by_status = {}
    for response in responses:
        by_status[response.status] = by_status.get(response.status, 0) + 1
    assert stats.queries == len(responses)
    assert stats.errors == by_status.get("error", 0)
    assert stats.timeouts == by_status.get("timeout", 0)
    assert stats.rejected == by_status.get("rejected", 0)
    assert stats.cache_hits == by_status.get("cached", 0)


POISON = 0.123456789


# --------------------------------------------------------------------------- thread path
class TestThreadPoolFaults:
    def test_mid_batch_error_is_isolated_to_affected_requests(
        self, fitted_surf, density_query
    ):
        flaky = make_flaky(fitted_surf, FlakyFinder, [POISON])
        kernel = ServiceKernel(flaky, max_workers=4)
        good, bad = density_query.threshold, POISON
        responses = kernel.handle_batch(
            [
                FindRequest(threshold=good),
                FindRequest(threshold=bad),
                FindRequest(threshold=good * 1.01),
            ]
        )
        assert [r.status for r in responses] == ["served", "error", "served"]
        assert "RuntimeError" in responses[1].error
        assert "injected failure" in responses[1].error
        assert responses[1].result is None and responses[1].proposals == ()
        assert responses[0].proposals and responses[2].proposals
        assert_stats_consistent(kernel, responses)
        assert kernel.stats.errors == 1

    def test_errors_never_poison_the_cache(self, fitted_surf, density_query):
        flaky = make_flaky(fitted_surf, FlakyFinder, [POISON])
        kernel = ServiceKernel(flaky, max_workers=4)
        first = kernel.handle_batch(
            [FindRequest(threshold=density_query.threshold), FindRequest(threshold=POISON)]
        )
        assert [r.status for r in first] == ["served", "error"]
        assert kernel.cached_queries == 1  # only the served query was cached
        second = kernel.handle_batch(
            [FindRequest(threshold=density_query.threshold), FindRequest(threshold=POISON)]
        )
        # The good query hits the cache; the poisoned one re-runs and re-fails
        # (an error was never cached as if it were an answer).
        assert [r.status for r in second] == ["cached", "error"]
        assert kernel.stats.errors == 2

    def test_coalesced_requesters_all_see_the_error(self, fitted_surf):
        flaky = make_flaky(fitted_surf, FlakyFinder, [POISON])
        kernel = ServiceKernel(flaky, max_workers=4)
        responses = kernel.handle_batch(
            [FindRequest(threshold=POISON), FindRequest(threshold=POISON)]
        )
        assert [r.status for r in responses] == ["error", "error"]
        assert kernel.stats.errors == 2
        assert kernel.stats.gso_runs == 0

    def test_inline_path_isolates_errors_too(self, fitted_surf, density_query):
        # max_workers=1 forces the sequential (inline) execution path.
        flaky = make_flaky(fitted_surf, FlakyFinder, [POISON])
        kernel = ServiceKernel(flaky, max_workers=1)
        responses = kernel.handle_batch(
            [FindRequest(threshold=POISON), FindRequest(threshold=density_query.threshold)]
        )
        assert [r.status for r in responses] == ["error", "served"]
        assert_stats_consistent(kernel, responses)


# --------------------------------------------------------------------------- deadlines
class TestDeadlines:
    def make_kernel(self, finder, budget=None, execute=None, **options):
        chain = production_chain(deadline=Deadline(default_budget=budget), execute=execute)
        return ServiceKernel(finder, middleware=chain, **options)

    def test_stalled_run_times_out_while_others_serve(self, fitted_surf, density_query):
        stall = make_flaky(
            fitted_surf, StallFinder, [POISON], stall_seconds=5.0
        )
        kernel = self.make_kernel(stall, budget=0.5, max_workers=2)
        start = time.monotonic()
        responses = kernel.handle_batch(
            [FindRequest(threshold=density_query.threshold), FindRequest(threshold=POISON)]
        )
        elapsed = time.monotonic() - start
        assert [r.status for r in responses] == ["served", "timeout"]
        # The batch gave up on the stalled run instead of waiting it out.
        assert elapsed < 4.0
        assert kernel.cached_queries == 1
        assert_stats_consistent(kernel, responses)

    def test_expired_budget_skips_the_run_entirely(self, fitted_surf, density_query):
        kernel = self.make_kernel(fitted_surf, max_workers=2)
        response = kernel.handle(
            FindRequest(threshold=density_query.threshold, deadline_seconds=1e-9)
        )
        assert response.status == "timeout"
        assert kernel.stats.gso_runs == 0  # expired before launch: never ran
        assert kernel.cached_queries == 0

    def test_generous_budget_serves_normally(self, fitted_surf, density_query):
        kernel = self.make_kernel(fitted_surf, budget=300.0, max_workers=2)
        response = kernel.handle(FindRequest(threshold=density_query.threshold))
        assert response.status == "served"
        assert response.proposals
        assert kernel.stats.timeouts == 0


# --------------------------------------------------------------------------- process path
class TestProcessPoolFaults:
    def test_worker_exception_is_isolated_per_request(self, fitted_surf, density_query):
        flaky = make_flaky(fitted_surf, FlakyFinder, [POISON])
        with ServiceKernel(flaky, executor="process", max_workers=2) as kernel:
            responses = kernel.handle_batch(
                [
                    FindRequest(threshold=density_query.threshold),
                    FindRequest(threshold=POISON),
                ]
            )
            assert [r.status for r in responses] == ["served", "error"]
            assert "RuntimeError" in responses[1].error
            assert kernel.cached_queries == 1
            assert_stats_consistent(kernel, responses)
            # The pool survives an ordinary worker exception.
            again = kernel.handle(FindRequest(threshold=density_query.threshold * 1.01))
            assert again.status == "served"

    def test_worker_crash_breaks_only_the_current_batch(self, fitted_surf, density_query):
        crash = make_flaky(fitted_surf, CrashFinder, [POISON])
        with ServiceKernel(crash, executor="process", max_workers=2) as kernel:
            broken = kernel.handle(FindRequest(threshold=POISON))
            assert broken.status == "error"
            assert broken.error  # BrokenProcessPool text surfaces on the envelope
            # The dead pool was dropped; the next batch rebuilds and serves.
            recovered = kernel.handle(FindRequest(threshold=density_query.threshold))
            assert recovered.status == "served"
            assert recovered.proposals

    def test_stalled_worker_times_out_under_a_deadline(self, fitted_surf, density_query):
        stall = make_flaky(fitted_surf, StallFinder, [POISON], stall_seconds=3.0)
        execute = ProcessExecute(max_workers=2)
        chain = production_chain(deadline=Deadline(default_budget=0.5), execute=execute)
        kernel = ServiceKernel(stall, middleware=chain, max_workers=2)
        try:
            responses = kernel.handle_batch(
                [
                    FindRequest(threshold=density_query.threshold),
                    FindRequest(threshold=POISON),
                ]
            )
            assert [r.status for r in responses] == ["served", "timeout"]
            assert kernel.cached_queries == 1
        finally:
            kernel.close()

    def test_unpicklable_finder_falls_back_to_threads(self, fitted_surf, density_query):
        unpicklable = copy.copy(fitted_surf)
        unpicklable.not_picklable = lambda: None  # lambdas cannot be pickled
        with ServiceKernel(unpicklable, executor="process", max_workers=2) as kernel:
            response = kernel.handle(FindRequest(threshold=density_query.threshold))
            assert response.status == "served"
            assert response.proposals
