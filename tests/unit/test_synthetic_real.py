"""Unit tests for the synthetic ground-truth generators and real-data stand-ins."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.engine import DataEngine
from repro.data.real import (
    ACTIVITY_CLASSES,
    activity_stand_region,
    crimes_hotspot_regions,
    make_activity_like,
    make_crimes_like,
)
from repro.data.statistics import CountStatistic, RatioStatistic
from repro.data.synthetic import (
    SyntheticConfig,
    make_benchmark_suite,
    make_synthetic_dataset,
)
from repro.exceptions import ValidationError


class TestSyntheticConfig:
    def test_rejects_unknown_statistic(self):
        with pytest.raises(ValidationError):
            SyntheticConfig(statistic="p99")

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValidationError):
            SyntheticConfig(dim=0)

    def test_rejects_zero_regions(self):
        with pytest.raises(ValidationError):
            SyntheticConfig(num_regions=0)

    def test_rejects_absurd_half_length(self):
        with pytest.raises(ValidationError):
            SyntheticConfig(region_half_length=0.7)


class TestDensityDatasets:
    def test_ground_truth_regions_are_denser_than_background(self, small_density_synthetic):
        synthetic = small_density_synthetic
        engine = DataEngine(synthetic.dataset, synthetic.statistic)
        truth = synthetic.ground_truth[0]
        shifted = truth.region.translated(np.full(truth.region.dim, 0.4))
        shifted = shifted.clipped([0.0, 0.0], [1.0, 1.0])
        assert engine.evaluate(truth.region) > 2 * engine.evaluate(shifted)

    def test_number_of_ground_truth_regions(self, multi_region_synthetic):
        assert len(multi_region_synthetic.ground_truth) == 3

    def test_ground_truth_regions_do_not_overlap(self, multi_region_synthetic):
        regions = multi_region_synthetic.ground_truth_regions
        for i in range(len(regions)):
            for j in range(i + 1, len(regions)):
                assert regions[i].iou(regions[j]) == pytest.approx(0.0, abs=1e-9)

    def test_total_points_match_config(self):
        config = SyntheticConfig(statistic="density", dim=2, num_regions=2, num_points=2_000, random_state=0)
        synthetic = make_synthetic_dataset(config)
        expected = config.num_points + config.num_regions * config.points_per_region
        assert synthetic.dataset.num_rows == expected

    def test_statistic_is_count(self, small_density_synthetic):
        assert isinstance(small_density_synthetic.statistic, CountStatistic)

    def test_suggested_threshold_below_ground_truth(self, small_density_synthetic):
        threshold = small_density_synthetic.suggested_threshold()
        weakest = min(gt.statistic_value for gt in small_density_synthetic.ground_truth)
        assert 0 < threshold < weakest

    def test_reproducible_with_same_seed(self):
        config = dict(statistic="density", dim=1, num_regions=1, num_points=1_500, random_state=9)
        first = make_synthetic_dataset(**config)
        second = make_synthetic_dataset(**config)
        np.testing.assert_allclose(first.dataset.values, second.dataset.values)

    def test_config_and_kwargs_are_mutually_exclusive(self):
        config = SyntheticConfig(statistic="density", dim=1)
        with pytest.raises(ValidationError):
            make_synthetic_dataset(config, dim=2)


class TestAggregateDatasets:
    def test_target_column_present(self, aggregate_synthetic):
        assert "target" in aggregate_synthetic.dataset.column_names

    def test_region_columns_exclude_target(self, aggregate_synthetic):
        assert "target" not in aggregate_synthetic.region_columns

    def test_ground_truth_average_is_elevated(self, aggregate_synthetic):
        config = aggregate_synthetic.config
        for truth in aggregate_synthetic.ground_truth:
            assert truth.statistic_value > 0.75 * config.region_target_mean

    def test_background_average_is_low(self, aggregate_synthetic):
        engine = DataEngine(aggregate_synthetic.dataset, aggregate_synthetic.statistic)
        truth = aggregate_synthetic.ground_truth[0].region
        shifted = truth.translated(np.full(truth.dim, 0.45)).clipped([0.0, 0.0], [1.0, 1.0])
        assert engine.evaluate(shifted) < 2.0


class TestBenchmarkSuite:
    def test_suite_size_matches_grid(self):
        suite = make_benchmark_suite(dims=(1, 2), region_counts=(1,), statistics=("density",), num_points=1_200)
        assert len(suite) == 2

    def test_suite_covers_both_statistics(self):
        suite = make_benchmark_suite(dims=(1,), region_counts=(1,), num_points=1_200)
        kinds = {synthetic.config.statistic for synthetic in suite}
        assert kinds == {"density", "aggregate"}


class TestCrimesLike:
    def test_columns_and_range(self):
        crimes = make_crimes_like(num_points=2_000, random_state=1)
        assert crimes.column_names == ["x_coordinate", "y_coordinate"]
        assert crimes.values.min() >= 0.0
        assert crimes.values.max() <= 1.0

    def test_hotspots_are_denser_than_background(self):
        crimes = make_crimes_like(num_points=5_000, random_state=1)
        engine = DataEngine(crimes, CountStatistic())
        hotspot = crimes_hotspot_regions()[0]
        background = hotspot.translated([0.3, -0.25]).clipped([0.0, 0.0], [1.0, 1.0])
        assert engine.evaluate(hotspot) > 2 * engine.evaluate(background)

    def test_num_points_respected(self):
        crimes = make_crimes_like(num_points=1_234, random_state=0)
        assert crimes.num_rows == 1_234

    def test_rejects_tiny_datasets(self):
        with pytest.raises(ValidationError):
            make_crimes_like(num_points=10)

    def test_rejects_bad_background_fraction(self):
        with pytest.raises(ValidationError):
            make_crimes_like(num_points=1_000, background_fraction=1.5)


class TestActivityLike:
    def test_columns(self):
        activity = make_activity_like(num_points=2_000, random_state=2)
        assert activity.column_names == ["acc_x", "acc_y", "acc_z", "activity"]

    def test_stand_ratio_is_low_globally_high_locally(self):
        activity = make_activity_like(num_points=5_000, random_state=2)
        statistic = RatioStatistic("activity", positive_value=ACTIVITY_CLASSES["stand"])
        engine = DataEngine(activity, statistic)
        global_ratio = np.mean(np.isclose(activity.column("activity"), ACTIVITY_CLASSES["stand"]))
        local_ratio = engine.evaluate(activity_stand_region())
        assert global_ratio < 0.15
        assert local_ratio > 3 * global_ratio

    def test_rejects_bad_stand_fraction(self):
        with pytest.raises(ValidationError):
            make_activity_like(num_points=1_000, stand_fraction=0.9)

    def test_labels_are_known_classes(self):
        activity = make_activity_like(num_points=1_000, random_state=4)
        labels = set(np.unique(activity.column("activity")).tolist())
        assert labels.issubset(set(ACTIVITY_CLASSES.values()))
