"""Unit tests for the SuRF finder itself."""

import numpy as np
import pytest

from repro.core.evaluation import average_iou, compliance_rate
from repro.core.finder import SuRF
from repro.core.query import RegionQuery
from repro.exceptions import NotFittedError, ValidationError
from repro.optim.gso import GSOParameters
from repro.surrogate.training import SurrogateTrainer
from repro.ml.boosting import GradientBoostingRegressor


class TestFitting:
    def test_unfitted_finder_raises(self, density_query):
        finder = SuRF()
        with pytest.raises(NotFittedError):
            finder.find_regions(density_query)
        with pytest.raises(NotFittedError):
            finder.predict_statistic(None)

    def test_fit_sets_state(self, fitted_surf, density_workload):
        assert fitted_surf.surrogate_ is not None
        assert fitted_surf.solution_space_ is not None
        assert fitted_surf.workload_size_ == len(density_workload)
        assert fitted_surf.density_ is not None

    def test_fit_without_data_sample_disables_density_guidance(self, density_workload, fast_trainer):
        finder = SuRF(trainer=fast_trainer, random_state=0)
        finder.fit(density_workload)
        assert finder.density_ is None

    def test_fit_rejects_mismatched_data_sample(self, density_workload, fast_trainer):
        finder = SuRF(trainer=fast_trainer, random_state=0)
        with pytest.raises(ValidationError):
            finder.fit(density_workload, data_sample=np.ones((10, 5)))

    def test_invalid_warm_start_fraction_rejected(self):
        with pytest.raises(ValidationError):
            SuRF(warm_start_fraction=1.5)

    def test_from_engine_builds_working_finder(self, density_engine, density_query, small_density_synthetic):
        finder = SuRF.from_engine(
            density_engine,
            num_evaluations=300,
            gso_parameters=GSOParameters(num_particles=30, num_iterations=20, random_state=0),
            random_state=0,
        )
        result = finder.find_regions(density_query)
        assert result.optimization.num_iterations > 0


class TestFinding:
    def test_find_regions_returns_feasible_compliant_proposals(
        self, fitted_surf, density_query, density_engine
    ):
        result = fitted_surf.find_regions(density_query)
        assert result.num_regions >= 1
        assert result.optimization.feasible_fraction > 0
        assert compliance_rate(result.proposals, density_engine, density_query) >= 0.5

    def test_proposals_overlap_ground_truth(self, fitted_surf, density_query, small_density_synthetic):
        result = fitted_surf.find_regions(density_query)
        regions = result.all_feasible_regions() or result.regions
        assert average_iou(regions, small_density_synthetic.ground_truth_regions) > 0.15

    def test_proposals_within_solution_space(self, fitted_surf, density_query):
        result = fitted_surf.find_regions(density_query)
        space = result.solution_space
        for proposal in result.proposals:
            assert space.contains_vector(proposal.vector)

    def test_max_proposals_respected(self, fitted_surf, density_query):
        result = fitted_surf.find_regions(density_query, max_proposals=1)
        assert result.num_regions <= 1

    def test_explicit_gso_parameters_override_defaults(self, fitted_surf, density_query):
        params = GSOParameters(
            num_particles=20, num_iterations=8, min_iterations=8, convergence_patience=100, random_state=0
        )
        result = fitted_surf.find_regions(density_query, gso_parameters=params)
        assert result.optimization.num_iterations == 8
        assert result.optimization.positions.shape[0] == 20

    def test_result_best_and_regions_accessors(self, fitted_surf, density_query):
        result = fitted_surf.find_regions(density_query)
        if result.proposals:
            assert result.best() is result.proposals[0]
            assert len(result.regions) == result.num_regions

    def test_below_direction_query(self, fitted_surf, density_engine):
        query = RegionQuery(threshold=50.0, direction="below", size_penalty=0.5)
        result = fitted_surf.find_regions(query)
        # Only small, off-cluster regions hold fewer than 50 points, but the swarm
        # should still locate some of them.
        assert result.optimization.feasible_fraction > 0.02
        assert result.best() is not None

    def test_predict_statistic_tracks_truth(self, fitted_surf, density_engine, small_density_synthetic):
        truth = small_density_synthetic.ground_truth[0].region
        predicted = fitted_surf.predict_statistic(truth)
        actual = density_engine.evaluate(truth)
        assert predicted > 0.3 * actual

    def test_elapsed_time_recorded(self, fitted_surf, density_query):
        result = fitted_surf.find_regions(density_query)
        assert result.elapsed_seconds > 0


class TestWarmStartRng:
    def test_warm_start_stream_differs_from_optimizer_stream(self):
        # Regression: warm-start sampling used default_rng(random_state) — the
        # exact stream the GSO optimiser consumes for movement — so the two
        # drew correlated random numbers.  The warm-start stream must be an
        # independent child of the seed, not a replay of the optimiser's.
        finder = SuRF(random_state=0)
        warm_draws = finder._warm_start_rng().random(16)
        optimizer_draws = np.random.default_rng(0).random(16)
        assert not np.any(warm_draws == optimizer_draws)

    def test_warm_start_stream_is_deterministic_per_seed(self):
        finder = SuRF(random_state=7)
        np.testing.assert_array_equal(
            finder._warm_start_rng().random(8), finder._warm_start_rng().random(8)
        )
        other = SuRF(random_state=8)
        assert not np.array_equal(finder._warm_start_rng().random(8), other._warm_start_rng().random(8))

    def test_generator_random_state_still_supported(self, density_workload, density_query, fast_trainer):
        # Regression: random_state may be a live numpy Generator everywhere in
        # the library (repro.utils.rng.ensure_rng); SeedSequence cannot take
        # one, so _warm_start_rng must pass it through instead.
        shared = np.random.default_rng(0)
        finder = SuRF(
            trainer=fast_trainer,
            use_density_guidance=False,
            gso_parameters=GSOParameters(num_particles=20, num_iterations=10, random_state=shared),
            random_state=shared,
        )
        finder.fit(density_workload)
        assert finder._warm_start_rng() is shared
        result = finder.find_regions(density_query)
        assert result.optimization.num_iterations > 0


class TestCompiledSurrogateEquivalence:
    """The compiled surrogate family must not change *what* SuRF finds — only
    how fast.  Same seed, same workload: bit-identical proposals."""

    @staticmethod
    def _fitted(density_workload, family):
        finder = SuRF(
            trainer=SurrogateTrainer(
                estimator=family,
                estimator_options={"n_estimators": 25, "max_depth": 3},
                random_state=0,
            ),
            use_density_guidance=False,
            gso_parameters=GSOParameters(num_particles=30, num_iterations=20, random_state=0),
            random_state=0,
        )
        finder.fit(density_workload)
        return finder

    def test_find_proposals_bit_identical_to_recursive_family(self, density_workload, density_query):
        recursive = self._fitted(density_workload, "boosting")
        compiled = self._fitted(density_workload, "compiled-boosting")
        result_recursive = recursive.find_regions(density_query)
        result_compiled = compiled.find_regions(density_query)

        assert result_compiled.num_regions == result_recursive.num_regions
        np.testing.assert_array_equal(
            result_compiled.optimization.positions, result_recursive.optimization.positions
        )
        for ours, theirs in zip(result_compiled.proposals, result_recursive.proposals):
            np.testing.assert_array_equal(ours.vector, theirs.vector)
            assert ours.predicted_value == theirs.predicted_value

    def test_reloaded_bundle_reproduces_compiled_proposals(
        self, density_workload, density_query, tmp_path
    ):
        finder = self._fitted(density_workload, "compiled-boosting")
        expected = finder.find_regions(density_query)
        path = finder.save(tmp_path / "compiled.surf")
        reloaded = SuRF.load(path)
        # The bundle ships the compiled SoA tables: no lazy recompile on load.
        assert reloaded.surrogate_.estimator.is_compiled
        result = reloaded.find_regions(density_query)
        assert result.num_regions == expected.num_regions
        for ours, theirs in zip(result.proposals, expected.proposals):
            np.testing.assert_array_equal(ours.vector, theirs.vector)


class TestConfigurationVariants:
    def test_ratio_objective_variant_runs(self, density_workload, density_query, fast_trainer):
        finder = SuRF(
            trainer=fast_trainer,
            objective="ratio",
            use_density_guidance=False,
            gso_parameters=GSOParameters(num_particles=30, num_iterations=15, random_state=0),
            random_state=0,
        )
        finder.fit(density_workload)
        result = finder.find_regions(density_query)
        assert result.optimization.num_iterations > 0

    def test_histogram_density_guidance(self, density_workload, density_engine, density_query):
        sample = (
            density_engine.dataset.sample(400, random_state=0)
            .select_columns(density_engine.region_columns)
            .values
        )
        finder = SuRF(
            trainer=SurrogateTrainer(
                estimator=GradientBoostingRegressor(n_estimators=30, random_state=0), random_state=0
            ),
            density_method="histogram",
            gso_parameters=GSOParameters(num_particles=30, num_iterations=15, random_state=0),
            random_state=0,
        )
        finder.fit(density_workload, data_sample=sample)
        result = finder.find_regions(density_query)
        assert result.optimization.num_iterations > 0

    def test_warm_start_disabled_still_runs(self, density_workload, density_query, fast_trainer):
        finder = SuRF(
            trainer=fast_trainer,
            warm_start_fraction=0.0,
            use_density_guidance=False,
            gso_parameters=GSOParameters(num_particles=30, num_iterations=20, random_state=0),
            random_state=0,
        )
        finder.fit(density_workload)
        result = finder.find_regions(density_query)
        assert result.optimization.num_iterations > 0

    def test_no_data_access_at_query_time(self, fitted_surf, density_query, density_engine):
        before = density_engine.num_evaluations
        fitted_surf.find_regions(density_query)
        assert density_engine.num_evaluations == before
