"""Unit tests for the swarm optimisers (GSO and PSO)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.optim.gso import GlowwormSwarmOptimizer, GSOParameters
from repro.optim.pso import ParticleSwarmOptimizer, PSOParameters
from repro.optim.result import OptimizationResult


def single_peak(vector: np.ndarray) -> float:
    """A smooth unimodal objective peaking at (0.5, 0.5)."""
    return -float(np.sum((vector - 0.5) ** 2))


def two_peaks(vector: np.ndarray) -> float:
    """A bimodal 1-D objective with peaks at 0.25 and 0.75."""
    x = float(vector[0])
    return float(np.exp(-200 * (x - 0.25) ** 2) + np.exp(-200 * (x - 0.75) ** 2))


def gated(vector: np.ndarray) -> float:
    """An objective undefined (−inf) outside a narrow feasible band."""
    x = float(vector[0])
    if abs(x - 0.6) > 0.15:
        return -np.inf
    return 1.0 - abs(x - 0.6)


class TestGSOParameters:
    def test_defaults_match_paper(self):
        params = GSOParameters()
        assert params.luciferin_decay == pytest.approx(0.4)
        assert params.luciferin_gain == pytest.approx(0.6)
        assert params.num_particles == 100
        assert params.num_iterations == 100

    def test_invalid_values_rejected(self):
        with pytest.raises(ValidationError):
            GSOParameters(num_particles=1)
        with pytest.raises(ValidationError):
            GSOParameters(luciferin_decay=1.5)
        with pytest.raises(ValidationError):
            GSOParameters(step_size=0.0)
        with pytest.raises(ValidationError):
            GSOParameters(num_iterations=0)

    def test_radius_validation(self):
        with pytest.raises(ValidationError):
            GSOParameters(initial_radius=0.0)
        with pytest.raises(ValidationError):
            GSOParameters(initial_radius=-0.5)
        with pytest.raises(ValidationError):
            GSOParameters(max_radius=0.0)
        with pytest.raises(ValidationError):
            GSOParameters(max_radius=-1.0)
        with pytest.raises(ValidationError):
            GSOParameters(initial_radius=0.5, max_radius=0.4)
        # Valid combinations still pass.
        GSOParameters(initial_radius=0.5, max_radius=0.5)
        GSOParameters(initial_radius=0.2, max_radius=1.0)
        GSOParameters(initial_radius=0.2)
        GSOParameters(max_radius=1.0)

    def test_recommended_radius_shrinks_with_dimension(self):
        radius_low = GSOParameters.recommended_radius(100, 2)
        radius_high = GSOParameters.recommended_radius(100, 10)
        assert 0 < radius_low < radius_high < 1.5

    def test_for_dimension_scales_swarm(self):
        params = GSOParameters.for_dimension(4)
        assert params.num_particles == 200
        assert params.initial_radius is not None

    def test_for_dimension_accepts_overrides(self):
        params = GSOParameters.for_dimension(4, num_particles=50, num_iterations=10)
        assert params.num_particles == 50
        assert params.num_iterations == 10


class TestGSO:
    def test_converges_to_single_peak(self):
        params = GSOParameters(num_particles=40, num_iterations=60, random_state=0)
        optimizer = GlowwormSwarmOptimizer(single_peak, [0.0, 0.0], [1.0, 1.0], params)
        result = optimizer.run()
        best = result.best()
        assert best is not None
        assert np.linalg.norm(best - 0.5) < 0.15

    def test_finds_both_modes_of_bimodal_objective(self):
        params = GSOParameters(num_particles=60, num_iterations=80, step_size=0.02, random_state=1)
        optimizer = GlowwormSwarmOptimizer(two_peaks, [0.0], [1.0], params)
        result = optimizer.run()
        positions = result.feasible_positions[:, 0]
        near_first = np.abs(positions - 0.25) < 0.1
        near_second = np.abs(positions - 0.75) < 0.1
        assert near_first.sum() >= 3
        assert near_second.sum() >= 3

    def test_positions_respect_bounds(self):
        params = GSOParameters(num_particles=30, num_iterations=30, random_state=2)
        optimizer = GlowwormSwarmOptimizer(single_peak, [0.2, 0.2], [0.8, 0.8], params)
        result = optimizer.run()
        assert np.all(result.positions >= 0.2 - 1e-9)
        assert np.all(result.positions <= 0.8 + 1e-9)

    def test_handles_undefined_objective_regions(self):
        params = GSOParameters(num_particles=40, num_iterations=60, random_state=3)
        optimizer = GlowwormSwarmOptimizer(gated, [0.0], [1.0], params)
        result = optimizer.run()
        assert result.feasible_fraction > 0.2
        best = result.best()
        assert abs(best[0] - 0.6) < 0.2

    def test_batch_objective_matches_scalar(self):
        params = GSOParameters(num_particles=25, num_iterations=20, random_state=4)
        scalar = GlowwormSwarmOptimizer(single_peak, [0.0, 0.0], [1.0, 1.0], params).run()
        params2 = GSOParameters(num_particles=25, num_iterations=20, random_state=4)
        batch = GlowwormSwarmOptimizer(
            single_peak,
            [0.0, 0.0],
            [1.0, 1.0],
            params2,
            batch_objective=lambda m: -np.sum((m - 0.5) ** 2, axis=1),
        ).run()
        np.testing.assert_allclose(scalar.positions, batch.positions, atol=1e-12)

    def test_selection_weight_biases_towards_weighted_mode(self):
        # Weight the neighbourhood around x=0.75 much higher than x=0.25.
        def weight(vector):
            return 100.0 if vector[0] > 0.5 else 0.01

        params = GSOParameters(num_particles=60, num_iterations=80, step_size=0.02, random_state=5)
        result = GlowwormSwarmOptimizer(
            two_peaks, [0.0], [1.0], params, selection_weight=weight
        ).run()
        positions = result.feasible_positions[:, 0]
        assert (np.abs(positions - 0.75) < 0.1).sum() >= (np.abs(positions - 0.25) < 0.1).sum()

    def test_initial_positions_are_used(self):
        params = GSOParameters(num_particles=10, num_iterations=5, random_state=6)
        start = np.full((10, 2), 0.3)
        result = GlowwormSwarmOptimizer(
            single_peak, [0.0, 0.0], [1.0, 1.0], params, initial_positions=start
        ).run()
        np.testing.assert_allclose(result.initial_positions, start)

    def test_wrong_initial_positions_shape_rejected(self):
        params = GSOParameters(num_particles=10, num_iterations=5)
        optimizer = GlowwormSwarmOptimizer(
            single_peak, [0.0, 0.0], [1.0, 1.0], params, initial_positions=np.ones((3, 2))
        )
        with pytest.raises(ValidationError):
            optimizer.run()

    def test_function_evaluation_count(self):
        params = GSOParameters(
            num_particles=20, num_iterations=10, min_iterations=10, convergence_patience=100, random_state=7
        )
        result = GlowwormSwarmOptimizer(single_peak, [0.0, 0.0], [1.0, 1.0], params).run()
        # Initial evaluation plus one per iteration.
        assert result.function_evaluations == 20 * (10 + 1)

    def test_history_lengths_match_iterations(self):
        params = GSOParameters(num_particles=20, num_iterations=15, convergence_patience=1000, random_state=8)
        result = GlowwormSwarmOptimizer(single_peak, [0.0, 0.0], [1.0, 1.0], params).run()
        assert len(result.mean_fitness_history) == result.num_iterations
        assert len(result.feasible_fraction_history) == result.num_iterations

    def test_early_stopping_respects_min_iterations(self):
        params = GSOParameters(
            num_particles=15,
            num_iterations=200,
            min_iterations=20,
            convergence_patience=3,
            random_state=9,
        )
        result = GlowwormSwarmOptimizer(single_peak, [0.0, 0.0], [1.0, 1.0], params).run()
        assert result.num_iterations >= 20
        assert result.num_iterations < 200
        assert result.converged

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValidationError):
            GlowwormSwarmOptimizer(single_peak, [1.0, 1.0], [0.0, 0.0])

    def test_reproducible_with_seed(self):
        params = GSOParameters(num_particles=20, num_iterations=15, random_state=11)
        first = GlowwormSwarmOptimizer(single_peak, [0.0, 0.0], [1.0, 1.0], params).run()
        params2 = GSOParameters(num_particles=20, num_iterations=15, random_state=11)
        second = GlowwormSwarmOptimizer(single_peak, [0.0, 0.0], [1.0, 1.0], params2).run()
        np.testing.assert_allclose(first.positions, second.positions)


class TestPSO:
    def test_converges_to_single_peak(self):
        params = PSOParameters(num_particles=30, num_iterations=60, random_state=0)
        result = ParticleSwarmOptimizer(single_peak, [0.0, 0.0], [1.0, 1.0], params).run()
        assert np.linalg.norm(result.best() - 0.5) < 0.05

    def test_positions_respect_bounds(self):
        params = PSOParameters(num_particles=20, num_iterations=30, random_state=1)
        result = ParticleSwarmOptimizer(single_peak, [0.1, 0.1], [0.9, 0.9], params).run()
        assert np.all(result.positions >= 0.1 - 1e-9)
        assert np.all(result.positions <= 0.9 + 1e-9)

    def test_collapses_to_one_mode_on_multimodal_objective(self):
        params = PSOParameters(num_particles=40, num_iterations=80, random_state=2)
        result = ParticleSwarmOptimizer(two_peaks, [0.0], [1.0], params).run()
        positions = result.positions[:, 0]
        near_first = (np.abs(positions - 0.25) < 0.1).sum()
        near_second = (np.abs(positions - 0.75) < 0.1).sum()
        # PSO is unimodal: essentially all particles end around a single peak.
        assert min(near_first, near_second) <= 0.2 * max(near_first, near_second)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            PSOParameters(num_particles=1)
        with pytest.raises(ValidationError):
            PSOParameters(inertia=2.0)


class TestOptimizationResult:
    def test_best_none_when_all_infeasible(self):
        result = OptimizationResult(
            positions=np.ones((3, 2)),
            fitness=np.full(3, -np.inf),
            initial_positions=np.ones((3, 2)),
        )
        assert result.best() is None
        assert result.feasible_fraction == 0.0

    def test_feasible_mask_and_fraction(self):
        result = OptimizationResult(
            positions=np.arange(6, dtype=float).reshape(3, 2),
            fitness=np.array([1.0, -np.inf, 2.0]),
            initial_positions=np.zeros((3, 2)),
        )
        np.testing.assert_array_equal(result.feasible_mask, [True, False, True])
        assert result.feasible_fraction == pytest.approx(2 / 3)
        np.testing.assert_allclose(result.best(), [4.0, 5.0])
