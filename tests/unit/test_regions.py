"""Unit tests for hyper-rectangular regions and their geometry."""

import numpy as np
import pytest

from repro.data.regions import (
    Region,
    bounding_region,
    iou,
    random_region,
    rectangle_intersection_volume,
    rectangle_union_volume,
)
from repro.exceptions import DimensionMismatchError, ValidationError


def make_unit_region():
    return Region.from_bounds([0.0, 0.0], [1.0, 1.0])


class TestConstruction:
    def test_center_and_half_lengths_are_stored(self):
        region = Region([0.5, 0.5], [0.1, 0.2])
        np.testing.assert_allclose(region.center, [0.5, 0.5])
        np.testing.assert_allclose(region.half_lengths, [0.1, 0.2])

    def test_dim_reports_number_of_dimensions(self):
        assert Region([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]).dim == 3

    def test_lower_and_upper_corners(self):
        region = Region([0.5, 0.5], [0.1, 0.2])
        np.testing.assert_allclose(region.lower, [0.4, 0.3])
        np.testing.assert_allclose(region.upper, [0.6, 0.7])

    def test_side_lengths_are_twice_half_lengths(self):
        region = Region([0.0], [0.25])
        np.testing.assert_allclose(region.side_lengths, [0.5])

    def test_from_bounds_round_trips(self):
        region = Region.from_bounds([0.0, 0.2], [0.4, 1.0])
        np.testing.assert_allclose(region.lower, [0.0, 0.2])
        np.testing.assert_allclose(region.upper, [0.4, 1.0])

    def test_from_bounds_rejects_inverted_bounds(self):
        with pytest.raises(ValidationError):
            Region.from_bounds([0.5, 0.5], [0.4, 1.0])

    def test_negative_half_length_rejected(self):
        with pytest.raises(ValidationError):
            Region([0.0], [-0.1])

    def test_zero_half_length_rejected(self):
        with pytest.raises(ValidationError):
            Region([0.0, 0.0], [0.1, 0.0])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(DimensionMismatchError):
            Region([0.0, 0.0], [0.1])

    def test_nan_center_rejected(self):
        with pytest.raises(ValidationError):
            Region([np.nan], [0.1])

    def test_vector_round_trip(self):
        region = Region([0.3, 0.7], [0.05, 0.1])
        recovered = Region.from_vector(region.to_vector())
        np.testing.assert_allclose(recovered.center, region.center)
        np.testing.assert_allclose(recovered.half_lengths, region.half_lengths)

    def test_from_vector_rejects_odd_length(self):
        with pytest.raises(ValidationError):
            Region.from_vector([0.1, 0.2, 0.3])


class TestVolumeAndContainment:
    def test_volume_of_unit_square(self):
        assert make_unit_region().volume() == pytest.approx(1.0)

    def test_volume_scales_with_half_lengths(self):
        region = Region([0.0, 0.0], [0.5, 0.25])
        assert region.volume() == pytest.approx(1.0 * 0.5)

    def test_contains_points_inside_and_outside(self):
        region = make_unit_region()
        points = np.array([[0.5, 0.5], [1.5, 0.5], [-0.1, 0.2]])
        np.testing.assert_array_equal(region.contains_points(points), [True, False, False])

    def test_contains_points_boundary_is_inclusive(self):
        region = make_unit_region()
        assert region.contains_points(np.array([[0.0, 1.0]]))[0]

    def test_contains_points_single_vector(self):
        assert make_unit_region().contains_points(np.array([0.5, 0.5]))[0]

    def test_contains_points_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            make_unit_region().contains_points(np.array([[0.1, 0.2, 0.3]]))

    def test_contains_region(self):
        outer = make_unit_region()
        inner = Region([0.5, 0.5], [0.1, 0.1])
        assert outer.contains_region(inner)
        assert not inner.contains_region(outer)

    def test_intersects_overlapping_and_disjoint(self):
        first = Region.from_bounds([0.0, 0.0], [0.5, 0.5])
        second = Region.from_bounds([0.4, 0.4], [1.0, 1.0])
        third = Region.from_bounds([0.8, 0.8], [1.0, 1.0])
        assert first.intersects(second)
        assert not first.intersects(third)


class TestOverlapMetrics:
    def test_intersection_volume_of_identical_regions(self):
        region = make_unit_region()
        assert region.intersection_volume(region) == pytest.approx(region.volume())

    def test_intersection_volume_disjoint_is_zero(self):
        first = Region.from_bounds([0.0, 0.0], [0.2, 0.2])
        second = Region.from_bounds([0.5, 0.5], [0.9, 0.9])
        assert first.intersection_volume(second) == 0.0

    def test_union_volume_inclusion_exclusion(self):
        first = Region.from_bounds([0.0, 0.0], [0.5, 1.0])
        second = Region.from_bounds([0.25, 0.0], [0.75, 1.0])
        expected = 0.5 + 0.5 - 0.25
        assert first.union_volume(second) == pytest.approx(expected)

    def test_iou_identical_is_one(self):
        region = make_unit_region()
        assert region.iou(region) == pytest.approx(1.0)

    def test_iou_disjoint_is_zero(self):
        first = Region.from_bounds([0.0, 0.0], [0.1, 0.1])
        second = Region.from_bounds([0.5, 0.5], [0.9, 0.9])
        assert first.iou(second) == 0.0

    def test_iou_known_value(self):
        first = Region.from_bounds([0.0, 0.0], [1.0, 1.0])
        second = Region.from_bounds([0.5, 0.0], [1.5, 1.0])
        assert first.iou(second) == pytest.approx(0.5 / 1.5)

    def test_iou_is_symmetric(self):
        first = Region.from_bounds([0.0, 0.0], [0.6, 0.6])
        second = Region.from_bounds([0.3, 0.2], [0.9, 1.0])
        assert first.iou(second) == pytest.approx(second.iou(first))

    def test_module_level_helpers_match_methods(self):
        first = Region.from_bounds([0.0, 0.0], [0.6, 0.6])
        second = Region.from_bounds([0.3, 0.2], [0.9, 1.0])
        assert iou(first, second) == pytest.approx(first.iou(second))
        assert rectangle_intersection_volume(first, second) == pytest.approx(
            first.intersection_volume(second)
        )
        assert rectangle_union_volume(first, second) == pytest.approx(first.union_volume(second))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            make_unit_region().iou(Region([0.5], [0.1]))


class TestTransforms:
    def test_clipped_respects_bounds(self):
        region = Region([0.9, 0.9], [0.3, 0.3])
        clipped = region.clipped([0.0, 0.0], [1.0, 1.0])
        assert np.all(clipped.upper <= 1.0 + 1e-12)
        assert np.all(clipped.lower >= 0.6 - 1e-12)

    def test_clipped_keeps_interior_region_unchanged(self):
        region = Region([0.5, 0.5], [0.1, 0.1])
        clipped = region.clipped([0.0, 0.0], [1.0, 1.0])
        np.testing.assert_allclose(clipped.center, region.center)
        np.testing.assert_allclose(clipped.half_lengths, region.half_lengths)

    def test_expanded_scales_half_lengths(self):
        region = Region([0.5], [0.1])
        assert region.expanded(2.0).half_lengths[0] == pytest.approx(0.2)

    def test_expanded_rejects_non_positive_factor(self):
        with pytest.raises(ValidationError):
            Region([0.5], [0.1]).expanded(0.0)

    def test_translated_moves_center_only(self):
        region = Region([0.5, 0.5], [0.1, 0.1])
        moved = region.translated([0.1, -0.2])
        np.testing.assert_allclose(moved.center, [0.6, 0.3])
        np.testing.assert_allclose(moved.half_lengths, region.half_lengths)

    def test_translated_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Region([0.5, 0.5], [0.1, 0.1]).translated([0.1])


class TestHelpers:
    def test_bounding_region_contains_all_points(self, rng):
        points = rng.uniform(-2.0, 3.0, size=(100, 3))
        box = bounding_region(points)
        assert box.contains_points(points).all()

    def test_bounding_region_padding_strictly_contains(self, rng):
        points = rng.uniform(size=(50, 2))
        box = bounding_region(points, padding=0.1)
        assert np.all(box.lower < points.min(axis=0))
        assert np.all(box.upper > points.max(axis=0))

    def test_bounding_region_handles_constant_column(self):
        points = np.column_stack([np.linspace(0, 1, 10), np.full(10, 0.5)])
        box = bounding_region(points)
        assert box.half_lengths[1] > 0

    def test_random_region_stays_inside_padded_bounds(self, rng):
        bounds = Region.from_bounds([0.0, 0.0], [1.0, 1.0])
        for _ in range(20):
            region = random_region(rng, bounds)
            assert np.all(region.center >= bounds.lower)
            assert np.all(region.center <= bounds.upper)

    def test_random_region_volume_fraction_in_range(self, rng):
        bounds = Region.from_bounds([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
        for _ in range(50):
            region = random_region(rng, bounds, min_fraction=0.01, max_fraction=0.15)
            fraction = region.volume()
            assert 0.009 <= fraction <= 0.151

    def test_random_region_rejects_bad_fractions(self, rng):
        bounds = Region.from_bounds([0.0], [1.0])
        with pytest.raises(ValidationError):
            random_region(rng, bounds, min_fraction=0.2, max_fraction=0.1)
        with pytest.raises(ValidationError):
            random_region(rng, bounds, min_fraction=0.1, max_fraction=1.5)
