"""Unit tests for compiled surrogate inference (:mod:`repro.ml.compiled`).

The central discipline here is *bit-identity*: every equivalence assertion is
``np.array_equal`` (exact float64 equality), never ``allclose`` — the compiled
kernel must replay the recursive path's comparisons and float operation order,
not merely approximate it.
"""

import pickle
import sys

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import clone
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.compiled import (
    JIT_ENV_FLAG,
    CompiledGradientBoostingRegressor,
    CompiledPredictor,
)
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.tree import DecisionTreeRegressor, _Node
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload


def assert_equal_predictions(estimator, features):
    """Recursive and compiled predictions must be *bit-identical*."""
    recursive = estimator.predict(features)
    compiled = CompiledPredictor(estimator).predict(features)
    np.testing.assert_array_equal(recursive, compiled)
    # The cached path through the estimator must agree with a fresh compile.
    np.testing.assert_array_equal(recursive, estimator.compiled_predict(features))


@pytest.fixture(scope="module")
def training_data():
    rng = np.random.default_rng(42)
    features = rng.uniform(-2.0, 2.0, size=(300, 3))
    targets = (
        np.sin(2 * features[:, 0]) + features[:, 1] ** 2 - features[:, 2]
        + rng.normal(0, 0.1, size=300)
    )
    return features, targets


@pytest.fixture(scope="module")
def query_batch():
    return np.random.default_rng(7).uniform(-2.5, 2.5, size=(157, 3))


class TestCompilable:
    def test_fitted_tree_forest_boosting_are_compilable(self, training_data):
        features, targets = training_data
        for estimator in (
            DecisionTreeRegressor(max_depth=4),
            RandomForestRegressor(n_estimators=3, random_state=0),
            GradientBoostingRegressor(n_estimators=5, random_state=0),
        ):
            assert not CompiledPredictor.compilable(estimator)
            estimator.fit(features, targets)
            assert CompiledPredictor.compilable(estimator)

    def test_unfitted_estimator_raises(self):
        with pytest.raises(ValidationError, match="must be fitted"):
            CompiledPredictor(GradientBoostingRegressor())

    def test_unsupported_family_raises(self, training_data):
        features, targets = training_data
        knn = KNeighborsRegressor().fit(features, targets)
        assert not CompiledPredictor.compilable(knn)
        with pytest.raises(ValidationError, match="cannot compile"):
            CompiledPredictor(knn)

    def test_invalid_chunk_size_rejected(self, training_data):
        features, targets = training_data
        tree = DecisionTreeRegressor(max_depth=2).fit(features, targets)
        with pytest.raises(ValidationError, match="chunk_size"):
            CompiledPredictor(tree, chunk_size=0)


class TestBitIdentity:
    def test_decision_tree(self, training_data, query_batch):
        features, targets = training_data
        assert_equal_predictions(DecisionTreeRegressor(max_depth=6).fit(features, targets), query_batch)

    def test_random_forest(self, training_data, query_batch):
        features, targets = training_data
        forest = RandomForestRegressor(n_estimators=11, max_depth=7, random_state=0)
        assert_equal_predictions(forest.fit(features, targets), query_batch)

    def test_gradient_boosting(self, training_data, query_batch):
        features, targets = training_data
        boosted = GradientBoostingRegressor(n_estimators=35, max_depth=4, random_state=0)
        assert_equal_predictions(boosted.fit(features, targets), query_batch)

    def test_single_row_and_odd_batch_sizes(self, training_data):
        features, targets = training_data
        model = GradientBoostingRegressor(n_estimators=10, max_depth=3, random_state=0).fit(
            features, targets
        )
        rng = np.random.default_rng(3)
        for num_rows in (1, 2, 3, 33):
            assert_equal_predictions(model, rng.uniform(-2, 2, size=(num_rows, 3)))

    def test_chunked_traversal_matches_unchunked(self, training_data, query_batch):
        # Chunk boundaries must not perturb any row: per-row work is
        # independent, so a tiny chunk size is still bit-identical.
        features, targets = training_data
        model = GradientBoostingRegressor(n_estimators=8, random_state=0).fit(features, targets)
        tiny = CompiledPredictor(model, chunk_size=13).predict(query_batch)
        np.testing.assert_array_equal(tiny, CompiledPredictor(model).predict(query_batch))
        np.testing.assert_array_equal(tiny, model.predict(query_batch))

    def test_single_node_tree(self, query_batch):
        # max_depth=0 compiles to one self-looping leaf per tree.
        features = np.linspace(0, 1, 20).reshape(-1, 1)
        targets = np.linspace(5, 6, 20)
        stump = DecisionTreeRegressor(max_depth=0).fit(features, targets)
        predictor = CompiledPredictor(stump)
        assert predictor.num_nodes == 1
        assert predictor.max_depth == 0
        assert_equal_predictions(stump, query_batch[:, :1])

    def test_exact_threshold_values_route_identically(self):
        # Rows sitting exactly on a split threshold are the sharpest probe of
        # the <= vs > boundary; feed every fitted threshold back as a query.
        rng = np.random.default_rng(5)
        features = rng.uniform(size=(200, 2))
        targets = rng.uniform(size=200)
        tree = DecisionTreeRegressor(max_depth=6).fit(features, targets)
        predictor = CompiledPredictor(tree)
        thresholds = predictor.threshold[predictor.feature >= 0]
        probe = np.column_stack([thresholds, thresholds])
        assert_equal_predictions(tree, probe)

    def test_deep_fitted_tree(self):
        # Exponentially growing targets force the greedy splitter into a long
        # one-sided chain — the deep-tree regime the level loop must handle.
        num_rows = 60
        features = np.arange(num_rows, dtype=np.float64).reshape(-1, 1)
        targets = 2.0 ** np.arange(num_rows, dtype=np.float64)
        tree = DecisionTreeRegressor(
            max_depth=num_rows, max_bins=num_rows + 1, min_gain=0.0
        ).fit(features, targets)
        assert tree.depth() >= 20
        predictor = CompiledPredictor(tree)
        assert predictor.max_depth == tree.depth()
        assert_equal_predictions(tree, features)

    def test_constant_targets(self, query_batch):
        features = np.random.default_rng(0).uniform(size=(40, 3))
        model = GradientBoostingRegressor(n_estimators=5, random_state=0).fit(
            features, np.full(40, 3.25)
        )
        assert_equal_predictions(model, query_batch)


class TestSoALayout:
    @pytest.fixture(scope="class")
    def predictor(self, training_data):
        features, targets = training_data
        model = GradientBoostingRegressor(n_estimators=12, max_depth=4, random_state=1).fit(
            features, targets
        )
        return model, CompiledPredictor(model)

    def test_table_shapes_consistent(self, predictor):
        _, compiled = predictor
        num_nodes = compiled.num_nodes
        for table in (
            compiled.feature,
            compiled.threshold,
            compiled.left_child,
            compiled.right_child,
            compiled.leaf_value,
        ):
            assert table.shape == (num_nodes,)
        assert compiled.roots.shape == (compiled.num_trees,)

    def test_tree_and_node_counts(self, predictor):
        model, compiled = predictor
        assert compiled.num_trees == model.num_trees_
        assert compiled.num_nodes == sum(tree.node_count_ for tree in model._trees)
        assert compiled.max_depth == max(tree.depth() for tree in model._trees)
        assert compiled.num_features == 3
        assert compiled.aggregation == "sum"

    def test_siblings_adjacent_and_leaves_self_loop(self, predictor):
        _, compiled = predictor
        internal = compiled.feature >= 0
        indices = np.arange(compiled.num_nodes)
        # The branchless kernel relies on right == left + 1 for splits...
        np.testing.assert_array_equal(
            compiled.right_child[internal], compiled.left_child[internal] + 1
        )
        # ...and on leaves parking in place with an untakeable +inf threshold.
        np.testing.assert_array_equal(compiled.left_child[~internal], indices[~internal])
        np.testing.assert_array_equal(compiled.right_child[~internal], indices[~internal])
        assert np.all(np.isinf(compiled.threshold[~internal]))

    def test_feature_mismatch_rejected(self, predictor):
        _, compiled = predictor
        with pytest.raises(ValidationError, match="features"):
            compiled.predict(np.ones((4, 7)))

    def test_backend_is_numpy_without_numba(self, predictor):
        _, compiled = predictor
        assert compiled.backend == "numpy"


class TestEstimatorIntegration:
    def test_compile_caches_and_force_rebuilds(self, training_data):
        features, targets = training_data
        model = GradientBoostingRegressor(n_estimators=5, random_state=0).fit(features, targets)
        assert not model.is_compiled
        first = model.compile()
        assert model.is_compiled
        assert model.compile() is first
        assert model.compile(force=True) is not first

    def test_refit_invalidates_cache(self, training_data, query_batch):
        features, targets = training_data
        model = GradientBoostingRegressor(n_estimators=5, random_state=0).fit(features, targets)
        stale = model.compile()
        model.fit(features, -targets)
        assert not model.is_compiled
        np.testing.assert_array_equal(model.compiled_predict(query_batch), model.predict(query_batch))
        assert model.compile() is not stale

    def test_warm_start_continuation_recompiles(self, training_data, query_batch):
        features, targets = training_data
        model = GradientBoostingRegressor(n_estimators=10, random_state=0).fit(features, targets)
        before = model.compile()
        assert before.num_trees == 10
        model.set_params(warm_start=True, n_estimators=16).fit(features, targets)
        # The continuation predicts through the model mid-fit; the cache must
        # not survive with the 10-tree (or mid-fit) ensemble baked in.
        assert not model.is_compiled
        after = model.compile()
        assert after.num_trees == 16
        assert_equal_predictions(model, query_batch)

    def test_compiled_family_predicts_through_kernel(self, training_data, query_batch):
        features, targets = training_data
        compiled_model = CompiledGradientBoostingRegressor(
            n_estimators=20, max_depth=4, random_state=0
        ).fit(features, targets)
        reference = GradientBoostingRegressor(n_estimators=20, max_depth=4, random_state=0).fit(
            features, targets
        )
        np.testing.assert_array_equal(
            compiled_model.predict(query_batch), reference.predict(query_batch)
        )
        assert compiled_model.is_compiled  # predict compiled on first use

    def test_compiled_family_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            CompiledGradientBoostingRegressor().predict(np.ones((2, 2)))

    def test_compiled_family_clone_is_unfitted(self, training_data):
        features, targets = training_data
        model = CompiledGradientBoostingRegressor(n_estimators=4, random_state=0).fit(
            features, targets
        )
        copy = clone(model)
        assert isinstance(copy, CompiledGradientBoostingRegressor)
        assert copy.get_params()["n_estimators"] == 4
        with pytest.raises(NotFittedError):
            copy.predict(features)

    def test_predictor_pickles_with_estimator(self, training_data, query_batch):
        features, targets = training_data
        model = GradientBoostingRegressor(n_estimators=6, random_state=0).fit(features, targets)
        expected = model.compiled_predict(query_batch)
        restored = pickle.loads(pickle.dumps(model))
        assert restored.is_compiled  # tables travelled inside the pickle
        np.testing.assert_array_equal(restored._compiled.predict(query_batch), expected)

    def test_estimators_pickled_before_this_feature_still_compile(self, training_data):
        # Old pickles have no _compiled attribute at all; the getattr-based
        # accessors must treat them as simply not-yet-compiled.
        features, targets = training_data
        model = GradientBoostingRegressor(n_estimators=4, random_state=0).fit(features, targets)
        if hasattr(model, "_compiled"):
            del model._compiled
        assert not model.is_compiled
        model.compile()
        assert model.is_compiled


class TestRegistryAndTrainer:
    def test_registry_resolves_compiled_family(self):
        from repro.api.registries import resolve_surrogate

        assert resolve_surrogate("compiled-boosting") is CompiledGradientBoostingRegressor
        assert resolve_surrogate("compiled-gbrt") is CompiledGradientBoostingRegressor

    def test_trainer_accepts_family_name(self, density_engine):
        trainer = SurrogateTrainer(
            estimator="compiled-boosting",
            estimator_options={"n_estimators": 8, "max_depth": 3},
            random_state=0,
        )
        assert isinstance(trainer.estimator, CompiledGradientBoostingRegressor)

    def test_trainer_auto_compiles_after_train(self, density_engine):
        workload = generate_workload(density_engine, 120, random_state=0)
        trainer = SurrogateTrainer(
            estimator=GradientBoostingRegressor(n_estimators=8, max_depth=3, random_state=0),
            random_state=0,
        )
        surrogate = trainer.train(workload)
        assert surrogate.estimator.is_compiled

    def test_trainer_auto_compiles_after_incremental_refresh(self, density_engine):
        workload = generate_workload(density_engine, 120, random_state=0)
        trainer = SurrogateTrainer(
            estimator=GradientBoostingRegressor(n_estimators=8, max_depth=3, random_state=0),
            random_state=0,
        )
        surrogate = trainer.train(workload)
        refreshed = trainer.train_incremental(surrogate, workload, extra_rounds=4)
        assert refreshed.estimator.is_compiled
        assert refreshed.estimator.compile().num_trees == surrogate.estimator.compile().num_trees + 4
        from repro.surrogate.features import augment_region_vectors

        grid = augment_region_vectors(workload.features[:50])
        np.testing.assert_array_equal(
            refreshed.estimator.compiled_predict(grid), refreshed.estimator.predict(grid)
        )

    def test_trainer_skips_uncompilable_families(self, density_engine):
        workload = generate_workload(density_engine, 60, random_state=0)
        trainer = SurrogateTrainer(estimator="knn", random_state=0)
        surrogate = trainer.train(workload)  # must not raise
        assert not CompiledPredictor.compilable(surrogate.estimator)


class TestJitFlag:
    def test_env_flag_falls_back_silently_without_numba(self, training_data, monkeypatch):
        # numba is not installed in this environment: asking for the JIT must
        # neither crash nor change results — it degrades to the numpy kernel.
        features, targets = training_data
        model = GradientBoostingRegressor(n_estimators=4, random_state=0).fit(features, targets)
        monkeypatch.setenv(JIT_ENV_FLAG, "1")
        predictor = CompiledPredictor(model)
        assert predictor.backend == "numpy"
        np.testing.assert_array_equal(predictor.predict(features), model.predict(features))

    def test_explicit_jit_argument_falls_back_too(self, training_data):
        features, targets = training_data
        model = DecisionTreeRegressor(max_depth=3).fit(features, targets)
        assert CompiledPredictor(model, jit=True).backend == "numpy"
        assert CompiledPredictor(model, jit=False).backend == "numpy"

    def test_env_flag_off_values_ignored(self, training_data, monkeypatch):
        features, targets = training_data
        model = DecisionTreeRegressor(max_depth=3).fit(features, targets)
        monkeypatch.setenv(JIT_ENV_FLAG, "0")
        assert CompiledPredictor(model).backend == "numpy"


class TestDeepTreeRecursionSafety:
    def test_predict_survives_chain_deeper_than_recursion_limit(self):
        # Regression: _predict_into used one Python frame per split level, so
        # a chain deeper than the interpreter limit blew the stack.  Build a
        # synthetic left-spine two times deeper than the recursion limit and
        # predict through it — the explicit-stack walk must route correctly.
        depth = sys.getrecursionlimit() * 2
        leaf = _Node(value=123.0)
        root = leaf
        for level in range(depth):
            root = _Node(
                value=0.0,
                feature=0,
                threshold=float(level),
                left=root,
                right=_Node(value=float(level)),
            )
        tree = DecisionTreeRegressor()
        tree._root = root
        tree._num_features = 1
        # -1 sits below every threshold, so the row walks the full left spine.
        out = tree.predict(np.array([[-1.0]]))
        np.testing.assert_array_equal(out, [123.0])
        # A row that exits at the first split reads the shallow right leaf
        # (thresholds shrink towards the root, so 'depth' exceeds them all).
        out = tree.predict(np.array([[float(depth)]]))
        np.testing.assert_array_equal(out, [float(depth) - 1.0])

    def test_depth_and_leaf_count_survive_deep_chains(self):
        depth = sys.getrecursionlimit() * 2
        root = _Node(value=0.0)
        for level in range(depth):
            root = _Node(value=0.0, feature=0, threshold=float(level), left=root, right=_Node(value=1.0))
        tree = DecisionTreeRegressor()
        tree._root = root
        tree._num_features = 1
        assert tree.depth() == depth
        assert tree.num_leaves() == depth + 1

    def test_compiler_flattens_chain_deeper_than_recursion_limit(self):
        depth = sys.getrecursionlimit() + 50
        root = _Node(value=0.0)
        for level in range(depth):
            root = _Node(value=0.0, feature=0, threshold=float(level), left=root, right=_Node(value=1.0))
        tree = DecisionTreeRegressor()
        tree._root = root
        tree._num_features = 1
        predictor = CompiledPredictor(tree)
        assert predictor.max_depth == depth
        np.testing.assert_array_equal(
            predictor.predict(np.array([[-1.0]])), tree.predict(np.array([[-1.0]]))
        )
