"""Unit tests for regression metrics and feature scalers."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.metrics import (
    mean_absolute_error,
    mean_squared_error,
    pearson_correlation,
    r2_score,
    root_mean_squared_error,
)
from repro.ml.preprocessing import MinMaxScaler, StandardScaler


class TestMetrics:
    def test_mse_of_exact_predictions_is_zero(self):
        targets = np.array([1.0, 2.0, 3.0])
        assert mean_squared_error(targets, targets) == 0.0

    def test_mse_known_value(self):
        assert mean_squared_error([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_rmse_is_sqrt_of_mse(self):
        y_true = np.array([0.0, 0.0, 0.0, 0.0])
        y_pred = np.array([2.0, 2.0, 2.0, 2.0])
        assert root_mean_squared_error(y_true, y_pred) == pytest.approx(2.0)

    def test_mae_known_value(self):
        assert mean_absolute_error([1.0, -1.0], [0.0, 0.0]) == pytest.approx(1.0)

    def test_r2_perfect_fit_is_one(self):
        targets = np.array([1.0, 2.0, 3.0, 4.0])
        assert r2_score(targets, targets) == pytest.approx(1.0)

    def test_r2_mean_prediction_is_zero(self):
        targets = np.array([1.0, 2.0, 3.0, 4.0])
        predictions = np.full(4, targets.mean())
        assert r2_score(targets, predictions) == pytest.approx(0.0)

    def test_r2_constant_targets(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 0.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == -np.inf

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            mean_squared_error([1.0, 2.0], [1.0])

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            root_mean_squared_error([np.nan], [1.0])

    def test_pearson_correlation_perfect(self):
        x = np.arange(10, dtype=float)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_pearson_correlation_constant_input_is_zero(self):
        assert pearson_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_pearson_requires_two_samples(self):
        with pytest.raises(ValidationError):
            pearson_correlation([1.0], [1.0])


class TestStandardScaler:
    def test_transform_zero_mean_unit_variance(self, rng):
        data = rng.normal(5.0, 3.0, size=(200, 3))
        transformed = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(transformed.std(axis=0), 1.0, atol=1e-9)

    def test_inverse_transform_round_trip(self, rng):
        data = rng.uniform(size=(50, 2))
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data, atol=1e-12)

    def test_constant_feature_not_divided_by_zero(self):
        data = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        transformed = StandardScaler().fit_transform(data)
        assert np.all(np.isfinite(transformed))

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))


class TestMinMaxScaler:
    def test_transform_range(self, rng):
        data = rng.uniform(-5, 7, size=(100, 2))
        transformed = MinMaxScaler().fit_transform(data)
        assert transformed.min() >= 0.0
        assert transformed.max() <= 1.0 + 1e-12

    def test_inverse_round_trip(self, rng):
        data = rng.uniform(-5, 7, size=(40, 3))
        scaler = MinMaxScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data, atol=1e-12)

    def test_constant_feature_maps_to_zero(self):
        data = np.column_stack([np.full(5, 3.0), np.arange(5, dtype=float)])
        transformed = MinMaxScaler().fit_transform(data)
        np.testing.assert_allclose(transformed[:, 0], 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.ones((2, 2)))
