"""Unit tests for workload/surrogate persistence and the experiment CLI runner."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments.runner import build_parser, main, run_experiments
from repro.surrogate.persistence import load_surrogate, load_workload, save_surrogate, save_workload


class TestWorkloadPersistence:
    def test_round_trip_preserves_features_and_targets(self, density_workload, tmp_path):
        path = tmp_path / "workload.npz"
        save_workload(density_workload, path)
        restored = load_workload(path)
        np.testing.assert_allclose(restored.features, density_workload.features)
        np.testing.assert_allclose(restored.targets, density_workload.targets)
        assert restored.region_dim == density_workload.region_dim

    def test_load_rejects_non_workload_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.ones(3))
        with pytest.raises(ValidationError):
            load_workload(path)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_workload(tmp_path / "missing.npz")

    def test_save_returns_path_numpy_actually_wrote(self, density_workload, tmp_path):
        # Regression: numpy appends ".npz" to any filename not already ending
        # in it; save_workload must return that real on-disk path, not a
        # suffix-mangled guess.
        for name in ("workload", "workload.dat", "v1.2-workload"):
            written = save_workload(density_workload, tmp_path / name)
            assert written.exists(), name
            assert written.name == f"{name}.npz"
            restored = load_workload(written)
            np.testing.assert_allclose(restored.features, density_workload.features)

    def test_save_keeps_npz_suffix_untouched(self, density_workload, tmp_path):
        written = save_workload(density_workload, tmp_path / "workload.npz")
        assert written == tmp_path / "workload.npz"
        assert written.exists()

    def test_load_accepts_path_without_npz_suffix(self, density_workload, tmp_path):
        save_workload(density_workload, tmp_path / "workload")
        restored = load_workload(tmp_path / "workload")
        np.testing.assert_allclose(restored.targets, density_workload.targets)


class TestSurrogatePersistence:
    def test_round_trip_predictions_identical(self, fitted_surf, tmp_path):
        surrogate = fitted_surf.surrogate_
        path = tmp_path / "surrogate.pkl"
        save_surrogate(surrogate, path)
        restored = load_surrogate(path)
        probe = np.array([[0.5, 0.5, 0.1, 0.1]])
        np.testing.assert_allclose(restored.predict(probe), surrogate.predict(probe))
        assert restored.region_dim == surrogate.region_dim

    def test_save_rejects_non_surrogate(self, tmp_path):
        with pytest.raises(ValidationError):
            save_surrogate("not-a-model", tmp_path / "bad.pkl")

    def test_load_rejects_other_pickles(self, tmp_path):
        import pickle

        path = tmp_path / "other.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"not": "a surrogate"}, handle)
        with pytest.raises(ValidationError):
            load_surrogate(path)


class TestBundleCompiledTables:
    def test_bundle_round_trips_compiled_tables(self, fitted_surf, tmp_path):
        # save_bundle pre-compiles the surrogate, so a loaded bundle answers
        # through the SoA kernel without recompiling — and bit-identically.
        path = fitted_surf.save(tmp_path / "finder.bundle")
        estimator = fitted_surf.surrogate_.estimator
        assert estimator.is_compiled  # compiled at save time

        from repro.surrogate.persistence import load_bundle

        reloaded = load_bundle(path)
        restored = reloaded.surrogate_.estimator
        assert restored.is_compiled  # tables travelled inside the bundle
        probe = np.random.default_rng(0).uniform(0.1, 0.9, size=(25, restored._compiled.num_features))
        np.testing.assert_array_equal(
            restored._compiled.predict(probe), estimator.compiled_predict(probe)
        )
        np.testing.assert_array_equal(restored._compiled.predict(probe), restored.predict(probe))

    def test_bundle_version_is_3(self, fitted_surf, tmp_path):
        import pickle

        from repro.surrogate.persistence import BUNDLE_VERSION

        assert BUNDLE_VERSION == 3
        path = fitted_surf.save(tmp_path / "finder.bundle")
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        assert payload["version"] == 3


class TestRunnerCli:
    def test_parser_accepts_known_scale(self):
        args = build_parser().parse_args(["fig8", "--scale", "small"])
        assert args.experiments == ["fig8"]
        assert args.scale == "small"

    def test_main_rejects_unknown_experiment(self, capsys):
        assert main(["not-an-experiment"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_experiments_executes_and_prints(self, capsys, monkeypatch):
        # Swap in a stub experiment so the CLI path is tested without heavy compute.
        import repro.experiments.runner as runner_module

        stub_rows = [{"metric": "value", "score": 1.0}]

        class _Stub:
            @staticmethod
            def run(scale):
                return stub_rows

        monkeypatch.setitem(runner_module.EXPERIMENTS, "stub", _Stub)
        executed = run_experiments(["stub"], "small")
        output = capsys.readouterr().out
        assert executed == ["stub"]
        assert "stub" in output
        assert "score" in output

    def test_main_runs_stubbed_experiment(self, capsys, monkeypatch):
        import repro.experiments.runner as runner_module

        class _Stub:
            @staticmethod
            def run(scale):
                return {"answer": 42}

        monkeypatch.setitem(runner_module.EXPERIMENTS, "stub2", _Stub)
        assert main(["stub2", "--scale", "small"]) == 0
        assert "42" in capsys.readouterr().out
