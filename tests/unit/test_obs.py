"""Unit and integration tests for the observability layer (repro.obs).

Covers the metrics registry (exact totals under thread concurrency, the
process-pool snapshot/merge round trip), request tracing (span trees for both
the GSO and cached paths, coalescing linkage, the trace-id satellite
regression), the GSO profiling hook (bit-identical results, trajectory
lengths), and the front-door surfacing (``GET /metrics`` Prometheus text,
``GET /trace/{id}``).
"""

import asyncio
import copy
import json
import threading
import time

import pytest

from repro.api import (
    AsgiApp,
    Deadline,
    FindRequest,
    ModelRegistry,
    ProcessExecute,
    ServiceKernel,
    asgi_request,
    production_chain,
)
from repro.core.finder import SuRF
from repro.exceptions import ValidationError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    Observability,
    Span,
    Trace,
    Tracer,
    accepts_profile_hook,
    current_span,
    parse_prometheus_text,
    span,
    use_span,
)


def run(coro):
    return asyncio.run(coro)


# --------------------------------------------------------------------------- flaky finders
# Module level so instances pickle cleanly into process-pool workers.  Their
# legacy (pre-profile-hook) signatures double as the accepts_profile_hook
# regression: the Execute stage must not pass ``profile_hook=`` to them.
class ErrorFinder(SuRF):
    def find_regions(self, query, max_proposals=None):
        raise RuntimeError("injected failure")


class StallFinder(SuRF):
    def find_regions(self, query, max_proposals=None):
        time.sleep(2.0)
        return super().find_regions(query, max_proposals=max_proposals)


def reclass(fitted_surf, cls):
    flaky = copy.copy(fitted_surf)
    flaky.__class__ = cls
    return flaky


# =========================================================================== metrics
class TestMetricsRegistry:
    def test_counter_exact_totals_and_labels(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "Requests.", ("model", "verdict"))
        requests.labels("a", "served").inc()
        requests.labels("a", "served").inc(2)
        requests.labels("b", "cached").inc()
        parsed = parse_prometheus_text(registry.render())
        assert parsed["requests_total"]['{model="a",verdict="served"}'] == 3.0
        assert parsed["requests_total"]['{model="b",verdict="cached"}'] == 1.0

    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "c", ())
        with pytest.raises(ValidationError):
            counter.labels().inc(-1)

    def test_family_redeclaration_is_idempotent_but_conflicts_raise(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "x", ("model",))
        assert registry.counter("x_total", "x", ("model",)) is first
        with pytest.raises(ValidationError):
            registry.counter("x_total", "x", ("tenant",))
        with pytest.raises(ValidationError):
            registry.gauge("x_total", "x", ("model",))

    def test_histogram_count_matches_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "latency", ("stage",), buckets=(0.1, 1.0))
        observations = [0.05, 0.5, 5.0, 0.5]
        for value in observations:
            hist.labels("total").observe(value)
        parsed = parse_prometheus_text(registry.render())
        assert parsed["lat_seconds_count"]['{stage="total"}'] == len(observations)
        assert parsed["lat_seconds_sum"]['{stage="total"}'] == pytest.approx(
            sum(observations)
        )
        buckets = parsed["lat_seconds_bucket"]
        assert buckets['{stage="total",le="0.1"}'] == 1.0
        assert buckets['{stage="total",le="1"}'] == 3.0
        assert buckets['{stage="total",le="+Inf"}'] == 4.0

    def test_default_latency_buckets_cover_microseconds_to_minutes(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-6
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 60.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits", ("model",))
        hist = registry.histogram("obs_seconds", "obs", (), buckets=(1.0,))
        per_thread, threads = 500, 8

        def worker(tenant):
            for _ in range(per_thread):
                counter.labels(tenant).inc()
                hist.labels().observe(0.5)

        pool = [
            threading.Thread(target=worker, args=(f"t{i % 2}",)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        parsed = parse_prometheus_text(registry.render())
        assert parsed["hits_total"]['{model="t0"}'] == per_thread * threads / 2
        assert parsed["hits_total"]['{model="t1"}'] == per_thread * threads / 2
        assert parsed["obs_seconds_count"][""] == per_thread * threads

    def test_snapshot_merge_round_trip_adds_counts(self):
        parent = MetricsRegistry()
        parent.counter("runs_total", "runs", ("model",)).labels("m").inc(2)
        parent.histogram("h_seconds", "h", (), buckets=(1.0,)).labels().observe(0.5)

        worker = MetricsRegistry()
        worker.counter("runs_total", "runs", ("model",)).labels("m").inc(3)
        worker.counter("new_total", "new family", ()).labels().inc()
        worker.histogram("h_seconds", "h", (), buckets=(1.0,)).labels().observe(2.0)
        parent.merge(worker.snapshot(run_collectors=False))

        parsed = parse_prometheus_text(parent.render())
        assert parsed["runs_total"]['{model="m"}'] == 5.0
        assert parsed["new_total"][""] == 1.0  # family created from the snapshot
        assert parsed["h_seconds_count"][""] == 2.0
        assert parsed["h_seconds_sum"][""] == pytest.approx(2.5)

    def test_render_is_valid_prometheus_text(self):
        registry = MetricsRegistry()
        registry.gauge("g", "a gauge", ("model",)).labels('we"ird\\name').set(1.5)
        text = registry.render()
        assert "# HELP g a gauge" in text
        assert "# TYPE g gauge" in text
        parse_prometheus_text(text)  # raises on malformed exposition

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValidationError):
            parse_prometheus_text("this is not prometheus\n")


# =========================================================================== tracing
class TestTracing:
    def test_span_context_managers_nest(self):
        root = Span("request", start=0.0)
        with use_span(root):
            assert current_span() is root
            with span("child") as child:
                assert child.name == "child"
                with span("grandchild"):
                    pass
        assert [c.name for c in root.children] == ["child"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        assert root.children[0].duration_seconds >= 0.0

    def test_span_without_parent_is_a_null_span(self):
        with span("orphan") as orphan:
            orphan.set_attribute("ignored", 1)  # must not raise
        assert current_span() is None

    def test_span_records_exceptions(self):
        root = Span("request", start=0.0)
        with use_span(root):
            with pytest.raises(RuntimeError):
                with span("boom"):
                    raise RuntimeError("bad")
        (child,) = root.children
        assert "RuntimeError" in child.attributes["exception"]

    def test_to_dict_reports_offsets_relative_to_origin(self):
        root = Span("request", start=100.0)
        child = root.child("stage", start=100.5)
        child.finish(end=100.75)
        root.finish(end=101.0)
        payload = root.to_dict(origin=100.0)
        assert payload["offset_seconds"] == pytest.approx(0.0)
        assert payload["duration_seconds"] == pytest.approx(1.0)
        assert payload["children"][0]["offset_seconds"] == pytest.approx(0.5)
        assert payload["children"][0]["duration_seconds"] == pytest.approx(0.25)

    def test_tracer_ring_evicts_oldest(self):
        tracer = Tracer(capacity=2)
        for i in range(3):
            root = Span("request", start=0.0)
            root.finish(end=1.0)
            tracer.record(self._record(f"t-{i}", root))
        assert tracer.get("t-0") is None
        assert tracer.get("t-1") is not None
        assert tracer.get("t-2") is not None
        assert len(tracer) == 2

    def test_tracer_exports_jsonl(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        tracer = Tracer(capacity=4, jsonl_path=path)
        root = Span("request", start=0.0)
        root.finish(end=0.25)
        tracer.record(self._record("t-x", root))
        tracer.close()
        lines = path.read_text().strip().splitlines()
        payload = json.loads(lines[0])
        assert payload["trace_id"] == "t-x"
        assert payload["spans"]["name"] == "request"

    @staticmethod
    def _record(trace_id, root):
        from repro.obs.tracing import TraceRecord

        return TraceRecord(trace_id=trace_id, model="m", status="served", root=root)


# =========================================================================== runtime units
class TestObservabilityUnit:
    def test_coerce(self):
        obs = Observability()
        assert Observability.coerce(True) is not None
        assert Observability.coerce(obs) is obs
        with pytest.raises(ValidationError):
            Observability.coerce("yes")

    def test_trace_ids_are_unique(self):
        obs = Observability()
        ids = {obs.next_trace_id() for _ in range(100)}
        assert len(ids) == 100

    def test_accepts_profile_hook_rejects_legacy_signatures(self, fitted_surf):
        assert accepts_profile_hook(fitted_surf)
        assert not accepts_profile_hook(reclass(fitted_surf, ErrorFinder))
        assert not accepts_profile_hook(reclass(fitted_surf, StallFinder))


# =========================================================================== kernel integration
class TestKernelIntegration:
    def test_observability_is_off_by_default(self, fitted_surf, density_query):
        kernel = ServiceKernel(fitted_surf)
        assert kernel.observability is None
        response = kernel.handle(FindRequest.from_query(density_query))
        assert response.timing is None
        assert response.trace_id is None

    def test_gso_and_cached_requests_produce_complete_span_trees(
        self, fitted_surf, density_query
    ):
        obs = Observability()
        kernel = ServiceKernel(fitted_surf, name="traced", observability=obs)
        served = kernel.handle(FindRequest.from_query(density_query))
        cached = kernel.handle(FindRequest.from_query(density_query))
        assert served.status == "served" and cached.status == "cached"
        assert served.trace_id and cached.trace_id
        assert served.trace_id != cached.trace_id

        def stage_names(record):
            names, node = [], record.root
            while node is not None:
                names.append(node.name)
                children = node.children or []
                stages = [c for c in children if c.name != "gso-run"]
                node = stages[0] if stages else None
            return names

        gso_record = obs.tracer.get(served.trace_id)
        assert stage_names(gso_record) == [
            "request",
            "normalize",
            "satisfiability-gate",
            "cache",
            "coalesce",
            "execute",
            "harvest",
        ]
        execute = gso_record.root
        while execute.name != "execute":
            execute = execute.children[0]
        (gso_span,) = [c for c in execute.children or [] if c.name == "gso-run"]
        assert gso_span.attributes["iterations"] > 0
        assert gso_span.attributes["surrogate_evals"] > 0
        assert len(gso_span.attributes["radius_trajectory"]) == (
            gso_span.attributes["iterations"]
        )
        assert gso_span.duration_seconds >= 0.0

        cached_record = obs.tracer.get(cached.trace_id)
        assert cached_record.status == "cached"
        flat = json.dumps(cached_record.to_dict())
        assert "gso-run" not in flat  # the cached path never reaches the optimiser

    def test_timing_breakdown_is_opt_in(self, fitted_surf, density_query):
        obs = Observability(timing_breakdown=True)
        kernel = ServiceKernel(fitted_surf, name="timed", observability=obs)
        response = kernel.handle(FindRequest.from_query(density_query))
        assert set(response.timing) >= {"normalize", "cache", "execute", "total"}
        assert all(value >= 0.0 for value in response.timing.values())
        assert response.timing["total"] >= response.timing["harvest"]
        payload = response.to_dict()
        assert payload["timing"] == response.timing

    def test_metrics_cover_requests_cache_and_gso(self, fitted_surf, density_query):
        obs = Observability()
        kernel = ServiceKernel(fitted_surf, name="metered", observability=obs)
        kernel.handle(FindRequest.from_query(density_query, model="metered"))
        kernel.handle(FindRequest.from_query(density_query, model="metered"))
        parsed = parse_prometheus_text(obs.metrics.render())
        assert parsed["repro_requests_total"]['{model="metered",verdict="served"}'] == 1.0
        assert parsed["repro_requests_total"]['{model="metered",verdict="cached"}'] == 1.0
        assert parsed["repro_cache_requests_total"]['{model="metered",outcome="hit"}'] == 1.0
        assert parsed["repro_cache_requests_total"]['{model="metered",outcome="miss"}'] == 1.0
        assert parsed["repro_gso_runs_total"]['{model="metered"}'] == 1.0
        assert parsed["repro_gso_surrogate_evals_total"]['{model="metered"}'] > 0
        assert (
            parsed["repro_request_latency_seconds_count"][
                '{model="metered",stage="total"}'
            ]
            == 2.0
        )
        # Collector-backed gauges ride along on every scrape.
        assert parsed["repro_generation"]['{model="metered"}'] == 0.0
        assert parsed["repro_cache_entries"]['{model="metered"}'] == 1.0
        assert parsed["repro_service_stats"]['{model="metered",counter="queries"}'] == 2.0

    def test_coalesced_followers_echo_their_own_trace_ids(
        self, fitted_surf, density_query
    ):
        obs = Observability()
        kernel = ServiceKernel(fitted_surf, name="grouped", observability=obs)
        first, second = kernel.handle_batch(
            [
                FindRequest.from_query(density_query, trace_id="t-leader"),
                FindRequest.from_query(density_query),
            ]
        )
        # The follower shares the leader's run but keeps its own identity.
        assert first.trace_id == "t-leader"
        assert second.trace_id and second.trace_id != "t-leader"
        assert first.result is not None and second.result is not None
        record = obs.tracer.get(second.trace_id)
        events = [event for event in record.events if event[0] == "coalesced-into"]
        assert events and events[0][2]["leader"] == "t-leader"
        leader_record = obs.tracer.get("t-leader")
        leads = [e for e in leader_record.events if e[0] == "coalesce-leader"]
        assert leads and second.trace_id in leads[0][2]["followers"]
        parsed = parse_prometheus_text(obs.metrics.render())
        assert parsed["repro_coalesced_total"]['{model="grouped"}'] == 1.0

    def test_client_supplied_trace_ids_are_preserved(self, fitted_surf, density_query):
        obs = Observability()
        kernel = ServiceKernel(fitted_surf, name="echo", observability=obs)
        response = kernel.handle(
            FindRequest.from_query(density_query, trace_id="client-1")
        )
        assert response.trace_id == "client-1"
        assert obs.tracer.get("client-1") is not None

    def test_refresh_resets_the_since_refresh_window(self, fitted_surf, density_query):
        from repro.online import QueryLog
        from repro.data.engine import DataEngine

        kernel = ServiceKernel(
            fitted_surf, name="windowed", query_log=QueryLog(capacity=100)
        )
        kernel.handle(FindRequest.from_query(density_query))
        kernel.handle(FindRequest.from_query(density_query))
        assert kernel.stats.as_dict()["since_refresh"]["queries"] == 2
        kernel.refresh(force_full=True)
        window = kernel.stats.as_dict()["since_refresh"]
        assert window["queries"] == 0
        assert window["hit_rate"] == 0.0
        assert kernel.stats.queries == 2  # lifetime counters keep accumulating
        kernel.handle(FindRequest.from_query(density_query))
        window = kernel.stats.as_dict()["since_refresh"]
        assert window["queries"] == 1
        assert window["cache_misses"] == 1  # the refresh cleared the cache


# =========================================================================== concurrency
class TestMetricsUnderConcurrency:
    def test_threaded_mixed_tenant_burst_counts_exactly(
        self, fitted_surf, density_query
    ):
        obs = Observability()
        registry = ModelRegistry()
        registry.register("alpha", fitted_surf, observability=obs)
        registry.register("beta", fitted_surf, observability=obs)
        per_thread, threads = 4, 8

        def client(worker_id):
            for i in range(per_thread):
                model = "alpha" if (worker_id + i) % 2 == 0 else "beta"
                response = registry.find(
                    FindRequest.from_query(density_query, model=model)
                )
                assert response.status in ("served", "cached")

        pool = [threading.Thread(target=client, args=(i,)) for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        parsed = parse_prometheus_text(obs.metrics.render())
        totals = parsed["repro_requests_total"]
        per_model = {"alpha": 0.0, "beta": 0.0}
        for labels, value in totals.items():
            for model in per_model:
                if f'model="{model}"' in labels:
                    per_model[model] += value
        assert per_model["alpha"] == per_thread * threads / 2
        assert per_model["beta"] == per_thread * threads / 2
        latency = parsed["repro_request_latency_seconds_count"]
        assert (
            latency['{model="alpha",stage="total"}']
            + latency['{model="beta",stage="total"}']
            == per_thread * threads
        )

    def test_process_pool_snapshot_merge_loses_no_increments(
        self, fitted_surf, density_query
    ):
        obs = Observability()
        chain = production_chain(execute=ProcessExecute(max_workers=2), observability=obs)
        kernel = ServiceKernel(
            fitted_surf, name="pooled", middleware=chain, max_workers=2
        )
        try:
            thresholds = [density_query.threshold * scale for scale in (1.0, 1.01, 0.99)]
            responses = kernel.handle_batch(
                [FindRequest(threshold=value, model="pooled") for value in thresholds]
            )
            statuses = [response.status for response in responses]
            assert statuses.count("served") == len(thresholds)
        finally:
            kernel.close()
        parsed = parse_prometheus_text(obs.metrics.render())
        # Every worker-side run shipped its delta home: one run per threshold.
        assert parsed["repro_gso_runs_total"]['{model="pooled"}'] == len(thresholds)
        assert parsed["repro_gso_surrogate_evals_total"]['{model="pooled"}'] > 0
        record = obs.tracer.get(responses[0].trace_id)
        flat = json.dumps(record.to_dict())
        assert "gso-run" in flat  # pooled runs still land in the span tree

    def test_error_and_timeout_verdict_labels(self, fitted_surf, density_query):
        obs = Observability()
        kernel = ServiceKernel(
            reclass(fitted_surf, ErrorFinder), name="flaky", observability=obs
        )
        failed = kernel.handle(FindRequest.from_query(density_query, model="flaky"))
        assert failed.status == "error"

        stalled = ServiceKernel(
            reclass(fitted_surf, StallFinder),
            name="stalled",
            middleware=production_chain(
                deadline=Deadline(default_budget=0.2), observability=obs
            ),
        )
        response = stalled.handle(FindRequest.from_query(density_query, model="stalled"))
        assert response.status == "timeout"
        parsed = parse_prometheus_text(obs.metrics.render())
        assert parsed["repro_requests_total"]['{model="flaky",verdict="error"}'] == 1.0
        assert parsed["repro_requests_total"]['{model="stalled",verdict="timeout"}'] == 1.0
        assert obs.tracer.get(response.trace_id).status == "timeout"


# =========================================================================== gso profiling
class TestGsoProfiling:
    def test_profile_hook_never_touches_the_rng_stream(self, fitted_surf, density_query):
        from repro.obs.runtime import GSORunProfile

        baseline = fitted_surf.find_regions(density_query)
        profile = GSORunProfile()
        profiled = fitted_surf.find_regions(density_query, profile_hook=profile)
        assert profile.iterations > 0
        assert profile.evaluations > 0
        assert len(profile.radius_trajectory) == profile.iterations
        assert len(profile.feasible_trajectory) == profile.iterations
        # The hook never touches the RNG stream: bit-identical proposals.
        assert [p.predicted_value for p in baseline.proposals] == [
            p.predicted_value for p in profiled.proposals
        ]
        assert [p.objective_value for p in baseline.proposals] == [
            p.objective_value for p in profiled.proposals
        ]
        summary = profile.summary()
        assert summary["iterations"] == profile.iterations
        assert summary["surrogate_evals"] == profile.evaluations


# =========================================================================== front door
class TestFrontDoor:
    @pytest.fixture()
    def app(self, fitted_surf):
        registry = ModelRegistry()
        registry.register(
            "demo", fitted_surf, observability=Observability(trace_capacity=32)
        )
        return AsgiApp(registry)

    def test_metrics_endpoint_serves_prometheus_text(
        self, app, fitted_surf, density_query
    ):
        body = {"threshold": density_query.threshold, "model": "demo"}
        assert run(asgi_request(app, "POST", "/find", json_body=body)).status == 200
        response = run(asgi_request(app, "GET", "/metrics"))
        assert response.status == 200
        assert response.headers["content-type"].startswith("text/plain; version=0.0.4")
        parsed = parse_prometheus_text(response.body.decode("utf-8"))
        assert parsed["repro_requests_total"]['{model="demo",verdict="served"}'] == 1.0
        assert "repro_request_latency_seconds_count" in parsed

    def test_metrics_endpoint_answers_without_observability(self, fitted_surf):
        registry = ModelRegistry()
        registry.register("bare", fitted_surf)
        response = run(asgi_request(AsgiApp(registry), "GET", "/metrics"))
        assert response.status == 200
        parsed = parse_prometheus_text(response.body.decode("utf-8"))
        assert parsed["repro_service_stats"]['{model="bare",counter="queries"}'] == 0.0

    def test_trace_endpoint_round_trip(self, app, density_query):
        body = {
            "threshold": density_query.threshold,
            "model": "demo",
            "trace_id": "t-front-door",
        }
        assert run(asgi_request(app, "POST", "/find", json_body=body)).status == 200
        response = run(asgi_request(app, "GET", "/trace/t-front-door"))
        assert response.status == 200
        payload = response.json()
        assert payload["trace_id"] == "t-front-door"
        assert payload["spans"]["name"] == "request"
        names = set()

        def walk(node):
            names.add(node["name"])
            for child in node.get("children") or []:
                walk(child)

        walk(payload["spans"])
        assert {"normalize", "cache", "execute", "harvest"} <= names

    def test_unknown_trace_is_404(self, app):
        assert run(asgi_request(app, "GET", "/trace/nope")).status == 404
