"""Unit tests for the back-end DataEngine and the grid spatial index."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.engine import DataEngine
from repro.data.index import GridIndex
from repro.data.regions import Region
from repro.data.statistics import AverageStatistic, CountStatistic
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def grid_points(rng):
    return np.random.default_rng(3).uniform(size=(2_000, 2))


class TestGridIndex:
    def test_counts_match_bruteforce(self, grid_points):
        index = GridIndex(grid_points, cells_per_dim=8)
        region = Region.from_bounds([0.2, 0.3], [0.6, 0.7])
        brute = np.sum(np.all((grid_points >= region.lower) & (grid_points <= region.upper), axis=1))
        assert index.count(region) == brute

    def test_query_indices_are_exact(self, grid_points):
        index = GridIndex(grid_points, cells_per_dim=5)
        region = Region.from_bounds([0.1, 0.1], [0.4, 0.9])
        indices = index.query_indices(region)
        inside = np.all(
            (grid_points[indices] >= region.lower) & (grid_points[indices] <= region.upper), axis=1
        )
        assert inside.all()

    def test_candidates_superset_of_answers(self, grid_points):
        index = GridIndex(grid_points, cells_per_dim=6)
        region = Region.from_bounds([0.5, 0.5], [0.8, 0.8])
        candidates = set(index.candidate_indices(region).tolist())
        answers = set(index.query_indices(region).tolist())
        assert answers.issubset(candidates)

    def test_empty_region_returns_empty(self, grid_points):
        index = GridIndex(grid_points, cells_per_dim=8)
        region = Region.from_bounds([2.0, 2.0], [2.1, 2.1])
        assert index.count(region) == 0

    def test_dimension_mismatch_rejected(self, grid_points):
        index = GridIndex(grid_points)
        with pytest.raises(ValidationError):
            index.count(Region.from_bounds([0.0], [0.5]))

    def test_invalid_cells_per_dim(self, grid_points):
        with pytest.raises(ValidationError):
            GridIndex(grid_points, cells_per_dim=0)

    def test_properties(self, grid_points):
        index = GridIndex(grid_points, cells_per_dim=4)
        assert index.num_points == grid_points.shape[0]
        assert index.dim == 2


class TestDataEngineCount:
    def test_evaluate_counts_points(self, simple_dataset):
        engine = DataEngine(simple_dataset, CountStatistic())
        region = Region.from_bounds([0.0, 0.0, 0.0], [0.3, 0.3, 3.0])
        assert engine.evaluate(region) == 2.0

    def test_indexed_engine_matches_unindexed(self, small_density_synthetic):
        dataset = small_density_synthetic.dataset
        plain = DataEngine(dataset, CountStatistic(), use_index=False)
        indexed = DataEngine(dataset, CountStatistic(), use_index=True, cells_per_dim=8)
        region = small_density_synthetic.ground_truth[0].region
        assert plain.evaluate(region) == indexed.evaluate(region)

    def test_evaluate_vector_matches_evaluate(self, density_engine, small_density_synthetic):
        region = small_density_synthetic.ground_truth[0].region
        assert density_engine.evaluate_vector(region.to_vector()) == density_engine.evaluate(region)

    def test_evaluation_counter_increments_and_resets(self, simple_dataset):
        engine = DataEngine(simple_dataset, CountStatistic())
        region = Region.from_bounds([0.0, 0.0, 0.0], [1.0, 1.0, 10.0])
        engine.evaluate(region)
        engine.evaluate(region)
        assert engine.num_evaluations == 2
        engine.reset_evaluation_counter()
        assert engine.num_evaluations == 0

    def test_evaluate_many_returns_array(self, simple_dataset):
        engine = DataEngine(simple_dataset, CountStatistic())
        regions = [
            Region.from_bounds([0.0, 0.0, 0.0], [1.0, 1.0, 10.0]),
            Region.from_bounds([0.0, 0.0, 0.0], [0.3, 0.3, 3.0]),
        ]
        np.testing.assert_allclose(engine.evaluate_many(regions), [5.0, 2.0])

    def test_region_dim_and_columns(self, simple_dataset):
        engine = DataEngine(simple_dataset, CountStatistic())
        assert engine.region_dim == 3
        assert engine.region_columns == ["x", "y", "value"]

    def test_dimension_mismatch_raises(self, simple_dataset):
        engine = DataEngine(simple_dataset, CountStatistic())
        with pytest.raises(ValidationError):
            engine.evaluate(Region.from_bounds([0.0], [0.5]))

    def test_support_ignores_statistic(self, simple_dataset):
        engine = DataEngine(simple_dataset, AverageStatistic("value"))
        region = Region.from_bounds([0.0, 0.0], [0.3, 0.3])
        assert engine.support(region) == 2


class TestIndexedAttributeStatistics:
    """The index's count-only restriction is lifted: candidate pruning now
    serves attribute statistics too (prune, sort candidates back into row
    order, gather exactly)."""

    @pytest.fixture(scope="class")
    def aggregate_dataset(self):
        rng = np.random.default_rng(17)
        values = np.column_stack(
            [rng.uniform(size=(3_000, 2)), rng.normal(loc=1.0, size=3_000)]
        )
        return Dataset(values, ["x", "y", "value"])

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_indexed_attribute_statistics_match_unindexed(self, aggregate_dataset, seed):
        statistic = AverageStatistic("value")
        plain = DataEngine(aggregate_dataset, statistic, use_index=False)
        indexed = DataEngine(aggregate_dataset, statistic, use_index=True, cells_per_dim=7)
        rng = np.random.default_rng(seed)
        vectors = np.column_stack(
            [rng.uniform(size=(200, 2)), rng.uniform(-0.05, 0.4, size=(200, 2))]
        )
        # Bit-identical, not merely close: the indexed gather re-sorts pruned
        # candidates into row order before the float reduction.
        assert np.array_equal(plain.evaluate_batch(vectors), indexed.evaluate_batch(vectors))
        assert plain.num_evaluations == indexed.num_evaluations == 200

    def test_indexed_statistic_sample_matches_unindexed(self, aggregate_dataset):
        statistic = AverageStatistic("value")
        plain = DataEngine(aggregate_dataset, statistic, use_index=False)
        indexed = DataEngine(aggregate_dataset, statistic, use_index=True, cells_per_dim=5)
        assert np.array_equal(
            plain.statistic_sample(40, random_state=4),
            indexed.statistic_sample(40, random_state=4),
        )


class TestDataEngineAggregate:
    def test_average_excludes_target_dimension(self, simple_dataset):
        engine = DataEngine(simple_dataset, AverageStatistic("value"))
        assert engine.region_dim == 2
        region = Region.from_bounds([0.0, 0.0], [0.3, 0.3])
        assert engine.evaluate(region) == pytest.approx(1.5)

    def test_region_bounds_cover_data(self, density_engine, small_density_synthetic):
        bounds = density_engine.region_bounds()
        points = small_density_synthetic.dataset.values
        assert bounds.contains_points(points).all()

    def test_statistic_sample_and_cdf(self, density_engine):
        sample = density_engine.statistic_sample(50, random_state=1)
        assert sample.shape == (50,)
        cdf = density_engine.empirical_cdf(sample)
        assert cdf(float(sample.max()) + 1) == pytest.approx(1.0)
        assert cdf(float(sample.min()) - 1) == pytest.approx(0.0)

    def test_ground_truth_statistic_matches_engine(self, small_density_synthetic, density_engine):
        truth = small_density_synthetic.ground_truth[0]
        assert density_engine.evaluate(truth.region) == pytest.approx(truth.statistic_value)
