"""Unit tests for RegionQuery, SolutionSpace and the objective functions."""

import numpy as np
import pytest

from repro.core.objective import LogObjective, RatioObjective, make_objective
from repro.core.query import RegionQuery, SolutionSpace
from repro.data.regions import Region
from repro.exceptions import ValidationError


def linear_statistic(vector: np.ndarray) -> float:
    """A simple synthetic statistic: count proportional to region volume ×1000."""
    dim = vector.size // 2
    half = vector[dim:]
    return float(np.prod(2 * half) * 1000.0)


def batch_linear_statistic(vectors: np.ndarray) -> np.ndarray:
    dim = vectors.shape[1] // 2
    return np.prod(2 * vectors[:, dim:], axis=1) * 1000.0


class TestRegionQuery:
    def test_margin_above(self):
        query = RegionQuery(threshold=10.0, direction="above")
        assert query.margin(15.0) == pytest.approx(5.0)
        assert query.margin(5.0) == pytest.approx(-5.0)

    def test_margin_below(self):
        query = RegionQuery(threshold=10.0, direction="below")
        assert query.margin(5.0) == pytest.approx(5.0)
        assert query.margin(15.0) == pytest.approx(-5.0)

    def test_satisfied_by_is_strict(self):
        query = RegionQuery(threshold=10.0, direction="above")
        assert query.satisfied_by(10.5)
        assert not query.satisfied_by(10.0)
        assert not query.satisfied_by(9.0)

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValidationError):
            RegionQuery(threshold=1.0, direction="between")

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValidationError):
            RegionQuery(threshold=np.inf)

    def test_negative_size_penalty_rejected(self):
        with pytest.raises(ValidationError):
            RegionQuery(threshold=1.0, size_penalty=-1.0)

    def test_str_mentions_direction(self):
        assert ">" in str(RegionQuery(threshold=1.0, direction="above"))
        assert "<" in str(RegionQuery(threshold=1.0, direction="below"))


class TestSolutionSpace:
    def test_bounds_vectors_shapes(self):
        space = SolutionSpace(Region.from_bounds([0.0, 0.0], [1.0, 2.0]))
        lower, upper = space.bounds_vectors()
        assert lower.shape == (4,)
        assert upper.shape == (4,)
        assert space.solution_dim == 4
        assert space.region_dim == 2

    def test_half_length_bounds_scale_with_extent(self):
        space = SolutionSpace(
            Region.from_bounds([0.0, 0.0], [1.0, 2.0]), min_half_fraction=0.01, max_half_fraction=0.5
        )
        lower, upper = space.bounds_vectors()
        np.testing.assert_allclose(lower[2:], [0.01, 0.02])
        np.testing.assert_allclose(upper[2:], [0.5, 1.0])

    def test_clip_vector(self):
        space = SolutionSpace(Region.from_bounds([0.0], [1.0]))
        clipped = space.clip_vector(np.array([2.0, 0.9]))
        assert clipped[0] == pytest.approx(1.0)
        assert clipped[1] <= 0.5

    def test_contains_vector(self):
        space = SolutionSpace(Region.from_bounds([0.0], [1.0]))
        assert space.contains_vector(np.array([0.5, 0.1]))
        assert not space.contains_vector(np.array([1.5, 0.1]))

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValidationError):
            SolutionSpace(Region.from_bounds([0.0], [1.0]), min_half_fraction=0.4, max_half_fraction=0.2)

    def test_from_workload_features_covers_evaluated_regions(self):
        features = np.array(
            [
                [0.2, 0.2, 0.1, 0.1],
                [0.8, 0.9, 0.05, 0.05],
            ]
        )
        space = SolutionSpace.from_workload_features(features)
        assert space.region_dim == 2
        assert np.all(space.data_bounds.lower <= [0.1, 0.1])
        assert np.all(space.data_bounds.upper >= [0.85, 0.95])

    def test_from_workload_features_rejects_bad_shape(self):
        with pytest.raises(ValidationError):
            SolutionSpace.from_workload_features(np.ones((3, 3)))

    def test_from_workload_features_rejects_empty_matrix(self):
        # Regression: an empty feature matrix used to crash with a cryptic
        # numpy "zero-size array to reduction operation" error.
        with pytest.raises(ValidationError):
            SolutionSpace.from_workload_features(np.empty((0, 4)))


class TestLogObjective:
    def test_feasible_region_value(self):
        query = RegionQuery(threshold=100.0, direction="above", size_penalty=2.0)
        objective = LogObjective(linear_statistic, query)
        vector = np.array([0.5, 0.5, 0.3, 0.3])  # volume 0.36 -> statistic 360
        expected = np.log(360.0 - 100.0) - 2.0 * (np.log(0.3) + np.log(0.3))
        assert objective(vector) == pytest.approx(expected)

    def test_infeasible_region_is_minus_inf(self):
        query = RegionQuery(threshold=100.0, direction="above")
        objective = LogObjective(linear_statistic, query)
        tiny = np.array([0.5, 0.5, 0.01, 0.01])
        assert objective(tiny) == -np.inf

    def test_below_direction(self):
        query = RegionQuery(threshold=100.0, direction="below", size_penalty=1.0)
        objective = LogObjective(linear_statistic, query)
        tiny = np.array([0.5, 0.5, 0.01, 0.01])  # statistic 0.4 < 100 -> feasible
        assert np.isfinite(objective(tiny))
        big = np.array([0.5, 0.5, 0.4, 0.4])  # statistic 640 > 100 -> infeasible
        assert objective(big) == -np.inf

    def test_smaller_regions_score_higher_when_feasible(self):
        query = RegionQuery(threshold=10.0, direction="above", size_penalty=4.0)
        objective = LogObjective(linear_statistic, query)
        small = objective(np.array([0.5, 0.5, 0.2, 0.2]))
        large = objective(np.array([0.5, 0.5, 0.4, 0.4]))
        assert small > large

    def test_batch_matches_scalar(self):
        query = RegionQuery(threshold=100.0, direction="above", size_penalty=3.0)
        objective = LogObjective(linear_statistic, query, batch_linear_statistic)
        vectors = np.array(
            [
                [0.5, 0.5, 0.3, 0.3],
                [0.5, 0.5, 0.01, 0.01],
                [0.2, 0.8, 0.45, 0.25],
            ]
        )
        batch = objective.evaluate_batch(vectors)
        singles = np.array([objective(vector) for vector in vectors])
        np.testing.assert_allclose(batch, singles)

    def test_batch_without_batch_fn_falls_back_to_loop(self):
        query = RegionQuery(threshold=100.0, direction="above")
        objective = LogObjective(linear_statistic, query)
        vectors = np.array([[0.5, 0.5, 0.3, 0.3], [0.5, 0.5, 0.2, 0.2]])
        np.testing.assert_allclose(
            objective.evaluate_batch(vectors), [objective(v) for v in vectors]
        )

    def test_is_feasible_helper(self):
        query = RegionQuery(threshold=100.0, direction="above")
        objective = LogObjective(linear_statistic, query)
        assert objective.is_feasible(np.array([0.5, 0.5, 0.3, 0.3]))
        assert not objective.is_feasible(np.array([0.5, 0.5, 0.01, 0.01]))

    def test_evaluate_region_matches_vector(self):
        query = RegionQuery(threshold=100.0, direction="above")
        objective = LogObjective(linear_statistic, query)
        region = Region([0.5, 0.5], [0.3, 0.3])
        assert objective.evaluate_region(region) == pytest.approx(objective(region.to_vector()))

    def test_invalid_vector_shapes_rejected(self):
        query = RegionQuery(threshold=1.0)
        objective = LogObjective(linear_statistic, query)
        with pytest.raises(ValidationError):
            objective(np.array([0.1, 0.2, 0.3]))
        with pytest.raises(ValidationError):
            objective.evaluate_batch(np.ones((2, 3)))


class TestRatioObjective:
    def test_matches_equation_two(self):
        query = RegionQuery(threshold=100.0, direction="above", size_penalty=2.0)
        objective = RatioObjective(linear_statistic, query)
        vector = np.array([0.5, 0.5, 0.3, 0.3])
        expected = (360.0 - 100.0) / (0.3 * 0.3) ** 2.0
        assert objective(vector) == pytest.approx(expected)

    def test_defined_but_negative_for_infeasible_regions(self):
        query = RegionQuery(threshold=100.0, direction="above", size_penalty=1.0)
        objective = RatioObjective(linear_statistic, query)
        tiny = np.array([0.5, 0.5, 0.01, 0.01])
        value = objective(tiny)
        assert np.isfinite(value)
        assert value < 0

    def test_batch_matches_scalar(self):
        query = RegionQuery(threshold=50.0, direction="above", size_penalty=2.0)
        objective = RatioObjective(linear_statistic, query, batch_linear_statistic)
        vectors = np.array([[0.5, 0.5, 0.3, 0.3], [0.5, 0.5, 0.05, 0.05]])
        np.testing.assert_allclose(
            objective.evaluate_batch(vectors), [objective(v) for v in vectors]
        )

    def test_batch_negative_half_lengths_warn_free(self):
        # Regression: the batch path exponentiated every row's volume before
        # masking, so negative half lengths under a fractional size penalty
        # raised "invalid value encountered in power" and produced transient
        # NaNs.  The volume term must only be computed on valid rows, like the
        # scalar path, which checks first.
        import warnings

        query = RegionQuery(threshold=50.0, direction="above", size_penalty=2.5)
        objective = RatioObjective(linear_statistic, query, batch_linear_statistic)
        vectors = np.array(
            [
                [0.5, 0.5, 0.3, 0.3],
                [0.5, 0.5, -0.1, 0.3],
                [0.5, 0.5, 0.2, -0.2],
            ]
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            values = objective.evaluate_batch(vectors)
        assert np.isfinite(values[0])
        assert values[1] == -np.inf
        assert values[2] == -np.inf
        assert not np.any(np.isnan(values))

    def test_batch_all_rows_invalid_returns_minus_inf(self):
        query = RegionQuery(threshold=50.0, direction="above", size_penalty=2.5)
        objective = RatioObjective(linear_statistic, query, batch_linear_statistic)
        vectors = np.array([[0.5, 0.5, -0.1, 0.3], [0.5, 0.5, 0.0, 0.3]])
        np.testing.assert_array_equal(objective.evaluate_batch(vectors), [-np.inf, -np.inf])


class TestFactory:
    def test_make_objective_log_and_ratio(self):
        query = RegionQuery(threshold=1.0)
        assert isinstance(make_objective("log", linear_statistic, query), LogObjective)
        assert isinstance(make_objective("ratio", linear_statistic, query), RatioObjective)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            make_objective("cubic", linear_statistic, RegionQuery(threshold=1.0))

    def test_non_callable_statistic_rejected(self):
        with pytest.raises(ValidationError):
            LogObjective("not-callable", RegionQuery(threshold=1.0))
