"""Integration tests that execute every example script end-to-end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def run_example(path: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=900,
        check=False,
    )


def test_examples_directory_has_expected_scripts():
    names = {path.name for path in EXAMPLE_SCRIPTS}
    assert {
        "quickstart.py",
        "crime_hotspots.py",
        "activity_regions.py",
        "classification_boundaries.py",
        "serving.py",
        "online.py",
        "backends.py",
    } <= names


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda path: path.name)
def test_example_runs_successfully(script):
    result = run_example(script)
    assert result.returncode == 0, f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_quickstart_reports_key_metrics():
    result = run_example(EXAMPLES_DIR / "quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "average IoU" in result.stdout
    assert "compliance" in result.stdout
    assert "proposed regions" in result.stdout
