"""Integration tests covering the full SuRF pipeline and method comparisons."""

import threading

import numpy as np
import pytest

from repro.baselines.naive import NaiveGridSearch
from repro.baselines.true_gso import TrueFunctionGSO
from repro.core.evaluation import average_iou, compliance_rate
from repro.core.finder import SuRF
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.real import ACTIVITY_CLASSES, activity_stand_region, make_activity_like, make_crimes_like
from repro.data.statistics import CountStatistic, RatioStatistic
from repro.data.synthetic import make_synthetic_dataset
from repro.ml.boosting import GradientBoostingRegressor
from repro.optim.gso import GSOParameters
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload


FAST_GSO = GSOParameters(num_particles=50, num_iterations=30, random_state=0)


def fast_surf(random_state=0, **kwargs):
    return SuRF(
        trainer=SurrogateTrainer(
            estimator=GradientBoostingRegressor(n_estimators=50, max_depth=4, random_state=random_state),
            random_state=random_state,
        ),
        gso_parameters=FAST_GSO,
        random_state=random_state,
        **kwargs,
    )


class TestDensityPipeline:
    def test_multimodal_density_mining(self):
        synthetic = make_synthetic_dataset(
            statistic="density", dim=1, num_regions=3, num_points=4_000, random_state=1
        )
        engine = DataEngine(synthetic.dataset, synthetic.statistic)
        finder = fast_surf().fit(
            generate_workload(engine, 800, random_state=0),
            data_sample=engine.dataset.sample(500, random_state=0).values,
        )
        query = RegionQuery(threshold=synthetic.suggested_threshold(), direction="above")
        result = finder.find_regions(query)
        iou = average_iou(result.all_feasible_regions(), synthetic.ground_truth_regions)
        assert result.optimization.feasible_fraction > 0.3
        assert iou > 0.15
        assert compliance_rate(result.proposals, engine, query) >= 0.5

    def test_surf_close_to_true_function_gso(self):
        """The paper's headline accuracy claim: SuRF ≈ f+GlowWorm."""
        synthetic = make_synthetic_dataset(
            statistic="density", dim=2, num_regions=1, num_points=4_000, random_state=2
        )
        engine = DataEngine(synthetic.dataset, synthetic.statistic)
        query = RegionQuery(threshold=synthetic.suggested_threshold(), direction="above")

        finder = fast_surf().fit(generate_workload(engine, 1_500, random_state=0))
        surf_result = finder.find_regions(query)
        surf_iou = average_iou(surf_result.all_feasible_regions(), synthetic.ground_truth_regions)

        baseline = TrueFunctionGSO(gso_parameters=FAST_GSO, random_state=0)
        baseline.find_regions(engine, query)
        from repro.data.regions import Region

        true_regions = [
            Region.from_vector(v) for v in baseline.last_result_.optimization.feasible_positions
        ]
        true_iou = average_iou(true_regions, synthetic.ground_truth_regions)

        assert surf_iou > 0.1
        assert surf_iou >= 0.4 * true_iou

    def test_surf_query_time_independent_of_data_size(self):
        """Table I's shape: SuRF query time does not grow with N (no data access)."""
        times = {}
        for num_points in (2_000, 8_000):
            synthetic = make_synthetic_dataset(
                statistic="density", dim=2, num_regions=1, num_points=num_points, random_state=3
            )
            engine = DataEngine(synthetic.dataset, synthetic.statistic)
            finder = fast_surf(use_density_guidance=False).fit(
                generate_workload(engine, 800, random_state=0)
            )
            query = RegionQuery(threshold=synthetic.suggested_threshold(), direction="above")
            result = finder.find_regions(query)
            times[num_points] = result.elapsed_seconds
        assert times[8_000] < 5 * times[2_000] + 0.5

    def test_naive_is_much_slower_per_evaluation_budget(self):
        synthetic = make_synthetic_dataset(
            statistic="density", dim=2, num_regions=1, num_points=3_000, random_state=4
        )
        engine = DataEngine(synthetic.dataset, synthetic.statistic)
        query = RegionQuery(threshold=synthetic.suggested_threshold(), direction="above")
        naive = NaiveGridSearch(num_centers=6, num_lengths=6, max_half_fraction=0.3)
        engine.reset_evaluation_counter()
        naive.find_regions(engine, query)
        naive_evaluations = engine.num_evaluations
        # The naive grid needs (6·6)^2 = 1296 exact evaluations; SuRF needs none at query time.
        assert naive_evaluations == 36**2


class TestAggregatePipeline:
    def test_aggregate_statistic_mining(self):
        synthetic = make_synthetic_dataset(
            statistic="aggregate", dim=1, num_regions=1, num_points=4_000, random_state=5
        )
        engine = DataEngine(synthetic.dataset, synthetic.statistic)
        finder = fast_surf(use_density_guidance=False).fit(generate_workload(engine, 800, random_state=0))
        query = RegionQuery(threshold=synthetic.suggested_threshold(), direction="above")
        result = finder.find_regions(query)
        assert result.optimization.feasible_fraction > 0.1
        assert compliance_rate(result.proposals, engine, query) > 0.5


class TestOnlineServingConcurrency:
    def test_batch_serving_racing_refresh_never_sees_a_half_swapped_model(self):
        """Stress loop: refreshes hot-swap models while batches are in flight.

        Every response must be *internally consistent*: all of its proposals
        carry predictions from ONE model generation — never a mix of the
        pre- and post-refresh surrogate.  The service guarantees this by
        swapping the finder by reference (each run captures one snapshot)
        instead of mutating fitted attributes in place.
        """
        from repro.online import QueryLog
        from repro.serve.service import SuRFService

        synthetic = make_synthetic_dataset(
            statistic="density", dim=2, num_regions=1, num_points=3_000, random_state=21
        )
        engine = DataEngine(synthetic.dataset, synthetic.statistic)
        finder = fast_surf(use_density_guidance=False).fit(
            generate_workload(engine, 500, random_state=0)
        )
        service = SuRFService(finder, cache_size=0, query_log=QueryLog(capacity=50_000))
        query = RegionQuery(threshold=synthetic.suggested_threshold(), direction="above")
        variant = RegionQuery(threshold=query.threshold * 0.9, direction="above")

        # Every surrogate generation ever served, appended before it goes live.
        surrogates = [finder.surrogate_]
        surrogates_lock = threading.Lock()
        stop = threading.Event()
        errors = []
        checked = [0]

        def consistent_with_one_generation(response) -> bool:
            if not response.proposals:
                return True
            # The list is appended after a swap goes live, so a response from a
            # brand-new generation may beat the bookkeeping by a moment; retry
            # briefly and always include the currently-live surrogate.
            import time as time_module

            for _ in range(50):
                with surrogates_lock:
                    candidates = list(surrogates)
                candidates.append(service.finder.surrogate_)
                for surrogate in candidates:
                    if all(
                        proposal.predicted_value
                        == surrogate.predict_vector(proposal.region.to_vector())
                        for proposal in response.proposals
                    ):
                        return True
                time_module.sleep(0.05)
            return False

        def hammer():
            try:
                while not stop.is_set():
                    for response in service.find_regions_batch([query, variant, query]):
                        if response.status == "rejected":
                            continue
                        assert consistent_with_one_generation(response), (
                            "response mixes model generations"
                        )
                        checked[0] += 1
            except BaseException as error:  # noqa: BLE001 - surfaced after join
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for round_index in range(4):
                fresh = generate_workload(engine, 60, random_state=100 + round_index)
                service.observe_many(list(fresh))
                outcome = service.refresh()
                assert outcome.mode in ("incremental", "full")
                with surrogates_lock:
                    surrogates.append(service.finder.surrogate_)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=60.0)

        assert not errors, errors
        assert not any(thread.is_alive() for thread in threads)
        assert service.generation == 4
        assert checked[0] > 0

    def test_registry_refresh_all_racing_mixed_tenant_bursts(self):
        """Fleet-wide hot swaps racing mixed-tenant batches stay coherent.

        While ``ModelRegistry.refresh_all`` bumps every tenant's generation,
        concurrent ``find_batch`` bursts mixing both tenants must only ever
        return responses whose generation was live at some point during the
        burst: for each response, ``generation`` falls between the tenant's
        generation sampled before the burst started and the one sampled after
        it returned — a response can never come from a generation that was
        already retired before the burst, nor from one that did not exist yet
        when it finished.
        """
        from repro.api import FindRequest, ModelRegistry
        from repro.online import QueryLog

        synthetic = make_synthetic_dataset(
            statistic="density", dim=2, num_regions=1, num_points=3_000, random_state=33
        )
        engine = DataEngine(synthetic.dataset, synthetic.statistic)
        workload = generate_workload(engine, 500, random_state=0)
        finder_a = fast_surf(use_density_guidance=False).fit(workload)
        finder_b = fast_surf(random_state=1, use_density_guidance=False).fit(workload)

        registry = ModelRegistry()
        # One cache-less tenant (every burst really runs GSO mid-swap) and one
        # cached tenant (cached responses must respect generations too).
        registry.register(
            "alpha", finder_a, cache_size=0, query_log=QueryLog(capacity=50_000)
        )
        registry.register(
            "beta", finder_b, cache_size=64, query_log=QueryLog(capacity=50_000)
        )
        threshold = synthetic.suggested_threshold()
        stop = threading.Event()
        errors = []
        checked = [0]

        def hammer(seed: int) -> None:
            try:
                step = 0
                while not stop.is_set():
                    step += 1
                    requests = [
                        FindRequest(
                            threshold=threshold * (0.90 + 0.05 * (step % 3)),
                            model="alpha",
                        ),
                        FindRequest(
                            threshold=threshold * (0.95 + 0.02 * (seed % 3)),
                            model="beta",
                        ),
                        FindRequest(threshold=threshold, model="alpha"),
                    ]
                    before = {
                        name: registry.get(name).generation for name in ("alpha", "beta")
                    }
                    responses = registry.find_batch(requests)
                    after = {
                        name: registry.get(name).generation for name in ("alpha", "beta")
                    }
                    for request, response in zip(requests, responses):
                        assert (
                            before[request.model]
                            <= response.generation
                            <= after[request.model]
                        ), (
                            f"response generation {response.generation} was never "
                            f"live during the burst "
                            f"[{before[request.model]}, {after[request.model]}]"
                        )
                        checked[0] += 1
            except BaseException as error:  # noqa: BLE001 - surfaced after join
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(3)]
        for thread in threads:
            thread.start()
        try:
            for round_index in range(3):
                fresh = generate_workload(engine, 60, random_state=200 + round_index)
                registry.get("alpha").observe_many(list(fresh))
                registry.get("beta").observe_many(list(fresh))
                outcomes = registry.refresh_all()
                assert set(outcomes) == {"alpha", "beta"}
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=60.0)

        assert not errors, errors
        assert not any(thread.is_alive() for thread in threads)
        assert registry.get("alpha").generation == 3
        assert registry.get("beta").generation == 3
        assert checked[0] > 0


class TestRealDataPipelines:
    def test_crimes_like_q3_query_is_compliant(self):
        crimes = make_crimes_like(num_points=8_000, random_state=0)
        engine = DataEngine(crimes, CountStatistic())
        threshold = float(np.quantile(engine.statistic_sample(100, random_state=0), 0.75))
        finder = fast_surf().fit(
            generate_workload(engine, 800, random_state=0),
            data_sample=crimes.sample(800, random_state=0).values,
        )
        query = RegionQuery(threshold=threshold, direction="above")
        result = finder.find_regions(query)
        assert result.num_regions >= 1
        # The paper reports 100 % compliance on Crimes; allow a small slack here.
        assert compliance_rate(result.proposals, engine, query) >= 0.6

    def test_activity_ratio_query(self):
        activity = make_activity_like(num_points=6_000, random_state=1)
        statistic = RatioStatistic("activity", positive_value=ACTIVITY_CLASSES["stand"])
        engine = DataEngine(activity, statistic)
        finder = fast_surf(use_density_guidance=False).fit(generate_workload(engine, 900, random_state=0))
        query = RegionQuery(threshold=0.3, direction="above", size_penalty=2.0)
        result = finder.find_regions(query)
        if result.proposals:
            best = result.best()
            # Proposed high-ratio regions should sit near the planted "stand" cluster.
            assert best.region.intersects(activity_stand_region())
