"""Integration tests for the experiment runners (one per paper table/figure).

These run every experiment at a deliberately tiny scale and check the
*structure* of the output plus the coarse qualitative claims (e.g. SuRF is not
slower than data-driven baselines at the largest setting measured).  The
benchmark harness reuses the same runners at larger scales.
"""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    fig1_particles,
    fig3_accuracy,
    fig4_aggregates,
    fig5_crimes,
    fig6_training,
    fig7_objectives,
    fig8_c_sensitivity,
    fig9_convergence,
    fig10_gso_cost,
    fig11_surrogate_quality,
    fig12_model_complexity,
    table1_scalability,
)
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.reporting import format_table, summarize_rows

TINY = ExperimentScale(
    name="tiny",
    num_points=1_500,
    workload_size=250,
    num_particles=30,
    num_iterations=20,
    naive_max_candidates=300,
    time_budget_seconds=2.0,
)


class TestRegistryAndReporting:
    def test_registry_covers_every_table_and_figure(self):
        expected = {"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "table1"}
        assert set(EXPERIMENTS) == expected

    def test_every_registered_experiment_has_a_run_callable(self):
        for module in EXPERIMENTS.values():
            assert callable(getattr(module, "run"))

    def test_get_scale_by_name_and_passthrough(self):
        assert get_scale("small").name == "small"
        assert get_scale(TINY) is TINY
        with pytest.raises(Exception):
            get_scale("gigantic")

    def test_format_table_renders_all_columns(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "a" in text and "b" in text
        assert len(text.splitlines()) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_summarize_rows_groups_and_averages(self):
        rows = [
            {"method": "SuRF", "iou": 0.5},
            {"method": "SuRF", "iou": 0.7},
            {"method": "Naive", "iou": 0.2},
        ]
        summary = summarize_rows(rows, group_by=("method",), value="iou")
        surf = next(entry for entry in summary if entry["method"] == "SuRF")
        assert surf["mean_iou"] == pytest.approx(0.6)
        assert surf["count"] == 2


class TestFigure1:
    def test_outputs_and_compliance(self):
        outcome = fig1_particles.run(scale=TINY, random_state=3)
        assert outcome["num_particles"] == TINY.num_particles
        assert 0.0 <= outcome["surrogate_feasible_fraction"] <= 1.0
        assert 0.0 <= outcome["true_satisfied_fraction"] <= 1.0
        assert outcome["final_positions"].shape == outcome["initial_positions"].shape


class TestFigure3And4:
    @pytest.fixture(scope="class")
    def fig3_rows(self):
        return fig3_accuracy.run(
            scale=TINY,
            dims=(1, 2),
            region_counts=(1,),
            statistics=("density",),
            methods=("SuRF", "Naive", "PRIM", "f+GlowWorm"),
            random_state=2,
        )

    def test_row_structure(self, fig3_rows):
        assert len(fig3_rows) == 2 * 1 * 1 * 4
        for row in fig3_rows:
            assert set(row) >= {"statistic", "dim", "k", "method", "iou", "seconds"}
            assert 0.0 <= row["iou"] <= 1.0

    def test_gso_methods_beat_prim_on_density(self, fig3_rows):
        """PRIM cannot target the density statistic — the paper's Fig. 3 observation."""
        by_method = summarize_rows(fig3_rows, group_by=("method",), value="iou")
        prim = next(entry for entry in by_method if entry["method"] == "PRIM")
        surf = next(entry for entry in by_method if entry["method"] == "SuRF")
        assert surf["mean_iou"] >= prim["mean_iou"]

    def test_fig4_aggregations(self, fig3_rows):
        outcome = fig4_aggregates.run(rows=fig3_rows)
        assert {entry["method"] for entry in outcome["by_regions"]} == {"SuRF", "Naive", "PRIM", "f+GlowWorm"}
        assert all("mean_iou" in entry for entry in outcome["by_statistic"])


class TestFigure5:
    def test_crimes_compliance(self):
        outcome = fig5_crimes.run(scale=TINY, random_state=1)
        assert outcome["num_proposals"] >= 1
        assert 0.0 <= outcome["compliance"] <= 1.0
        assert outcome["threshold"] > 0


class TestFigure6:
    def test_hypertuning_costs_more(self):
        rows = fig6_training.run(scale=TINY, workload_sizes=(100, 200), random_state=0)
        assert len(rows) == 4
        for size in (100, 200):
            plain = next(r for r in rows if r["workload_size"] == size and not r["hypertuned"])
            tuned = next(r for r in rows if r["workload_size"] == size and r["hypertuned"])
            assert tuned["training_seconds"] > plain["training_seconds"]


class TestFigure7:
    def test_log_objective_rejects_infeasible_area(self):
        rows = fig7_objectives.run(scale=TINY, c_values=(1.0, 4.0), num_centers=20, num_lengths=15)
        log_rows = [row for row in rows if row["objective"] == "log"]
        ratio_rows = [row for row in rows if row["objective"] == "ratio"]
        # Eq. 4 leaves part of the grid undefined; Eq. 2 is defined everywhere.
        assert all(row["defined_fraction"] < 1.0 for row in log_rows)
        assert all(row["defined_fraction"] == pytest.approx(1.0) for row in ratio_rows)


class TestFigure8:
    def test_viable_fraction_shrinks_with_c(self):
        rows = fig8_c_sensitivity.run(scale=TINY, c_values=(0.25, 2.0), num_solutions=400, random_state=3)
        assert len(rows) == 2
        low_c = next(row for row in rows if row["c"] == 0.25)
        high_c = next(row for row in rows if row["c"] == 2.0)
        assert high_c["viable_fraction"] <= low_c["viable_fraction"] + 0.05


class TestFigure9And10:
    def test_convergence_rows(self):
        rows = fig9_convergence.run(scale=TINY, dims=(1, 2), region_counts=(1,), random_state=4)
        assert len(rows) == 2
        for row in rows:
            assert row["iterations"] <= TINY.num_iterations
            assert len(row["mean_objective_history"]) == row["iterations"]
        assert np.isfinite(fig9_convergence.average_iterations(rows))

    def test_gso_cost_grows_with_budget(self):
        rows = fig10_gso_cost.run(
            scale=TINY, dims=(1,), particle_counts=(20, 60), iteration_counts=(10, 40), random_state=5
        )
        particle_rows = [row for row in rows if row["sweep"] == "particles"]
        small = next(r for r in particle_rows if r["num_particles"] == 20)
        large = next(r for r in particle_rows if r["num_particles"] == 60)
        assert large["seconds"] > small["seconds"]


class TestFigure11And12:
    def test_learning_curves_improve_with_data(self):
        rows = fig11_surrogate_quality.run_learning_curves(
            scale=TINY, dims=(2,), workload_sizes=(80, 400), random_state=6
        )
        small = next(r for r in rows if r["workload_size"] == 80)
        large = next(r for r in rows if r["workload_size"] == 400)
        assert large["rmse"] <= small["rmse"] * 1.2

    def test_correlation_output_structure(self):
        outcome = fig11_surrogate_quality.run_correlation(
            scale=TINY, workload_sizes=(100, 300), max_depths=(2, 5), random_state=7
        )
        assert len(outcome["rows"]) == 4
        assert -1.0 <= outcome["pearson_correlation"] <= 1.0

    def test_model_complexity_reduces_training_error(self):
        rows = fig12_model_complexity.run(scale=TINY, max_depths=(1, 6), random_state=8)
        shallow = next(r for r in rows if r["max_depth"] == 1)
        deep = next(r for r in rows if r["max_depth"] == 6)
        assert deep["train_rmse"] <= shallow["train_rmse"]


class TestTable1:
    def test_scalability_rows_and_surf_flatness(self):
        rows = table1_scalability.run(
            scale=TINY, data_sizes=(1_500, 12_000), dims=(1, 2), methods=("SuRF", "Naive", "f+GlowWorm"), random_state=9
        )
        assert len(rows) == 2 * 2 * 3
        surf_rows = [row for row in rows if row["method"] == "SuRF"]
        fgw_rows = [row for row in rows if row["method"] == "f+GlowWorm"]
        # SuRF's query time must not grow with N the way f+GlowWorm's does.
        surf_growth = max(r["seconds"] for r in surf_rows) / max(min(r["seconds"] for r in surf_rows), 1e-9)
        assert surf_growth < 25
        # f+GlowWorm touches the data on every evaluation, so its cost grows with N.
        smallest = min(row["num_points"] for row in rows)
        largest = max(row["num_points"] for row in rows)
        for dim in {row["dim"] for row in fgw_rows}:
            small_time = next(
                r["seconds"] for r in fgw_rows if r["dim"] == dim and r["num_points"] == smallest
            )
            large_time = next(
                r["seconds"] for r in fgw_rows if r["dim"] == dim and r["num_points"] == largest
            )
            assert large_time > small_time
        assert all(0.0 <= row["fraction_done"] <= 1.0 for row in rows)

    def test_speedup_summary(self):
        rows = [
            {"method": "SuRF", "dim": 2, "num_points": 100, "seconds": 1.0, "fraction_done": 1.0},
            {"method": "Naive", "dim": 2, "num_points": 100, "seconds": 10.0, "fraction_done": 1.0},
        ]
        summary = table1_scalability.speedup_summary(rows)
        assert summary[0]["speedup_of_surf"] == pytest.approx(10.0)
