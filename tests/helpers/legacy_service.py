"""FROZEN copy of the PR 4 ``repro.serve.service`` monolith (reference only).

This file is the serving layer exactly as it existed before the PR 5 API
redesign decomposed it into the :mod:`repro.api` middleware kernel.  It is
kept verbatim (classes renamed ``Legacy*``) so that

* ``tests/property/test_property_api.py`` can assert the new kernel and the
  ``SuRFService`` compat shim return **bit-identical** results to the PR 4
  service on seeded query bursts, and
* ``benchmarks/test_bench_api.py`` can bound the middleware chain's cached-hit
  overhead against the monolith's hard-wired path.

Do not fix bugs or add features here — it is a measurement baseline, not a
serving implementation.  Original module docstring follows.
"""

from __future__ import annotations

import copy
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.finder import RegionSearchResult, SuRF
from repro.core.query import RegionQuery, SolutionSpace
from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import canonical_float


@dataclass
class LegacyServiceStats:
    """Counters of everything the service did since construction (or ``reset``).

    ``cache_misses`` counts queries that needed a result not in the cache when
    they arrived; of those, ``coalesced`` were answered by sharing an identical
    in-flight run inside the same batch, so ``gso_runs`` — actual optimiser
    executions — equals ``cache_misses - coalesced``.  ``harvested`` counts
    exact evaluations recorded into the query log through this service — both
    ground-truthed proposals (``exact_engine``) and externally observed pairs
    (``observe``/``observe_many``); ``refreshes`` counts how many times a
    refresh actually swapped in new models.
    """

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    coalesced: int = 0
    rejected: int = 0
    gso_runs: int = 0
    harvested: int = 0
    refreshes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of queries answered from the cache (0.0 before any query)."""
        return self.cache_hits / self.queries if self.queries else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for logs and benchmark tables."""
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "gso_runs": self.gso_runs,
            "harvested": self.harvested,
            "refreshes": self.refreshes,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class LegacyServiceResponse:
    """One answered query.

    Attributes
    ----------
    query:
        The normalised query that was served.
    status:
        ``"served"`` (a fresh GSO run — possibly shared with identical queries
        of the same batch), ``"cached"`` (answered from the LRU cache) or
        ``"rejected"`` (Eq. 5 satisfiability at or below the service's gate;
        no optimiser run).
    satisfiability:
        The Eq. 5 probability estimated for the query.
    result:
        The full :class:`~repro.core.finder.RegionSearchResult`, or ``None``
        when the query was rejected.
    elapsed_seconds:
        Wall-clock time the service spent producing this response (for a
        coalesced batch member, the shared run's time).
    """

    query: RegionQuery
    status: str
    satisfiability: float
    result: Optional[RegionSearchResult]
    elapsed_seconds: float

    @property
    def proposals(self) -> List:
        """The proposed regions (empty for rejected queries)."""
        return self.result.proposals if self.result is not None else []


class LegacySuRFService:
    """Serving front-end over one fitted :class:`~repro.core.finder.SuRF`.

    Parameters
    ----------
    finder:
        A fitted finder; typically ``SuRF.load(bundle_path)``.
    cache_size:
        Maximum number of query results kept in the LRU cache (0 disables
        caching; duplicate queries inside one batch are still coalesced).
    min_satisfiability:
        Queries whose Eq. 5 probability is **at or below** this value are
        rejected without running the optimiser.  The default 0.0 rejects
        exactly the thresholds that no past evaluation ever satisfied.
    max_proposals:
        Forwarded to every ``find_regions`` call.
    max_workers:
        Default thread-pool width for :meth:`find_regions_batch` (``None``
        picks ``min(num distinct queries, cpu count)`` per batch).
    query_log:
        A :class:`~repro.online.QueryLog` that collects exact evaluations for
        the online learning loop.  Without one, :meth:`observe` and
        :meth:`refresh` refuse to run and the service behaves exactly like the
        offline-only front-end.
    incremental_trainer:
        The :class:`~repro.online.IncrementalTrainer` that :meth:`refresh`
        folds logged pairs with.  Lazily built from the finder's stored
        workload on the first refresh when omitted.
    exact_engine:
        Optional ground-truth back-end (:class:`~repro.data.engine.DataEngine`).
        When both it and ``query_log`` are set, every fresh GSO run's proposed
        regions are evaluated *exactly* and the resulting ``([x, l], y)``
        pairs harvested into the log — the serve→learn loop the paper's
        "pairs harvested from the query log" implies.  The engine may run on
        any :mod:`repro.backends` backend — ground-truthing against
        out-of-core or SQL-resident data is exactly the workload those
        backends exist for; every backend is thread-safe under the service's
        worker pool (the sharded backend additionally fans each evaluation
        out over its own shard pool).  This is the one
        deliberate exception to "no data access at query time": it is opt-in,
        feeds only the log (responses still report surrogate predictions), and
        it runs synchronously inside the GSO run, so every *cold* response
        additionally pays one exact batch evaluation of its proposals —
        deployments that cannot afford that (or have no reachable back-end)
        leave it unset and push externally observed pairs via :meth:`observe`
        instead.
    """

    def __init__(
        self,
        finder: SuRF,
        cache_size: int = 128,
        min_satisfiability: float = 0.0,
        max_proposals: Optional[int] = None,
        max_workers: Optional[int] = None,
        query_log=None,
        incremental_trainer=None,
        exact_engine=None,
    ):
        if not isinstance(finder, SuRF):
            raise ValidationError(f"finder must be a SuRF instance, got {type(finder)!r}")
        if finder.surrogate_ is None or finder.solution_space_ is None:
            raise NotFittedError("SuRFService requires a fitted SuRF finder")
        if finder.satisfiability_ is None:
            raise NotFittedError("SuRFService requires a finder with a satisfiability model")
        if cache_size < 0:
            raise ValidationError(f"cache_size must be >= 0, got {cache_size}")
        if not 0.0 <= min_satisfiability < 1.0:
            raise ValidationError(
                f"min_satisfiability must be in [0, 1), got {min_satisfiability}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        if exact_engine is not None and query_log is None:
            raise ValidationError("exact_engine requires a query_log to harvest into")
        self._finder = finder
        self.cache_size = int(cache_size)
        self.min_satisfiability = float(min_satisfiability)
        self.max_proposals = max_proposals
        self.max_workers = max_workers
        self._query_log = query_log
        self._incremental_trainer = incremental_trainer
        self._exact_engine = exact_engine
        self._cache: "OrderedDict[RegionQuery, RegionSearchResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._refresh_lock = threading.Lock()
        self._stats = LegacyServiceStats()
        self._generation = 0
        self._log_cursor = 0

    @classmethod
    def from_bundle(cls, path, **kwargs) -> "LegacySuRFService":
        """Build a service straight from an artifact bundle on disk."""
        return cls(SuRF.load(path), **kwargs)

    @property
    def finder(self) -> SuRF:
        """The finder currently being served (a new object after each swap)."""
        return self._finder

    @property
    def query_log(self):
        """The wired :class:`~repro.online.QueryLog` (``None`` when offline-only)."""
        return self._query_log

    @property
    def generation(self) -> int:
        """How many model swaps this service has performed (0 = as constructed)."""
        with self._lock:
            return self._generation

    # ------------------------------------------------------------------ normalisation
    @staticmethod
    def normalize_query(query: RegionQuery) -> RegionQuery:
        """Canonical form of a query, used as the cache key.

        Numeric fields are coerced to plain Python floats and rounded to 12
        significant digits (:func:`repro.utils.validation.canonical_float`),
        so e.g. a ``numpy.float64`` threshold, its float twin and a value
        carrying relative noise below ~1e-13 all hit the same cache entry —
        thresholds arriving from different front-ends differ by exactly that
        kind of noise (serialisation round trips, ``float32`` upcasts,
        arithmetic order).  :class:`RegionQuery` re-validates on construction,
        and the rounding is idempotent, so normalising twice is a no-op.
        """
        if not isinstance(query, RegionQuery):
            raise ValidationError(f"expected a RegionQuery, got {type(query)!r}")
        return RegionQuery(
            threshold=canonical_float(query.threshold),
            direction=query.direction,
            size_penalty=canonical_float(query.size_penalty),
        )

    # ------------------------------------------------------------------ cache internals
    def _cache_get(self, key: RegionQuery) -> Optional[RegionSearchResult]:
        """LRU lookup; caller must hold the lock."""
        result = self._cache.get(key)
        if result is not None:
            self._cache.move_to_end(key)
        return result

    def _cache_put(self, key: RegionQuery, result: RegionSearchResult, generation: int) -> None:
        """LRU insert with eviction; caller must hold the lock.

        A result computed against a finder generation that has since been
        swapped out is dropped: caching it would resurrect the stale model's
        answers after the refresh already invalidated them.
        """
        if self.cache_size == 0 or generation != self._generation:
            return
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def clear_cache(self) -> None:
        """Drop every cached result (stats are kept)."""
        with self._lock:
            self._cache.clear()

    @property
    def cached_queries(self) -> int:
        """Number of results currently held in the cache."""
        with self._lock:
            return len(self._cache)

    @property
    def stats(self) -> ServiceStats:
        """A snapshot copy of the service counters."""
        with self._lock:
            return replace(self._stats)

    def reset_stats(self) -> None:
        """Zero all counters (the cache is untouched)."""
        with self._lock:
            self._stats = LegacyServiceStats()

    def _uses_shared_generator(self, finder: Optional[SuRF] = None) -> bool:
        """Whether the finder draws from a caller-owned live ``Generator``.

        ``random_state`` may be a live :class:`numpy.random.Generator`
        (:func:`repro.utils.rng.ensure_rng`); such a stream is shared, mutable
        and not thread-safe, so batch execution must fall back to one worker.
        """
        if finder is None:
            finder = self._finder
        parameters = finder.gso_parameters
        return isinstance(finder.random_state, np.random.Generator) or (
            parameters is not None and isinstance(parameters.random_state, np.random.Generator)
        )

    # ------------------------------------------------------------------ serving
    def _capture_and_classify(self, normalized: Sequence[RegionQuery]):
        """Snapshot one model generation and classify queries against it.

        Captures ``(finder, generation)`` atomically, probes Eq. 5 outside the
        lock, then re-verifies the generation before touching the cache: if a
        refresh swapped models mid-probe, the whole classification retries on
        the new model rather than pairing an old-generation probability with a
        new-generation cached result (or vice versa).  Every probability,
        cache hit and pending GSO run returned here therefore belongs to one
        single generation.

        Returns ``(finder, generation, probabilities, statuses, results,
        pending)`` where ``pending`` maps each distinct uncached query to the
        indices that asked for it (the coalescing map).
        """
        statuses: List[str] = [""] * len(normalized)
        results: List[Optional[RegionSearchResult]] = [None] * len(normalized)
        pending: "OrderedDict[RegionQuery, List[int]]" = OrderedDict()
        while True:
            with self._lock:
                finder = self._finder
                generation = self._generation
            probabilities = [finder.satisfiability(query) for query in normalized]
            with self._lock:
                if self._generation != generation:
                    continue  # a refresh landed mid-probe; retry on the new model
                for index, (query, probability) in enumerate(zip(normalized, probabilities)):
                    self._stats.queries += 1
                    if probability <= self.min_satisfiability:
                        self._stats.rejected += 1
                        statuses[index] = "rejected"
                        continue
                    cached = self._cache_get(query)
                    if cached is not None:
                        self._stats.cache_hits += 1
                        statuses[index] = "cached"
                        results[index] = cached
                        continue
                    self._stats.cache_misses += 1
                    statuses[index] = "served"
                    if query in pending:
                        self._stats.coalesced += 1
                    pending.setdefault(query, []).append(index)
                return finder, generation, probabilities, statuses, results, pending

    def _run_query(self, finder: SuRF, query: RegionQuery) -> RegionSearchResult:
        """One real GSO run (the only code path that invokes the optimiser).

        Runs against the finder snapshot the caller captured, so a refresh
        swapping ``self._finder`` mid-run cannot mix model generations inside
        one result.  When an exact back-end is wired, the run's proposals are
        ground-truthed and harvested into the query log.
        """
        result = finder.find_regions(query, max_proposals=self.max_proposals)
        harvested = 0
        if self._exact_engine is not None and self._query_log is not None and result.proposals:
            from repro.surrogate.workload import RegionEvaluation

            regions = [proposal.region for proposal in result.proposals]
            values = np.asarray(self._exact_engine.evaluate_many(regions), dtype=np.float64)
            finite = np.isfinite(values)
            self._query_log.record_many(
                [
                    RegionEvaluation(region, float(value))
                    for region, value, keep in zip(regions, values, finite)
                    if keep
                ]
            )
            harvested = int(finite.sum())
        with self._lock:
            self._stats.gso_runs += 1
            self._stats.harvested += harvested
        return result

    def find_regions(self, query: RegionQuery) -> ServiceResponse:
        """Serve a single query: gate on Eq. 5, then cache, then GSO.

        Concurrent callers racing on the *same* uncached query may each run the
        optimiser (the results are identical); use :meth:`find_regions_batch`
        to coalesce known-duplicate requests.
        """
        start = time.perf_counter()
        query = self.normalize_query(query)
        finder, generation, probabilities, statuses, results, _ = self._capture_and_classify(
            [query]
        )
        probability, status, result = probabilities[0], statuses[0], results[0]
        if status == "served":
            result = self._run_query(finder, query)
            with self._lock:
                self._cache_put(query, result, generation)
        return LegacyServiceResponse(
            query=query,
            status=status,
            satisfiability=probability,
            result=result,
            elapsed_seconds=time.perf_counter() - start,
        )

    def find_regions_batch(
        self,
        queries: Sequence[RegionQuery],
        max_workers: Optional[int] = None,
    ) -> List[ServiceResponse]:
        """Serve many queries at once, sharing work across them.

        Every query is normalised and classified under one lock acquisition:
        rejected (Eq. 5), answered from cache, or a miss.  Identical misses are
        coalesced — each distinct query runs GSO exactly once and all of its
        duplicates share the result — and the distinct runs execute on a
        thread pool.  Responses come back in input order and are bit-identical
        to what sequential :meth:`find_regions` calls would have produced,
        because each run's RNG stream depends only on the finder's seed.  A
        finder seeded with a live ``Generator`` instead of an integer falls
        back to one worker (the stream is shared, mutable and not
        thread-safe).  The whole batch runs against the one finder generation
        captured at entry, even if a refresh lands mid-batch.
        """
        start = time.perf_counter()
        normalized = [self.normalize_query(query) for query in queries]
        finder, generation, probabilities, statuses, results, pending = (
            self._capture_and_classify(normalized)
        )
        elapsed: List[float] = [0.0] * len(normalized)
        # Rejected/cached responses cost one classification-loop share each,
        # not the whole loop's wall clock.
        per_query_seconds = (time.perf_counter() - start) / max(len(normalized), 1)
        for index, status in enumerate(statuses):
            if status in ("rejected", "cached"):
                elapsed[index] = per_query_seconds

        if pending:
            distinct = list(pending.items())
            workers = max_workers if max_workers is not None else self.max_workers
            if workers is None:
                workers = min(len(distinct), os.cpu_count() or 1)
            if self._uses_shared_generator(finder):
                # A shared live Generator is mutated by every run and is not
                # thread-safe; concurrent draws could corrupt its state.
                workers = 1

            def run_timed(item: Tuple[RegionQuery, List[int]]):
                run_start = time.perf_counter()
                result = self._run_query(finder, item[0])
                return result, time.perf_counter() - run_start

            if workers <= 1 or len(distinct) == 1:
                outcomes = [run_timed(item) for item in distinct]
            else:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    outcomes = list(pool.map(run_timed, distinct))
            with self._lock:
                for (query, indices), (result, seconds) in zip(distinct, outcomes):
                    self._cache_put(query, result, generation)
                    for index in indices:
                        results[index] = result
                        elapsed[index] = seconds

        return [
            LegacyServiceResponse(
                query=query,
                status=status,
                satisfiability=probability,
                result=result,
                elapsed_seconds=seconds,
            )
            for query, status, probability, result, seconds in zip(
                normalized, statuses, probabilities, results, elapsed
            )
        ]

    # ------------------------------------------------------------------ online learning
    def _require_log(self):
        if self._query_log is None:
            raise ValidationError(
                "this service has no query log; construct it with query_log=QueryLog(...)"
            )
        return self._query_log

    def observe(self, region, value: float) -> None:
        """Record one externally observed exact evaluation into the query log."""
        self._require_log().record(region, value)
        with self._lock:
            self._stats.harvested += 1

    def observe_many(self, evaluations) -> None:
        """Record a batch of externally observed exact evaluations."""
        evaluations = list(evaluations)
        self._require_log().record_many(evaluations)
        with self._lock:
            self._stats.harvested += len(evaluations)

    @property
    def pending_log_entries(self) -> int:
        """Logged pairs not yet folded into the surrogate by a refresh."""
        if self._query_log is None:
            return 0
        with self._lock:
            cursor = self._log_cursor
        return max(0, self._query_log.total_recorded - cursor)

    def _ensure_incremental_trainer(self):
        if self._incremental_trainer is None:
            from repro.online.trainer import IncrementalTrainer

            self._incremental_trainer = IncrementalTrainer.from_finder(self._finder)
        return self._incremental_trainer

    def refresh(self, force_full: bool = False):
        """Fold freshly logged pairs into the surrogate and hot-swap the models.

        Drains the query log past the service's consumption cursor, hands the
        new pairs to the :class:`~repro.online.IncrementalTrainer` (warm-start
        rounds, or a full refit when drift was detected or ``force_full``),
        rebuilds the Eq. 5 satisfiability model from the enlarged sample, and
        atomically installs a **new finder object** carrying the refreshed
        state: one pointer swap, a cache clear and a generation bump under the
        service lock.  In-flight queries complete against the generation they
        started with; their results are not cached.

        With zero new pairs this is a strict no-op — nothing is swapped, the
        cache survives, and serving stays bit-identical.  Returns the
        :class:`~repro.online.RefreshOutcome`.  Concurrent refreshes are
        serialised on a dedicated lock so training never runs twice over the
        same pairs.
        """
        self._require_log()
        with self._refresh_lock:
            trainer = self._ensure_incremental_trainer()
            with self._lock:
                cursor = self._log_cursor
            new_pairs, new_cursor = self._query_log.since(cursor)
            outcome = trainer.refresh(new_pairs, force_full=force_full)
            if outcome.mode == "noop":
                with self._lock:
                    self._log_cursor = new_cursor
                return outcome

            refreshed = self._swapped_finder(trainer)
            with self._lock:
                self._finder = refreshed
                self._generation += 1
                self._log_cursor = new_cursor
                self._cache.clear()
                self._stats.refreshes += 1
            return outcome

    def _swapped_finder(self, trainer) -> SuRF:
        """A new finder carrying the trainer's refreshed state.

        A shallow copy shares the immutable configuration (objective kind,
        GSO parameters, density model — the KDE describes the raw data, which
        the log cannot refresh) while the learned state is replaced wholesale.
        The solution space is re-inferred from the enlarged workload so the
        swarm can follow evaluations that drift beyond the original bounding
        box.
        """
        workload = trainer.workload
        refreshed = copy.copy(self._finder)
        refreshed.surrogate_ = trainer.surrogate
        refreshed.satisfiability_ = trainer.satisfiability
        refreshed.workload_features_ = workload.features
        refreshed.workload_targets_ = workload.targets
        refreshed.workload_size_ = len(workload)
        refreshed.solution_space_ = SolutionSpace.from_workload_features(
            workload.features,
            min_half_fraction=refreshed.min_half_fraction,
            max_half_fraction=refreshed.max_half_fraction,
        )
        return refreshed
