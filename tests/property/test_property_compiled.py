"""Property-based equivalence: compiled predictions are bit-identical to recursive.

Hypothesis drives random datasets *and* random hyper-parameters through every
compilable family; each example asserts exact ``np.array_equal`` equality —
the compiled kernel owes the recursive path bit-identity, not tolerance.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.compiled import CompiledPredictor
from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor

finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def regression_data(draw, min_rows=12, max_rows=60, max_cols=3):
    num_rows = draw(st.integers(min_rows, max_rows))
    num_cols = draw(st.integers(1, max_cols))
    features = draw(hnp.arrays(np.float64, (num_rows, num_cols), elements=finite_floats))
    targets = draw(hnp.arrays(np.float64, (num_rows,), elements=finite_floats))
    return features, targets


def assert_equal_predictions(estimator, features):
    recursive = estimator.predict(features)
    compiled = CompiledPredictor(estimator).predict(features)
    np.testing.assert_array_equal(recursive, compiled)


@given(regression_data(), st.integers(0, 8), st.integers(1, 4), st.integers(4, 32))
def test_tree_compiled_equals_recursive(data, max_depth, min_samples_leaf, max_bins):
    features, targets = data
    tree = DecisionTreeRegressor(
        max_depth=max_depth, min_samples_leaf=min_samples_leaf, max_bins=max_bins
    ).fit(features, targets)
    assert_equal_predictions(tree, features)


@given(regression_data(min_rows=15), st.integers(1, 8), st.integers(1, 5), st.integers(0, 2**31 - 1))
def test_forest_compiled_equals_recursive(data, n_estimators, max_depth, seed):
    features, targets = data
    forest = RandomForestRegressor(
        n_estimators=n_estimators, max_depth=max_depth, random_state=seed
    ).fit(features, targets)
    assert_equal_predictions(forest, features)


@given(
    regression_data(min_rows=15),
    st.integers(1, 15),
    st.integers(1, 4),
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=0.0, max_value=5.0),
)
@settings(max_examples=30)
def test_boosting_compiled_equals_recursive(data, n_estimators, max_depth, learning_rate, reg_lambda):
    features, targets = data
    model = GradientBoostingRegressor(
        n_estimators=n_estimators,
        max_depth=max_depth,
        learning_rate=learning_rate,
        reg_lambda=reg_lambda,
        random_state=0,
    ).fit(features, targets)
    assert_equal_predictions(model, features)


@given(regression_data(min_rows=20), st.integers(1, 6), st.lists(st.integers(1, 5), min_size=1, max_size=3))
@settings(max_examples=20)
def test_boosting_equivalence_survives_warm_start_rounds(data, n_estimators, extra_rounds_seq):
    # Every warm-start continuation appends trees to the live ensemble; the
    # compiled cache must be rebuilt each round and stay bit-identical.
    features, targets = data
    model = GradientBoostingRegressor(
        n_estimators=n_estimators, max_depth=3, warm_start=True, random_state=0
    ).fit(features, targets)
    assert_equal_predictions(model, features)
    total = n_estimators
    for extra in extra_rounds_seq:
        total += extra
        model.set_params(n_estimators=total).fit(features, targets)
        assert model.num_trees_ == total
        assert_equal_predictions(model, features)


@given(regression_data(), st.integers(1, 100))
@settings(max_examples=20)
def test_query_batch_disjoint_from_training_rows(data, num_queries):
    # Equivalence must hold off the training manifold too, including between
    # (and exactly on) fitted thresholds.
    features, targets = data
    model = GradientBoostingRegressor(n_estimators=5, max_depth=3, random_state=0).fit(
        features, targets
    )
    span = np.linspace(features.min() - 1.0, features.max() + 1.0, num_queries)
    queries = np.repeat(span[:, None], features.shape[1], axis=1)
    assert_equal_predictions(model, queries)
