"""Property-based equivalence suite for the pluggable data backends.

The contract under test is the acceptance criterion of the backend subsystem:
on arbitrary (finite) datasets and arbitrary regions — including empty
regions and regions straddling shard boundaries — **all four backends return
bit-identical statistics and masks**.  The in-memory :class:`NumpyBackend`
(itself the extracted pre-refactor ``DataEngine`` scan code) serves as the
reference; chunked, SQLite and sharded backends must agree with it exactly,
as must the indexed NumPy variant.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import ChunkedBackend, NumpyBackend, ShardedBackend, SQLiteBackend
from repro.data.index import GridIndex
from repro.data.statistics import (
    AverageStatistic,
    CountStatistic,
    MedianStatistic,
    RatioStatistic,
    SumStatistic,
    VarianceStatistic,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)


@st.composite
def dataset_and_regions(draw):
    """A small random dataset plus region corners covering the tricky cases.

    Regions are built from two draws per dimension (sorted into lower/upper),
    so they may be empty, degenerate-thin, or cover everything; with few rows
    per shard, shard-boundary straddling happens constantly.
    """
    num_rows = draw(st.integers(min_value=1, max_value=40))
    dim = draw(st.integers(min_value=1, max_value=3))
    region = np.asarray(
        draw(
            st.lists(
                st.lists(finite, min_size=dim, max_size=dim),
                min_size=num_rows,
                max_size=num_rows,
            )
        ),
        dtype=np.float64,
    )
    target = np.asarray(draw(st.lists(finite, min_size=num_rows, max_size=num_rows)))
    num_regions = draw(st.integers(min_value=1, max_value=4))
    corners = np.asarray(
        draw(
            st.lists(
                st.lists(finite, min_size=2 * dim, max_size=2 * dim),
                min_size=num_regions,
                max_size=num_regions,
            )
        ),
        dtype=np.float64,
    ).reshape(num_regions, 2, dim)
    lowers = np.minimum(corners[:, 0, :], corners[:, 1, :])
    uppers = np.maximum(corners[:, 0, :], corners[:, 1, :])
    # Make at least one region a guaranteed hit and one a guaranteed miss so
    # shrinking cannot collapse the suite onto all-empty selections.
    lowers[0], uppers[0] = region.min(axis=0), region.max(axis=0)
    if num_regions > 1:
        lowers[1], uppers[1] = region.max(axis=0) + 1.0, region.max(axis=0) + 2.0
    num_shards = draw(st.integers(min_value=1, max_value=min(4, num_rows)))
    return region, target, lowers, uppers, num_shards


def statistics_for(target):
    positive = float(target[0]) if target.size else 0.0
    return [
        CountStatistic(),
        AverageStatistic("t"),
        SumStatistic("t"),
        VarianceStatistic("t"),
        MedianStatistic("t"),
        RatioStatistic("t", positive),
    ]


@settings(max_examples=40, deadline=None)
@given(dataset_and_regions())
def test_all_backends_bit_identical(case):
    region, target, lowers, uppers, num_shards = case
    reference = NumpyBackend(region, target)
    expected_masks = reference.scan_masks(lowers, uppers)
    statistics = statistics_for(target)
    expected_values = {
        statistic.name: reference.evaluate(statistic, lowers, uppers)
        for statistic in statistics
    }
    backends = [
        NumpyBackend(region, target, index=GridIndex(region, cells_per_dim=3)),
        ChunkedBackend.from_arrays(region, target, block_rows=7),
        SQLiteBackend(region, target),
        ShardedBackend.from_arrays(region, target, num_shards=num_shards, max_workers=1),
    ]
    for backend in backends:
        with backend:
            assert np.array_equal(backend.scan_masks(lowers, uppers), expected_masks), backend.name
            assert np.array_equal(
                backend.count(lowers, uppers), expected_masks.sum(axis=1).astype(np.int64)
            ), backend.name
            for statistic in statistics:
                got = backend.evaluate(statistic, lowers, uppers)
                assert np.array_equal(got, expected_values[statistic.name]), (
                    backend.name,
                    statistic.name,
                )


@settings(max_examples=25, deadline=None)
@given(dataset_and_regions())
def test_sharded_stats_merge_is_exact_where_promised_and_close_elsewhere(case):
    region, target, lowers, uppers, num_shards = case
    reference = NumpyBackend(region, target)
    fast = ShardedBackend.from_arrays(
        region, target, num_shards=num_shards, max_workers=1, merge="stats"
    )
    # Summation-order drift is absolute in the magnitude of the summed data
    # (values may cancel to a tiny result), so the float-merge tolerance must
    # scale with the data, not with the result.
    drift = 1e-12 * (1.0 + float(np.abs(target).sum() + np.square(target).sum()))
    with fast:
        for statistic in statistics_for(target):
            expected = reference.evaluate(statistic, lowers, uppers)
            got = fast.evaluate(statistic, lowers, uppers)
            if statistic.decomposition == "float":
                np.testing.assert_allclose(got, expected, rtol=1e-9, atol=drift)
            else:
                # count/ratio merge integer sufficient stats, median gathers:
                # both promise bit-identity even in stats mode.
                assert np.array_equal(got, expected), statistic.name


@settings(max_examples=25, deadline=None)
@given(dataset_and_regions(), st.integers(min_value=0, max_value=2**31 - 1))
def test_backend_sampling_consumes_one_identical_rng_stream(case, seed):
    region, target, _, _, num_shards = case
    size = min(3, region.shape[0])
    expected = region[np.random.default_rng(seed).choice(region.shape[0], size, replace=False)]
    for backend in (
        NumpyBackend(region, target),
        ChunkedBackend.from_arrays(region, target, block_rows=5),
        SQLiteBackend(region, target),
        ShardedBackend.from_arrays(region, target, num_shards=num_shards, max_workers=1),
    ):
        with backend:
            assert np.array_equal(backend.sample(size, random_state=seed), expected), backend.name
