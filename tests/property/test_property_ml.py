"""Property-based tests for the ML substrate (trees, boosting, metrics, splits)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.metrics import mean_absolute_error, mean_squared_error, r2_score, root_mean_squared_error
from repro.ml.model_selection import KFold, train_test_split
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.ml.tree import DecisionTreeRegressor

finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def regression_data(draw, min_rows=12, max_rows=60, max_cols=3):
    num_rows = draw(st.integers(min_rows, max_rows))
    num_cols = draw(st.integers(1, max_cols))
    features = draw(
        hnp.arrays(np.float64, (num_rows, num_cols), elements=finite_floats)
    )
    targets = draw(hnp.arrays(np.float64, (num_rows,), elements=finite_floats))
    return features, targets


@given(regression_data())
def test_tree_predictions_within_target_range(data):
    features, targets = data
    tree = DecisionTreeRegressor(max_depth=4).fit(features, targets)
    predictions = tree.predict(features)
    assert predictions.min() >= targets.min() - 1e-6
    assert predictions.max() <= targets.max() + 1e-6


@given(regression_data())
def test_tree_training_rmse_not_worse_than_constant_model(data):
    features, targets = data
    tree = DecisionTreeRegressor(max_depth=5).fit(features, targets)
    tree_rmse = root_mean_squared_error(targets, tree.predict(features))
    constant_rmse = root_mean_squared_error(targets, np.full_like(targets, targets.mean()))
    assert tree_rmse <= constant_rmse + 1e-9


@given(regression_data(min_rows=25))
def test_boosting_with_zero_regularisation_reduces_training_error(data):
    features, targets = data
    model = GradientBoostingRegressor(
        n_estimators=20, max_depth=3, learning_rate=0.3, reg_lambda=0.0, random_state=0
    ).fit(features, targets)
    rmse = root_mean_squared_error(targets, model.predict(features))
    constant_rmse = root_mean_squared_error(targets, np.full_like(targets, targets.mean()))
    assert rmse <= constant_rmse + 1e-9


@given(hnp.arrays(np.float64, st.tuples(st.integers(5, 40), st.integers(1, 4)), elements=finite_floats))
def test_standard_scaler_round_trip(features):
    scaler = StandardScaler().fit(features)
    np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(features)), features, atol=1e-6)


@given(hnp.arrays(np.float64, st.tuples(st.integers(5, 40), st.integers(1, 4)), elements=finite_floats))
def test_minmax_scaler_output_in_unit_interval(features):
    transformed = MinMaxScaler().fit_transform(features)
    assert transformed.min() >= -1e-12
    assert transformed.max() <= 1.0 + 1e-12


@given(hnp.arrays(np.float64, st.integers(2, 50), elements=finite_floats))
def test_metrics_non_negative_and_zero_on_exact(targets):
    assert mean_squared_error(targets, targets) == 0.0
    assert mean_absolute_error(targets, targets) == 0.0
    noisy = targets + 1.0
    assert mean_squared_error(targets, noisy) == pytest.approx(1.0)
    assert root_mean_squared_error(targets, noisy) == pytest.approx(1.0)


@given(hnp.arrays(np.float64, st.integers(3, 50), elements=finite_floats))
def test_r2_never_exceeds_one(targets):
    predictions = targets * 0.5 + 1.0
    assert r2_score(targets, predictions) <= 1.0 + 1e-12


@given(regression_data(min_rows=10), st.floats(min_value=0.1, max_value=0.5))
def test_train_test_split_partitions_rows(data, test_size):
    features, targets = data
    f_train, f_test, t_train, t_test = train_test_split(features, targets, test_size=test_size, random_state=0)
    assert f_train.shape[0] + f_test.shape[0] == features.shape[0]
    assert t_train.shape[0] == f_train.shape[0]
    assert t_test.shape[0] == f_test.shape[0]


@given(st.integers(6, 60), st.integers(2, 6))
def test_kfold_covers_every_index_exactly_once(num_samples, n_splits):
    if n_splits > num_samples:
        n_splits = num_samples
    data = np.arange(num_samples).reshape(-1, 1)
    seen = []
    for train_idx, test_idx in KFold(n_splits=n_splits).split(data):
        assert set(train_idx).isdisjoint(test_idx)
        seen.extend(test_idx.tolist())
    assert sorted(seen) == list(range(num_samples))
