"""Property-based tests for the region-mining objectives and queries."""

import numpy as np
import pytest
from hypothesis import assume, given, strategies as st

from repro.core.objective import LogObjective, RatioObjective
from repro.core.query import RegionQuery

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
positive_half = st.floats(min_value=1e-3, max_value=0.5, allow_nan=False, allow_infinity=False)


def volume_statistic(vector: np.ndarray) -> float:
    dim = vector.size // 2
    return float(np.prod(2 * vector[dim:]) * 1000.0)


@st.composite
def solution_vector(draw, dim=2):
    center = [draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)) for _ in range(dim)]
    half = [draw(positive_half) for _ in range(dim)]
    return np.array(center + half)


@given(finite, finite)
def test_query_margin_antisymmetry(threshold, value):
    above = RegionQuery(threshold=threshold, direction="above")
    below = RegionQuery(threshold=threshold, direction="below")
    assert above.margin(value) == pytest.approx(-below.margin(value))


@given(finite)
def test_exactly_threshold_is_never_satisfied(threshold):
    above = RegionQuery(threshold=threshold, direction="above")
    below = RegionQuery(threshold=threshold, direction="below")
    assert not above.satisfied_by(threshold)
    assert not below.satisfied_by(threshold)


@given(solution_vector(), st.floats(min_value=0.0, max_value=6.0))
def test_log_objective_finite_iff_feasible(vector, c):
    query = RegionQuery(threshold=100.0, direction="above", size_penalty=c)
    objective = LogObjective(volume_statistic, query)
    value = objective(vector)
    if objective.is_feasible(vector):
        assert np.isfinite(value)
    else:
        assert value == -np.inf


@given(solution_vector())
def test_log_objective_monotone_in_threshold(vector):
    # A lower threshold leaves a larger margin, so the objective can only increase.
    low = LogObjective(volume_statistic, RegionQuery(threshold=10.0, direction="above", size_penalty=2.0))
    high = LogObjective(volume_statistic, RegionQuery(threshold=200.0, direction="above", size_penalty=2.0))
    assert low(vector) >= high(vector)


@given(solution_vector(), st.floats(min_value=0.5, max_value=4.0))
def test_log_objective_batch_matches_scalar(vector, c):
    query = RegionQuery(threshold=50.0, direction="above", size_penalty=c)
    objective = LogObjective(volume_statistic, query)
    batch_value = objective.evaluate_batch(vector.reshape(1, -1))[0]
    scalar_value = objective(vector)
    if np.isfinite(scalar_value):
        assert batch_value == pytest.approx(scalar_value)
    else:
        assert batch_value == -np.inf


@given(solution_vector(), st.floats(min_value=0.5, max_value=4.0))
def test_ratio_objective_sign_tracks_feasibility(vector, c):
    query = RegionQuery(threshold=100.0, direction="above", size_penalty=c)
    objective = RatioObjective(volume_statistic, query)
    value = objective(vector)
    assert np.isfinite(value)
    if objective.is_feasible(vector):
        assert value > 0
    else:
        assert value <= 0


@given(solution_vector())
def test_shrinking_a_feasible_region_increases_log_objective(vector):
    query = RegionQuery(threshold=10.0, direction="above", size_penalty=4.0)
    objective = LogObjective(volume_statistic, query)
    dim = vector.size // 2
    shrunk = vector.copy()
    shrunk[dim:] = shrunk[dim:] * 0.9
    assume(objective.is_feasible(shrunk))
    assume(objective.is_feasible(vector))
    # Right at the feasibility boundary the log-margin loss can exceed the
    # size-penalty gain (-c * d * log(0.9) ≈ 0.843 here), so restrict to
    # regions whose margin survives the shrink by at least half: then
    # log(m / m') <= log 2 < 0.843 and the penalty term dominates for c=4.
    assume(objective.margin(shrunk) >= 0.5 * objective.margin(vector))
    assert objective(shrunk) >= objective(vector)
