"""Property tests for the repro.api front door.

Three layers of guarantees:

1. **Envelope round-trips** — any valid :class:`FindRequest` /
   :class:`FindResponse` survives ``to_dict``/``from_dict`` and
   ``to_json``/``from_json`` losslessly (floats included: Python's float
   repr round-trips exactly).
2. **Registry laws** — ``register`` is idempotent for the same factory,
   conflicting registrations never silently shadow, and ``resolve`` is stable
   across repeated calls.
3. **Seeded bit-identity vs the PR 4 monolith** — a 16-query burst served by
   the ``SuRFService`` compat shim (and by the kernel directly) returns
   results bit-identical to the frozen pre-refactor service
   (``tests/helpers/legacy_service.py``): same statuses, same regions, same
   objective values, same counters.
"""

import json
import string

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from legacy_service import LegacySuRFService
from repro.api import FindRequest, FindResponse, ProposalPayload, Registry, ServiceKernel
from repro.core.query import RegionQuery
from repro.exceptions import ValidationError
from repro.serve.service import SuRFService

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)
sane_floats = st.floats(allow_nan=False, allow_infinity=False, min_value=0.0, max_value=1e6)
names = st.text(alphabet=string.ascii_lowercase + string.digits + "-_/", min_size=1, max_size=24)


# --------------------------------------------------------------------------- envelopes
class TestEnvelopeRoundTrip:
    @given(
        threshold=finite_floats,
        direction=st.sampled_from(["above", "below"]),
        size_penalty=sane_floats,
        model=names,
        max_proposals=st.one_of(st.none(), st.integers(min_value=1, max_value=50)),
        trace_id=st.one_of(st.none(), st.text(max_size=32)),
    )
    def test_request_dict_and_json_round_trip(
        self, threshold, direction, size_penalty, model, max_proposals, trace_id
    ):
        request = FindRequest(
            threshold=threshold,
            direction=direction,
            size_penalty=size_penalty,
            model=model,
            max_proposals=max_proposals,
            trace_id=trace_id,
        )
        assert FindRequest.from_dict(request.to_dict()) == request
        assert FindRequest.from_json(request.to_json()) == request
        # And the JSON form is plain data: stable under a second encode/decode.
        assert json.loads(json.dumps(request.to_dict())) == request.to_dict()

    @given(
        status=st.sampled_from(["served", "cached", "rejected"]),
        satisfiability=st.floats(allow_nan=False, allow_infinity=False, min_value=0, max_value=1),
        elapsed=sane_floats,
        generation=st.integers(min_value=0, max_value=1000),
        model=names,
        centers=st.lists(
            st.tuples(finite_floats, finite_floats), min_size=0, max_size=4
        ),
    )
    def test_response_dict_and_json_round_trip(
        self, status, satisfiability, elapsed, generation, model, centers
    ):
        proposals = tuple(
            ProposalPayload(
                center=center,
                half_lengths=(0.5, 0.25),
                predicted_value=float(index),
                objective_value=float(index) / 2.0,
                support=index + 1,
            )
            for index, center in enumerate(centers)
        )
        response = FindResponse(
            model=model,
            status=status,
            satisfiability=satisfiability,
            proposals=proposals,
            elapsed_seconds=elapsed,
            generation=generation,
        )
        assert FindResponse.from_dict(response.to_dict()) == response
        assert FindResponse.from_json(response.to_json()) == response

    @given(threshold=finite_floats, size_penalty=sane_floats)
    def test_request_query_round_trip_matches_normalisation(self, threshold, size_penalty):
        query = RegionQuery(threshold=threshold, size_penalty=size_penalty)
        request = FindRequest.from_query(query)
        assert request.query() == query


# --------------------------------------------------------------------------- registry laws
class TestRegistryProperties:
    @given(name=names)
    def test_register_resolve_is_idempotent(self, name):
        registry = Registry("thing")
        registry.register(name, dict)
        registry.register(name, dict)  # same object: no-op
        assert registry.resolve(name) is dict
        assert registry.resolve(name) is registry.resolve(name)
        assert len(registry) == 1

    @given(name=names)
    def test_conflicts_never_silently_shadow(self, name):
        registry = Registry("thing")
        registry.register(name, dict)
        with pytest.raises(ValidationError):
            registry.register(name, list)
        assert registry.resolve(name) is dict  # the original binding survives

    @given(entries=st.lists(names, min_size=1, max_size=8, unique=True))
    def test_names_reports_every_registration_sorted(self, entries):
        registry = Registry("thing")
        for entry in entries:
            registry.register(entry, dict)
        assert registry.names() == tuple(sorted(set(entries)))


# --------------------------------------------------------------------------- bit-identity vs PR 4
def responses_identical(legacy, modern) -> None:
    """Statuses, satisfiability and full proposal payloads must match bitwise."""
    assert len(legacy) == len(modern)
    for before, after in zip(legacy, modern):
        assert after.status == before.status
        assert float(after.satisfiability) == float(before.satisfiability)
        assert len(after.proposals) == len(before.proposals)
        for lhs, rhs in zip(before.proposals, after.proposals):
            assert np.array_equal(lhs.region.to_vector(), rhs.region.to_vector())
            assert lhs.predicted_value == rhs.predicted_value
            assert lhs.objective_value == rhs.objective_value
            assert lhs.support == rhs.support


@pytest.fixture(scope="module")
def burst(fitted_surf):
    """A seeded 16-query burst: 4 distinct satisfiable thresholds (repeated,
    as heavy analyst traffic repeats), plus a hopeless one."""
    model = fitted_surf.satisfiability_
    templates = [
        RegionQuery(threshold=float(model.quantile(q)), direction="above")
        for q in np.linspace(0.60, 0.85, 4)
    ]
    hopeless = RegionQuery(threshold=float(model.quantile(1.0)) * 10, direction="above")
    queries = [templates[i % 4] for i in range(15)] + [hopeless]
    assert len(queries) == 16
    return queries


class TestLegacyEquivalence:
    def test_shim_batch_is_bit_identical_to_pr4_service(self, fitted_surf, burst):
        legacy = LegacySuRFService(fitted_surf).find_regions_batch(burst)
        modern = SuRFService(fitted_surf).find_regions_batch(burst)
        responses_identical(legacy, modern)

    def test_kernel_batch_is_bit_identical_to_pr4_service(self, fitted_surf, burst):
        legacy = LegacySuRFService(fitted_surf).find_regions_batch(burst)
        kernel_responses = ServiceKernel(fitted_surf).handle_batch(burst)
        assert len(kernel_responses) == len(legacy)
        for before, after in zip(legacy, kernel_responses):
            assert after.status == before.status
            assert float(after.satisfiability) == float(before.satisfiability)
            before_proposals = before.result.proposals if before.result else []
            assert len(after.proposals) == len(before_proposals)
            for lhs, rhs in zip(before_proposals, after.proposals):
                assert np.array_equal(
                    np.asarray(lhs.region.center), np.asarray(rhs.center)
                )
                assert np.array_equal(
                    np.asarray(lhs.region.half_lengths), np.asarray(rhs.half_lengths)
                )
                assert lhs.predicted_value == rhs.predicted_value
                assert lhs.objective_value == rhs.objective_value

    def test_sequential_singles_are_bit_identical_too(self, fitted_surf, burst):
        legacy_service = LegacySuRFService(fitted_surf)
        modern_service = SuRFService(fitted_surf)
        legacy = [legacy_service.find_regions(query) for query in burst]
        modern = [modern_service.find_regions(query) for query in burst]
        responses_identical(legacy, modern)

    def test_counters_match_the_pr4_service(self, fitted_surf, burst):
        legacy_service = LegacySuRFService(fitted_surf)
        modern_service = SuRFService(fitted_surf)
        legacy_service.find_regions_batch(burst)
        modern_service.find_regions_batch(burst)
        # The modern stats surface is a strict superset: every PR 4 counter
        # must match bit-for-bit, and the load-control counters (which the
        # frozen monolith predates) must stay zero without load-control
        # middleware in the chain.
        legacy_stats = legacy_service.stats.as_dict()
        modern_stats = modern_service.stats.as_dict()
        assert {key: modern_stats[key] for key in legacy_stats} == legacy_stats
        extra = set(modern_stats) - set(legacy_stats)
        assert extra == {"throttled", "shed", "timeouts", "errors", "since_refresh"}
        assert all(
            modern_stats[key] == 0 for key in extra if key != "since_refresh"
        )
        # Never refreshed, so the since-refresh window is the lifetime view.
        window = modern_stats["since_refresh"]
        assert all(window[key] == legacy_stats[key] for key in legacy_stats)

    def test_refresh_hot_swap_matches_the_pr4_service(
        self, fitted_surf, burst, density_engine
    ):
        from repro.online import QueryLog
        from repro.surrogate.workload import generate_workload

        pairs = list(generate_workload(density_engine, 60, random_state=77))
        legacy_service = LegacySuRFService(fitted_surf, query_log=QueryLog(capacity=500))
        modern_service = SuRFService(fitted_surf, query_log=QueryLog(capacity=500))
        legacy_service.observe_many(pairs)
        modern_service.observe_many(pairs)
        assert legacy_service.refresh().mode == modern_service.refresh().mode
        assert legacy_service.generation == modern_service.generation == 1
        responses_identical(
            legacy_service.find_regions_batch(burst),
            modern_service.find_regions_batch(burst),
        )
