"""Property-based tests for hyper-rectangle geometry (IoU is the paper's accuracy metric)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.data.regions import Region


def region_strategy(dim: int):
    centers = st.lists(
        st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False),
        min_size=dim,
        max_size=dim,
    )
    halves = st.lists(
        st.floats(min_value=1e-3, max_value=3.0, allow_nan=False, allow_infinity=False),
        min_size=dim,
        max_size=dim,
    )
    return st.builds(lambda c, h: Region(np.array(c), np.array(h)), centers, halves)


@given(region_strategy(2))
def test_volume_is_positive(region):
    assert region.volume() > 0


@given(region_strategy(2))
def test_iou_with_itself_is_one(region):
    assert region.iou(region) == pytest.approx(1.0)


@given(region_strategy(2), region_strategy(2))
def test_iou_is_symmetric_and_bounded(first, second):
    forward = first.iou(second)
    backward = second.iou(first)
    assert forward == pytest.approx(backward, rel=1e-9, abs=1e-12)
    assert 0.0 <= forward <= 1.0 + 1e-12


@given(region_strategy(3), region_strategy(3))
def test_intersection_volume_bounded_by_each_volume(first, second):
    overlap = first.intersection_volume(second)
    assert overlap <= first.volume() + 1e-9
    assert overlap <= second.volume() + 1e-9
    assert overlap >= 0.0


@given(region_strategy(2), region_strategy(2))
def test_union_volume_at_least_max_volume(first, second):
    union = first.union_volume(second)
    assert union >= max(first.volume(), second.volume()) - 1e-9


@given(region_strategy(2), region_strategy(2))
def test_intersects_consistent_with_intersection_volume(first, second):
    has_volume = first.intersection_volume(second) > 0
    if has_volume:
        assert first.intersects(second)


@given(region_strategy(2))
def test_vector_round_trip_preserves_geometry(region):
    recovered = Region.from_vector(region.to_vector())
    np.testing.assert_allclose(recovered.center, region.center)
    np.testing.assert_allclose(recovered.half_lengths, region.half_lengths)


@given(region_strategy(2), st.floats(min_value=0.1, max_value=3.0))
def test_expanded_region_contains_original(region, factor):
    if factor >= 1.0:
        assert region.expanded(factor).contains_region(region)
    else:
        assert region.contains_region(region.expanded(factor))


@given(region_strategy(2))
def test_contained_region_has_iou_equal_to_volume_ratio(region):
    inner = region.expanded(0.5)
    expected = inner.volume() / region.volume()
    assert region.iou(inner) == pytest.approx(expected, rel=1e-9)


@given(region_strategy(1), st.floats(min_value=-3, max_value=3))
def test_translation_preserves_volume_and_iou_shift(region, offset):
    moved = region.translated(np.array([offset]))
    assert moved.volume() == pytest.approx(region.volume())
    if abs(offset) >= region.side_lengths[0]:
        assert region.iou(moved) == pytest.approx(0.0, abs=1e-12)
