"""Property tests for the serving-under-load middleware laws.

Four families of invariants, all driven deterministically (virtual clocks, an
instant finder) so Hypothesis can explore hundreds of schedules without ever
paying for a real GSO run:

1. **Chain composition** — ``compose`` is an onion: stages enter in list
   order and unwind in reverse, every stage sees the same context object,
   and composition is associative (composing a prefix with the composed
   suffix behaves like composing the whole list).
2. **Extras isolation** — ``ctx.extras`` starts empty for every batch; junk
   written by one batch's middleware is never visible to the next batch.
3. **Deadline monotonicity** — with the chain consuming ``advance`` virtual
   seconds before execution, a request times out *iff* its budget is at most
   ``advance``; in particular, if a budget ``T`` times out then every budget
   ``T' <= T`` times out too (shrinking a budget can never un-time-out a
   request).
4. **Token-bucket conservation** — over any schedule of acquisitions and
   clock advances, ``granted <= capacity + rate * elapsed`` (you cannot be
   granted more than the initial burst plus what time refilled), grants plus
   denials account for every attempt, and the available balance stays within
   ``[0, capacity]``.
"""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    Deadline,
    FindRequest,
    ServiceKernel,
    TokenBucket,
    compose,
    production_chain,
)
from repro.core.finder import SuRF


# --------------------------------------------------------------------------- helpers
class InstantFinder(SuRF):
    """Returns a canned result instantly — execution cost drops to ~0."""

    def find_regions(self, query, max_proposals=None):
        return self.canned


@pytest.fixture(scope="module")
def instant_surf(fitted_surf, density_query):
    canned = fitted_surf.find_regions(density_query)
    fast = copy.copy(fitted_surf)
    fast.__class__ = InstantFinder
    fast.canned = canned
    return fast


class VirtualClock:
    """Replays a scripted sequence of times, then repeats the last one."""

    def __init__(self, times):
        self._times = list(times)

    def __call__(self) -> float:
        if len(self._times) > 1:
            return self._times.pop(0)
        return self._times[0]


class Recorder:
    """Middleware that logs its enter/exit order into a shared trace."""

    def __init__(self, label, trace):
        self.label = label
        self.trace = trace

    def __call__(self, ctx, next):
        self.trace.append(("enter", self.label))
        result = next(ctx)
        self.trace.append(("exit", self.label))
        return result


# --------------------------------------------------------------------------- composition laws
class TestComposition:
    @given(size=st.integers(min_value=0, max_value=8))
    def test_chain_is_an_onion(self, size):
        trace = []
        handler = compose([Recorder(i, trace) for i in range(size)])
        ctx = object()
        assert handler(ctx) is ctx  # terminal returns the same context
        entered = [label for kind, label in trace if kind == "enter"]
        exited = [label for kind, label in trace if kind == "exit"]
        assert entered == list(range(size))
        assert exited == list(reversed(range(size)))

    @given(size=st.integers(min_value=1, max_value=8), split=st.integers(min_value=0, max_value=8))
    def test_composition_is_associative(self, size, split):
        split = min(split, size)
        labels = list(range(size))
        flat_trace = []
        compose([Recorder(i, flat_trace) for i in labels])(object())

        nested_trace = []
        suffix = compose([Recorder(i, nested_trace) for i in labels[split:]])

        class Bridge:
            def __call__(self, ctx, next):
                suffix(ctx)
                return next(ctx)

        compose([Recorder(i, nested_trace) for i in labels[:split]] + [Bridge()])(object())
        # The bridge runs the suffix inside the prefix's onion: the enter
        # order (all that matters for stage semantics) is identical.
        assert [t for t in flat_trace if t[0] == "enter"] == [
            t for t in nested_trace if t[0] == "enter"
        ]

    def test_every_stage_sees_the_same_context(self):
        seen = []

        class Witness:
            def __call__(self, ctx, next):
                seen.append(ctx)
                return next(ctx)

        sentinel = object()
        compose([Witness(), Witness(), Witness()])(sentinel)
        assert all(ctx is sentinel for ctx in seen)


# --------------------------------------------------------------------------- extras isolation
class TestExtrasIsolation:
    @given(batches=st.integers(min_value=2, max_value=6))
    @settings(max_examples=20)
    def test_extras_start_empty_for_every_batch(self, instant_surf, density_query, batches):
        observed = []

        class Contaminator:
            name = "contaminator"

            def __call__(self, ctx, next):
                observed.append(dict(ctx.extras))
                ctx.extras["junk"] = ctx.extras.get("junk", 0) + 1
                return next(ctx)

        chain = production_chain()
        chain.insert(1, Contaminator())
        kernel = ServiceKernel(instant_surf, middleware=chain, cache_size=0)
        for step in range(batches):
            kernel.handle(FindRequest(threshold=density_query.threshold * (1 + step)))
        assert len(observed) >= batches
        assert all(snapshot == {} for snapshot in observed)


# --------------------------------------------------------------------------- deadline monotonicity
class TestDeadlineMonotonicity:
    def outcome(self, instant_surf, density_query, budget, advance):
        clock = VirtualClock([0.0, advance])
        chain = production_chain(deadline=Deadline(clock=clock))
        kernel = ServiceKernel(instant_surf, middleware=chain, cache_size=0)
        response = kernel.handle(
            FindRequest(threshold=density_query.threshold, deadline_seconds=budget)
        )
        return response.status

    @given(
        advance=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        budget=st.floats(min_value=1e-6, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=40)
    def test_timeout_exactly_when_budget_consumed(
        self, instant_surf, density_query, advance, budget
    ):
        status = self.outcome(instant_surf, density_query, budget, advance)
        assert status == ("timeout" if advance >= budget else "served")

    @given(
        advance=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        budgets=st.lists(
            st.floats(min_value=1e-6, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=4,
        ),
    )
    @settings(max_examples=25)
    def test_shrinking_a_budget_never_revives_a_timeout(
        self, instant_surf, density_query, advance, budgets
    ):
        outcomes = [
            (budget, self.outcome(instant_surf, density_query, budget, advance))
            for budget in sorted(budgets)
        ]
        # Walking budgets upward, once a request stops timing out it never
        # starts again — the verdict is monotone in the budget.
        timed_out = [status == "timeout" for _budget, status in outcomes]
        first_ok = timed_out.index(False) if False in timed_out else len(timed_out)
        assert all(timed_out[:first_ok])
        assert not any(timed_out[first_ok:])


# --------------------------------------------------------------------------- token bucket conservation
acquire_or_advance = st.one_of(
    st.just(("acquire",)),
    st.tuples(st.just("advance"), st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
)


class TestTokenBucketConservation:
    @given(
        rate=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        capacity=st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
        schedule=st.lists(acquire_or_advance, max_size=60),
    )
    def test_granted_never_exceeds_capacity_plus_refill(self, rate, capacity, schedule):
        clock_now = [0.0]
        bucket = TokenBucket(rate, capacity, clock=lambda: clock_now[0])
        attempts = 0
        for op in schedule:
            if op[0] == "advance":
                clock_now[0] += op[1]
            else:
                attempts += 1
                bucket.try_acquire()
        elapsed = clock_now[0]
        assert bucket.granted + bucket.denied == attempts
        # Conservation: the initial burst plus what time refilled, with a
        # one-ulp cushion for the float accumulation along the schedule.
        ceiling = capacity + rate * elapsed
        assert bucket.granted <= ceiling * (1 + 1e-9) + 1e-9
        assert 0.0 <= bucket.available <= capacity

    @given(
        rate=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        capacity=st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
    )
    def test_burst_is_exactly_the_capacity(self, rate, capacity):
        bucket = TokenBucket(rate, capacity, clock=lambda: 0.0)
        granted = sum(bucket.try_acquire() for _ in range(int(capacity) + 10))
        assert granted == int(capacity)
