"""Property-based tests for the serving layer's normalisation and the query log.

Two invariants the online loop leans on, checked over generated inputs:

* ``SuRFService.normalize_query`` is idempotent and maps thresholds that
  differ only by sub-tolerance float noise (relative ~1e-13, far below any
  statistically meaningful digit) to one cache key — repeated analyst traffic
  lands on one cache entry even after serialisation round trips.
* ``QueryLog`` never exceeds its capacity under any record sequence, its
  monotone accounting (``total_recorded = len + dropped``) always balances,
  and the ``.npz`` persistence round trip is bit-lossless.
"""

import numpy as np
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.query import RegionQuery
from repro.data.regions import Region
from repro.online import QueryLog
from repro.serve.service import SuRFService
from repro.surrogate.workload import RegionEvaluation
from repro.utils.validation import canonical_float

thresholds = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False)
penalties = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)
directions = st.sampled_from(["above", "below"])


def queries():
    return st.builds(RegionQuery, threshold=thresholds, direction=directions, size_penalty=penalties)


# --------------------------------------------------------------------------- normalisation
@given(queries())
def test_normalize_query_is_idempotent(query):
    once = SuRFService.normalize_query(query)
    twice = SuRFService.normalize_query(once)
    assert once == twice
    assert type(once.threshold) is float
    assert type(once.size_penalty) is float


@given(queries())
def test_normalize_query_preserves_direction_and_tolerance(query):
    normalized = SuRFService.normalize_query(query)
    assert normalized.direction == query.direction
    # 12 significant digits: the canonical value is within relative 1e-11.
    if query.threshold != 0:
        assert abs(normalized.threshold - query.threshold) <= 1e-11 * abs(query.threshold)
    if query.size_penalty != 0:
        assert abs(normalized.size_penalty - query.size_penalty) <= 1e-11 * query.size_penalty


@given(
    base=st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False),
    noise=st.floats(min_value=-1e-13, max_value=1e-13),
    direction=directions,
)
def test_cache_key_is_stable_under_float_noise_within_tolerance(base, noise, direction):
    # A threshold that is "coarse" at 6 significant digits sits on the interior
    # of its 12-digit rounding cell, so relative noise below 1e-13 cannot push
    # it across a cell boundary: both queries produce the same cache key.
    coarse = canonical_float(base, significant_digits=6)
    noisy = coarse * (1.0 + noise)
    clean_query = SuRFService.normalize_query(RegionQuery(threshold=coarse, direction=direction))
    noisy_query = SuRFService.normalize_query(RegionQuery(threshold=noisy, direction=direction))
    assert clean_query == noisy_query
    assert hash(clean_query) == hash(noisy_query)


@given(value=thresholds)
def test_canonical_float_is_idempotent(value):
    once = canonical_float(value)
    assert canonical_float(once) == once


# --------------------------------------------------------------------------- query log
def evaluation_batches():
    evaluation = st.builds(
        lambda center, value: RegionEvaluation(
            Region(np.array([center]), np.array([0.1])), value
        ),
        center=st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
        value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    )
    return st.lists(st.lists(evaluation, min_size=0, max_size=7), min_size=0, max_size=8)


@given(capacity=st.integers(min_value=1, max_value=10), batches=evaluation_batches())
def test_query_log_capacity_is_never_exceeded(capacity, batches):
    log = QueryLog(capacity=capacity)
    recorded = 0
    for batch in batches:
        log.record_many(batch)
        recorded += len(batch)
        assert len(log) <= capacity
        assert log.total_recorded == recorded
        assert log.dropped == recorded - len(log)
    # The retained entries are exactly the newest `len(log)` in record order.
    flattened = [evaluation for batch in batches for evaluation in batch]
    expected = flattened[-len(log) :] if len(log) else []
    assert [entry.value for entry in log.snapshot()] == [entry.value for entry in expected]


@given(
    features=hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 20), st.sampled_from([2, 4, 6])),
        elements=st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
    ),
    targets_seed=st.integers(0, 2**31 - 1),
)
def test_query_log_persistence_round_trip_is_lossless(tmp_path_factory, features, targets_seed):
    rng = np.random.default_rng(targets_seed)
    targets = rng.normal(size=features.shape[0])
    dim = features.shape[1] // 2
    log = QueryLog(capacity=features.shape[0])
    for vector, target in zip(features, targets):
        half_lengths = np.abs(vector[dim:]) + 0.5  # strictly positive half lengths
        log.record(Region(vector[:dim], half_lengths), float(target))

    path = log.save(tmp_path_factory.mktemp("qlog") / "log.npz")
    restored = QueryLog.load(path, capacity=features.shape[0])

    original, reloaded = log.as_workload(), restored.as_workload()
    np.testing.assert_array_equal(original.features, reloaded.features)
    np.testing.assert_array_equal(original.targets, reloaded.targets)
