"""Property-based tests for KDE region mass and engine/statistic consistency."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.data.dataset import Dataset
from repro.data.engine import DataEngine
from repro.data.regions import Region
from repro.data.statistics import AverageStatistic, CountStatistic
from repro.density.kde import GaussianKDE

_POINTS = np.random.default_rng(123).uniform(size=(800, 2))
_KDE = GaussianKDE().fit(_POINTS)
_DATASET = Dataset(
    np.column_stack([_POINTS, np.random.default_rng(5).normal(size=800)]),
    ["x", "y", "value"],
)
_COUNT_ENGINE = DataEngine(_DATASET.select_columns(["x", "y"]), CountStatistic())
_AVG_ENGINE = DataEngine(_DATASET, AverageStatistic("value"))

center_coord = st.floats(min_value=0.05, max_value=0.95, allow_nan=False)
half_coord = st.floats(min_value=0.02, max_value=0.4, allow_nan=False)


@st.composite
def region_2d(draw):
    center = np.array([draw(center_coord), draw(center_coord)])
    half = np.array([draw(half_coord), draw(half_coord)])
    return Region(center, half)


@given(region_2d())
def test_kde_mass_between_zero_and_one(region):
    mass = _KDE.region_mass(region)
    assert 0.0 <= mass <= 1.0 + 1e-9


@given(region_2d(), st.floats(min_value=1.05, max_value=2.0))
def test_kde_mass_monotone_under_expansion(region, factor):
    assert _KDE.region_mass(region.expanded(factor)) >= _KDE.region_mass(region) - 1e-12


@given(region_2d())
def test_kde_mass_close_to_empirical_fraction(region):
    mass = _KDE.region_mass(region)
    empirical = float(np.mean(
        np.all((_POINTS >= region.lower) & (_POINTS <= region.upper), axis=1)
    ))
    assert mass == pytest.approx(empirical, abs=0.1)


@given(region_2d())
def test_count_engine_matches_bruteforce(region):
    brute = float(np.sum(np.all((_POINTS >= region.lower) & (_POINTS <= region.upper), axis=1)))
    assert _COUNT_ENGINE.evaluate(region) == brute


@given(region_2d(), st.floats(min_value=1.05, max_value=2.0))
def test_count_monotone_under_expansion(region, factor):
    assert _COUNT_ENGINE.evaluate(region.expanded(factor)) >= _COUNT_ENGINE.evaluate(region)


@given(region_2d())
def test_count_additive_over_disjoint_split(region):
    # Split the region into left/right halves along x: counts must add up.
    left = Region.from_bounds(region.lower, [region.center[0], region.upper[1]])
    right = Region.from_bounds([np.nextafter(region.center[0], 2.0), region.lower[1]], region.upper)
    total = _COUNT_ENGINE.evaluate(region)
    parts = _COUNT_ENGINE.evaluate(left) + _COUNT_ENGINE.evaluate(right)
    assert parts == pytest.approx(total, abs=1e-9)


@given(region_2d())
def test_average_engine_bounded_by_target_range(region):
    value = _AVG_ENGINE.evaluate(region)
    target = _DATASET.column("value")
    assert target.min() - 1e-9 <= value <= target.max() + 1e-9 or value == 0.0
