"""Evolutionary / swarm optimisation substrate.

Contains the Glowworm Swarm Optimization (GSO) algorithm the paper builds on
(multimodal — converges to many local optima simultaneously) and a standard
Particle Swarm Optimization (PSO) used as a unimodal ablation.

The :data:`OPTIMIZERS` registry maps names to optimiser classes (``"gso"``,
``"pso"``) so experiment configs and the :mod:`repro.api` front door can pick
the search algorithm declaratively; register alternatives via
``OPTIMIZERS.register(name, cls)``.
"""

from repro.optim.gso import GlowwormSwarmOptimizer, GSOParameters
from repro.optim.pso import ParticleSwarmOptimizer, PSOParameters
from repro.optim.result import OptimizationResult
from repro.utils.registry import Registry

#: Plugin registry of swarm optimisers, keyed by short name.
OPTIMIZERS = Registry("optimizer")
OPTIMIZERS.register("gso", GlowwormSwarmOptimizer, aliases=("glowworm",))
OPTIMIZERS.register("pso", ParticleSwarmOptimizer, aliases=("particle",))

__all__ = [
    "GlowwormSwarmOptimizer",
    "GSOParameters",
    "ParticleSwarmOptimizer",
    "PSOParameters",
    "OptimizationResult",
    "OPTIMIZERS",
]
