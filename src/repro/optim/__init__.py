"""Evolutionary / swarm optimisation substrate.

Contains the Glowworm Swarm Optimization (GSO) algorithm the paper builds on
(multimodal — converges to many local optima simultaneously) and a standard
Particle Swarm Optimization (PSO) used as a unimodal ablation.
"""

from repro.optim.gso import GlowwormSwarmOptimizer, GSOParameters
from repro.optim.pso import ParticleSwarmOptimizer, PSOParameters
from repro.optim.result import OptimizationResult

__all__ = [
    "GlowwormSwarmOptimizer",
    "GSOParameters",
    "ParticleSwarmOptimizer",
    "PSOParameters",
    "OptimizationResult",
]
