"""Result containers for the swarm optimisers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class OptimizationResult:
    """Outcome of a swarm optimisation run.

    Attributes
    ----------
    positions:
        Final particle positions, shape ``(L, D)``.
    fitness:
        Final fitness value of each particle (``-inf`` for infeasible ones).
    initial_positions:
        Particle positions before the first iteration (for Fig. 1-style plots).
    mean_fitness_history:
        Mean finite fitness per iteration — the ``E[J]`` convergence curves of Fig. 9.
    feasible_fraction_history:
        Fraction of particles with finite fitness per iteration.
    num_iterations:
        Iterations actually executed (≤ the configured maximum when converged early).
    converged:
        Whether the early-stopping criterion fired before the iteration budget.
    function_evaluations:
        Total number of fitness evaluations performed.
    elapsed_seconds:
        Wall-clock time of the run.
    """

    positions: np.ndarray
    fitness: np.ndarray
    initial_positions: np.ndarray
    mean_fitness_history: List[float] = field(default_factory=list)
    feasible_fraction_history: List[float] = field(default_factory=list)
    num_iterations: int = 0
    converged: bool = False
    function_evaluations: int = 0
    elapsed_seconds: float = 0.0

    @property
    def feasible_mask(self) -> np.ndarray:
        """Boolean mask of particles whose final fitness is finite."""
        return np.isfinite(self.fitness)

    @property
    def feasible_positions(self) -> np.ndarray:
        """Final positions of the feasible particles only."""
        return self.positions[self.feasible_mask]

    @property
    def feasible_fraction(self) -> float:
        """Fraction of particles that ended on a feasible (finite-fitness) solution."""
        if self.fitness.size == 0:
            return 0.0
        return float(np.mean(self.feasible_mask))

    def best(self) -> Optional[np.ndarray]:
        """Position of the single best particle, or ``None`` if none are feasible."""
        if not np.any(self.feasible_mask):
            return None
        return self.positions[int(np.nanargmax(np.where(self.feasible_mask, self.fitness, -np.inf)))]
