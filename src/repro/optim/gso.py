"""Glowworm Swarm Optimization (Krishnanand & Ghose, 2009).

GSO is the multimodal swarm optimiser the paper uses to find *many* regions of
interest at once.  Each particle ("glowworm") carries a luciferin level that
tracks its fitness (Eq. 6 of the paper); particles move towards brighter
neighbours inside an adaptive local-decision radius (Eq. 7), which lets the
swarm split into groups that converge to different local optima.

This implementation adds the paper's two extensions:

* fitness values of ``-inf`` (infeasible regions under the log objective,
  Eq. 4) are handled by letting luciferin simply decay, so infeasible
  particles never attract neighbours but can still be pulled towards feasible
  ones;
* neighbour-selection probabilities can be re-weighted by the data mass of
  the neighbour's region (Eq. 8) via the ``selection_weight`` callback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.optim.result import OptimizationResult
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_array


@dataclass
class GSOParameters:
    """Hyper-parameters of the glowworm swarm.

    Defaults follow the original GSO paper and the values SuRF uses:
    ``rho = 0.4``, ``gamma = 0.6``, initial luciferin 5.0, ``beta = 0.08`` and
    a desired neighbourhood size of 5.
    """

    num_particles: int = 100
    num_iterations: int = 100
    luciferin_decay: float = 0.4
    luciferin_gain: float = 0.6
    initial_luciferin: float = 5.0
    step_size: float = 0.03
    initial_radius: Optional[float] = None
    max_radius: Optional[float] = None
    radius_gain: float = 0.08
    desired_neighbours: int = 5
    convergence_tolerance: float = 1e-3
    convergence_patience: int = 15
    min_iterations: int = 30
    #: Isolated particles sitting on an undefined (infeasible) objective value take a
    #: random step instead of staying frozen, so a swarm that starts with no feasible
    #: particle can still discover the feasible set.
    explore_when_isolated: bool = True
    random_state: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_particles < 2:
            raise ValidationError(f"num_particles must be >= 2, got {self.num_particles}")
        if self.num_iterations < 1:
            raise ValidationError(f"num_iterations must be >= 1, got {self.num_iterations}")
        if not 0 < self.luciferin_decay < 1:
            raise ValidationError(f"luciferin_decay must be in (0, 1), got {self.luciferin_decay}")
        if self.luciferin_gain <= 0:
            raise ValidationError(f"luciferin_gain must be > 0, got {self.luciferin_gain}")
        if self.step_size <= 0:
            raise ValidationError(f"step_size must be > 0, got {self.step_size}")
        if self.desired_neighbours < 1:
            raise ValidationError(f"desired_neighbours must be >= 1, got {self.desired_neighbours}")

    @staticmethod
    def recommended_radius(num_particles: int, dim: int) -> float:
        """Radius heuristic the paper adopts: ``(1 - 0.5**(1/L))**(1/d)``.

        Derived from the expected edge length needed for each particle to see a
        constant expected number of neighbours in a unit cube (Friedman et al.,
        Elements of Statistical Learning, Eq. 2.24).
        """
        num_particles = max(2, int(num_particles))
        dim = max(1, int(dim))
        return float((1.0 - 0.5 ** (1.0 / num_particles)) ** (1.0 / dim))

    @classmethod
    def for_dimension(cls, dim: int, **overrides) -> "GSOParameters":
        """Parameters scaled to the region-solution-space dimensionality.

        The paper increases the swarm with dimensionality (``L = 50 d`` over the
        2d-dimensional solution space) and sets the initial radius with the
        heuristic above.
        """
        dim = max(1, int(dim))
        num_particles = overrides.pop("num_particles", 50 * dim)
        radius = cls.recommended_radius(num_particles, dim)
        defaults = dict(
            num_particles=num_particles,
            initial_radius=radius,
            max_radius=max(radius * 3.0, 1.0),
        )
        defaults.update(overrides)
        return cls(**defaults)


class GlowwormSwarmOptimizer:
    """Multimodal maximiser over a box-bounded continuous solution space.

    Parameters
    ----------
    objective:
        Callable mapping a solution vector (shape ``(D,)``) to a scalar fitness.
        ``-inf`` / ``nan`` mark infeasible solutions.
    lower_bounds / upper_bounds:
        Box constraints of the solution space (positions are clipped to stay inside).
    parameters:
        :class:`GSOParameters`; defaults are created if omitted.
    batch_objective:
        Optional vectorised fitness over a ``(L, D)`` matrix returning ``(L,)``
        values.  Used in preference to ``objective`` for the per-iteration
        swarm evaluation (a large speed-up for surrogate models).
    selection_weight:
        Optional callable giving a positive weight for a candidate neighbour's
        position; selection probabilities are multiplied by it (Eq. 8 uses the
        KDE region mass here).
    batch_selection_weight:
        Optional vectorised version of ``selection_weight`` over a ``(L, D)``
        matrix; evaluated once per iteration for the whole swarm.
    initial_positions:
        Optional explicit start positions of shape ``(L, D)``.
    """

    def __init__(
        self,
        objective: Callable[[np.ndarray], float],
        lower_bounds: Sequence[float],
        upper_bounds: Sequence[float],
        parameters: Optional[GSOParameters] = None,
        batch_objective: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        selection_weight: Optional[Callable[[np.ndarray], float]] = None,
        batch_selection_weight: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        initial_positions: Optional[np.ndarray] = None,
    ):
        self.objective = objective
        self.batch_objective = batch_objective
        self.lower_bounds = check_array(lower_bounds, name="lower_bounds", ndim=1)
        self.upper_bounds = check_array(upper_bounds, name="upper_bounds", ndim=1)
        if self.lower_bounds.shape != self.upper_bounds.shape:
            raise ValidationError("lower_bounds and upper_bounds must have the same shape")
        if np.any(self.upper_bounds <= self.lower_bounds):
            raise ValidationError("upper_bounds must exceed lower_bounds in every dimension")
        self.dim = self.lower_bounds.shape[0]
        self.parameters = parameters or GSOParameters()
        self.selection_weight = selection_weight
        self.batch_selection_weight = batch_selection_weight
        self._initial_positions = initial_positions
        self._evaluations = 0

    # ------------------------------------------------------------------ helpers
    def _evaluate(self, position: np.ndarray) -> float:
        self._evaluations += 1
        value = self.objective(position)
        if value is None or np.isnan(value):
            return -np.inf
        return float(value)

    def _evaluate_all(self, positions: np.ndarray) -> np.ndarray:
        if self.batch_objective is not None:
            self._evaluations += positions.shape[0]
            values = np.asarray(self.batch_objective(positions), dtype=np.float64)
            return np.where(np.isnan(values), -np.inf, values)
        return np.asarray([self._evaluate(position) for position in positions])

    def _selection_weights(self, positions: np.ndarray) -> Optional[np.ndarray]:
        """Per-particle selection weights (Eq. 8), or ``None`` when not configured."""
        if self.batch_selection_weight is not None:
            weights = np.asarray(self.batch_selection_weight(positions), dtype=np.float64)
            return np.clip(np.nan_to_num(weights, nan=0.0), 0.0, None)
        if self.selection_weight is not None:
            weights = np.asarray(
                [max(0.0, float(self.selection_weight(position))) for position in positions]
            )
            return weights
        return None

    def _initial_swarm(self, rng: np.random.Generator) -> np.ndarray:
        params = self.parameters
        if self._initial_positions is not None:
            positions = check_array(self._initial_positions, name="initial_positions", ndim=2)
            if positions.shape != (params.num_particles, self.dim):
                raise ValidationError(
                    f"initial_positions must have shape ({params.num_particles}, {self.dim}), "
                    f"got {positions.shape}"
                )
            return np.clip(positions.copy(), self.lower_bounds, self.upper_bounds)
        return rng.uniform(self.lower_bounds, self.upper_bounds, size=(params.num_particles, self.dim))

    # ------------------------------------------------------------------ main loop
    def run(self) -> OptimizationResult:
        """Execute the swarm and return the final particle population."""
        params = self.parameters
        rng = ensure_rng(params.random_state)
        self._evaluations = 0

        extent = float(np.mean(self.upper_bounds - self.lower_bounds))
        step = params.step_size * extent
        initial_radius = params.initial_radius
        if initial_radius is None:
            initial_radius = GSOParameters.recommended_radius(params.num_particles, self.dim) * extent
        max_radius = params.max_radius
        if max_radius is None:
            max_radius = 3.0 * initial_radius

        positions = self._initial_swarm(rng)
        initial_positions = positions.copy()
        luciferin = np.full(params.num_particles, params.initial_luciferin)
        radii = np.full(params.num_particles, initial_radius)
        fitness = self._evaluate_all(positions)

        mean_history: list[float] = []
        feasible_history: list[float] = []
        best_mean = -np.inf
        best_feasible_fraction = 0.0
        stall = 0
        converged = False
        start = time.perf_counter()

        iterations_done = 0
        for iteration in range(params.num_iterations):
            iterations_done = iteration + 1
            # Phase 1 — luciferin update (Eq. 6). Infeasible particles only decay.
            finite = np.isfinite(fitness)
            luciferin = (1.0 - params.luciferin_decay) * luciferin
            luciferin[finite] += params.luciferin_gain * fitness[finite]

            # Phase 2 — movement towards brighter neighbours (Eq. 7 / Eq. 8).
            new_positions = positions.copy()
            distances = np.linalg.norm(positions[:, None, :] - positions[None, :, :], axis=2)
            selection_weights = self._selection_weights(positions)
            for i in range(params.num_particles):
                neighbour_mask = (distances[i] <= radii[i]) & (luciferin > luciferin[i])
                neighbour_mask[i] = False
                neighbours = np.flatnonzero(neighbour_mask)
                if neighbours.size:
                    gaps = luciferin[neighbours] - luciferin[i]
                    weights = gaps.astype(np.float64)
                    if selection_weights is not None:
                        weights = weights * selection_weights[neighbours]
                    total = weights.sum()
                    if total <= 0:
                        probabilities = np.full(neighbours.size, 1.0 / neighbours.size)
                    else:
                        probabilities = weights / total
                    chosen = int(rng.choice(neighbours, p=probabilities))
                    direction = positions[chosen] - positions[i]
                    norm = np.linalg.norm(direction)
                    if norm > 1e-12:
                        new_positions[i] = positions[i] + step * direction / norm
                elif params.explore_when_isolated and not np.isfinite(fitness[i]):
                    # Isolated + infeasible: random walk so the particle keeps exploring.
                    direction = rng.normal(size=self.dim)
                    norm = np.linalg.norm(direction)
                    if norm > 1e-12:
                        new_positions[i] = positions[i] + step * direction / norm
                # Adaptive decision radius.
                radii[i] = float(
                    np.clip(
                        radii[i] + params.radius_gain * (params.desired_neighbours - neighbours.size),
                        1e-6,
                        max_radius,
                    )
                )

            positions = np.clip(new_positions, self.lower_bounds, self.upper_bounds)
            fitness = self._evaluate_all(positions)

            finite = np.isfinite(fitness)
            mean_fitness = float(fitness[finite].mean()) if np.any(finite) else float("nan")
            feasible_fraction = float(np.mean(finite))
            mean_history.append(mean_fitness)
            feasible_history.append(feasible_fraction)

            # Early stopping: neither the swarm's mean fitness nor the fraction of
            # feasible particles has improved for ``convergence_patience`` iterations.
            improved = False
            if np.isfinite(mean_fitness) and mean_fitness > best_mean + params.convergence_tolerance:
                best_mean = mean_fitness
                improved = True
            if feasible_fraction > best_feasible_fraction + 1e-9:
                best_feasible_fraction = feasible_fraction
                improved = True
            if improved:
                stall = 0
            else:
                stall += 1
                if iterations_done >= params.min_iterations and stall >= params.convergence_patience:
                    converged = True
                    break

        elapsed = time.perf_counter() - start
        return OptimizationResult(
            positions=positions,
            fitness=fitness,
            initial_positions=initial_positions,
            mean_fitness_history=mean_history,
            feasible_fraction_history=feasible_history,
            num_iterations=iterations_done,
            converged=converged,
            function_evaluations=self._evaluations,
            elapsed_seconds=elapsed,
        )
