"""Glowworm Swarm Optimization (Krishnanand & Ghose, 2009).

GSO is the multimodal swarm optimiser the paper uses to find *many* regions of
interest at once.  Each particle ("glowworm") carries a luciferin level that
tracks its fitness (Eq. 6 of the paper); particles move towards brighter
neighbours inside an adaptive local-decision radius (Eq. 7), which lets the
swarm split into groups that converge to different local optima.

This implementation adds the paper's two extensions:

* fitness values of ``-inf`` (infeasible regions under the log objective,
  Eq. 4) are handled by letting luciferin simply decay, so infeasible
  particles never attract neighbours but can still be pulled towards feasible
  ones;
* neighbour-selection probabilities can be re-weighted by the data mass of
  the neighbour's region (Eq. 8) via the ``selection_weight`` callback.

The movement phase is implemented twice: a whole-swarm vectorised kernel (the
default) and a per-particle reference loop (``movement="reference"``).  Both
consume the seeded RNG stream in exactly the same order — one uniform draw per
particle that has neighbours, one ``normal(size=d)`` draw per isolated
infeasible particle, in particle-index order — and make the same
floating-point decisions, so seeded runs produce bit-identical trajectories
under either implementation.  (The one theoretical exception: the kernel
compares squared distances against squared radii, which could disagree with
the reference's ``norm <= radius`` only when a pairwise distance ties with a
decision radius to within one rounding error — the equivalence tests assert
that seeded runs are nonetheless identical.)  The reference loop is kept for
the equivalence tests and the before/after microbenchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.optim.result import OptimizationResult
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_array


@dataclass
class GSOParameters:
    """Hyper-parameters of the glowworm swarm.

    Defaults follow the original GSO paper and the values SuRF uses:
    ``rho = 0.4``, ``gamma = 0.6``, initial luciferin 5.0, ``beta = 0.08`` and
    a desired neighbourhood size of 5.
    """

    num_particles: int = 100
    num_iterations: int = 100
    luciferin_decay: float = 0.4
    luciferin_gain: float = 0.6
    initial_luciferin: float = 5.0
    step_size: float = 0.03
    initial_radius: Optional[float] = None
    max_radius: Optional[float] = None
    radius_gain: float = 0.08
    desired_neighbours: int = 5
    convergence_tolerance: float = 1e-3
    convergence_patience: int = 15
    min_iterations: int = 30
    #: Isolated particles sitting on an undefined (infeasible) objective value take a
    #: random step instead of staying frozen, so a swarm that starts with no feasible
    #: particle can still discover the feasible set.
    explore_when_isolated: bool = True
    random_state: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_particles < 2:
            raise ValidationError(f"num_particles must be >= 2, got {self.num_particles}")
        if self.num_iterations < 1:
            raise ValidationError(f"num_iterations must be >= 1, got {self.num_iterations}")
        if not 0 < self.luciferin_decay < 1:
            raise ValidationError(f"luciferin_decay must be in (0, 1), got {self.luciferin_decay}")
        if self.luciferin_gain <= 0:
            raise ValidationError(f"luciferin_gain must be > 0, got {self.luciferin_gain}")
        if self.step_size <= 0:
            raise ValidationError(f"step_size must be > 0, got {self.step_size}")
        if self.desired_neighbours < 1:
            raise ValidationError(f"desired_neighbours must be >= 1, got {self.desired_neighbours}")
        if self.initial_radius is not None and self.initial_radius <= 0:
            raise ValidationError(f"initial_radius must be > 0, got {self.initial_radius}")
        if self.max_radius is not None and self.max_radius <= 0:
            raise ValidationError(f"max_radius must be > 0, got {self.max_radius}")
        if (
            self.initial_radius is not None
            and self.max_radius is not None
            and self.max_radius < self.initial_radius
        ):
            raise ValidationError(
                f"max_radius ({self.max_radius}) must be >= initial_radius ({self.initial_radius})"
            )

    @staticmethod
    def recommended_radius(num_particles: int, dim: int) -> float:
        """Radius heuristic the paper adopts: ``(1 - 0.5**(1/L))**(1/d)``.

        Derived from the expected edge length needed for each particle to see a
        constant expected number of neighbours in a unit cube (Friedman et al.,
        Elements of Statistical Learning, Eq. 2.24).
        """
        num_particles = max(2, int(num_particles))
        dim = max(1, int(dim))
        return float((1.0 - 0.5 ** (1.0 / num_particles)) ** (1.0 / dim))

    @classmethod
    def for_dimension(cls, dim: int, **overrides) -> "GSOParameters":
        """Parameters scaled to the region-solution-space dimensionality.

        The paper increases the swarm with dimensionality (``L = 50 d`` over the
        2d-dimensional solution space) and sets the initial radius with the
        heuristic above.
        """
        dim = max(1, int(dim))
        num_particles = overrides.pop("num_particles", 50 * dim)
        radius = cls.recommended_radius(num_particles, dim)
        defaults = dict(
            num_particles=num_particles,
            initial_radius=radius,
            max_radius=max(radius * 3.0, 1.0),
        )
        defaults.update(overrides)
        return cls(**defaults)


class GlowwormSwarmOptimizer:
    """Multimodal maximiser over a box-bounded continuous solution space.

    Parameters
    ----------
    objective:
        Callable mapping a solution vector (shape ``(D,)``) to a scalar fitness.
        ``-inf`` / ``nan`` mark infeasible solutions.
    lower_bounds / upper_bounds:
        Box constraints of the solution space (positions are clipped to stay inside).
    parameters:
        :class:`GSOParameters`; defaults are created if omitted.
    batch_objective:
        Optional vectorised fitness over a ``(L, D)`` matrix returning ``(L,)``
        values.  Used in preference to ``objective`` for the per-iteration
        swarm evaluation (a large speed-up for surrogate models).
    selection_weight:
        Optional callable giving a positive weight for a candidate neighbour's
        position; selection probabilities are multiplied by it (Eq. 8 uses the
        KDE region mass here).
    batch_selection_weight:
        Optional vectorised version of ``selection_weight`` over a ``(L, D)``
        matrix; evaluated once per iteration for the whole swarm.
    initial_positions:
        Optional explicit start positions of shape ``(L, D)``.
    movement:
        ``"vectorized"`` (default) runs the whole-swarm array kernel;
        ``"reference"`` runs the per-particle loop.  Both produce bit-identical
        seeded trajectories; the reference implementation exists for the
        equivalence tests and the before/after microbenchmarks.
    profile_hook:
        Optional observer with an ``on_iteration(iteration, evaluations,
        radii, fitness)`` method (e.g. :class:`repro.obs.GSORunProfile`),
        called once per swarm iteration with the running evaluation count,
        the decision radii and the fitness vector.  ``None`` (the default)
        costs one ``is not None`` check per iteration — the hook never touches
        the RNG stream, so seeded trajectories are identical with or without
        it.
    """

    def __init__(
        self,
        objective: Callable[[np.ndarray], float],
        lower_bounds: Sequence[float],
        upper_bounds: Sequence[float],
        parameters: Optional[GSOParameters] = None,
        batch_objective: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        selection_weight: Optional[Callable[[np.ndarray], float]] = None,
        batch_selection_weight: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        initial_positions: Optional[np.ndarray] = None,
        movement: str = "vectorized",
        profile_hook=None,
    ):
        if movement not in ("vectorized", "reference"):
            raise ValidationError(
                f"movement must be 'vectorized' or 'reference', got {movement!r}"
            )
        self.objective = objective
        self.batch_objective = batch_objective
        self.movement = movement
        self.lower_bounds = check_array(lower_bounds, name="lower_bounds", ndim=1)
        self.upper_bounds = check_array(upper_bounds, name="upper_bounds", ndim=1)
        if self.lower_bounds.shape != self.upper_bounds.shape:
            raise ValidationError("lower_bounds and upper_bounds must have the same shape")
        if np.any(self.upper_bounds <= self.lower_bounds):
            raise ValidationError("upper_bounds must exceed lower_bounds in every dimension")
        self.dim = self.lower_bounds.shape[0]
        self.parameters = parameters or GSOParameters()
        self.selection_weight = selection_weight
        self.batch_selection_weight = batch_selection_weight
        self._initial_positions = initial_positions
        self.profile_hook = profile_hook
        self._evaluations = 0

    # ------------------------------------------------------------------ helpers
    def _evaluate(self, position: np.ndarray) -> float:
        self._evaluations += 1
        value = self.objective(position)
        if value is None or np.isnan(value):
            return -np.inf
        return float(value)

    def _evaluate_all(self, positions: np.ndarray) -> np.ndarray:
        if self.batch_objective is not None:
            self._evaluations += positions.shape[0]
            values = np.asarray(self.batch_objective(positions), dtype=np.float64)
            return np.where(np.isnan(values), -np.inf, values)
        return np.asarray([self._evaluate(position) for position in positions])

    def _selection_weights(self, positions: np.ndarray) -> Optional[np.ndarray]:
        """Per-particle selection weights (Eq. 8), or ``None`` when not configured."""
        if self.batch_selection_weight is not None:
            weights = np.asarray(self.batch_selection_weight(positions), dtype=np.float64)
            return np.clip(np.nan_to_num(weights, nan=0.0), 0.0, None)
        if self.selection_weight is not None:
            weights = np.asarray(
                [max(0.0, float(self.selection_weight(position))) for position in positions]
            )
            return weights
        return None

    def _initial_swarm(self, rng: np.random.Generator) -> np.ndarray:
        params = self.parameters
        if self._initial_positions is not None:
            positions = check_array(self._initial_positions, name="initial_positions", ndim=2)
            if positions.shape != (params.num_particles, self.dim):
                raise ValidationError(
                    f"initial_positions must have shape ({params.num_particles}, {self.dim}), "
                    f"got {positions.shape}"
                )
            return np.clip(positions.copy(), self.lower_bounds, self.upper_bounds)
        return rng.uniform(self.lower_bounds, self.upper_bounds, size=(params.num_particles, self.dim))

    # ------------------------------------------------------------------ movement phase
    def _movement_phase(
        self,
        positions: np.ndarray,
        luciferin: np.ndarray,
        radii: np.ndarray,
        fitness: np.ndarray,
        rng: np.random.Generator,
        step: float,
        max_radius: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One movement + adaptive-radius phase (Eq. 7 / Eq. 8).

        Returns the proposed (unclipped) positions and the updated decision
        radii.  Dispatches to the vectorised kernel or the per-particle
        reference loop; both consume the RNG stream identically, so seeded
        trajectories do not depend on the implementation chosen.
        """
        selection_weights = self._selection_weights(positions)
        if self.movement == "reference":
            return self._move_reference(
                positions, luciferin, radii, fitness, selection_weights, rng, step, max_radius
            )
        return self._move_vectorized(
            positions, luciferin, radii, fitness, selection_weights, rng, step, max_radius
        )

    def _move_reference(
        self,
        positions: np.ndarray,
        luciferin: np.ndarray,
        radii: np.ndarray,
        fitness: np.ndarray,
        selection_weights: Optional[np.ndarray],
        rng: np.random.Generator,
        step: float,
        max_radius: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-particle movement loop, kept as the equivalence/benchmark baseline.

        This is a faithful port of the original (pre-vectorisation) loop with
        one deliberate change: the selection-weight total is a sequential
        ``cumsum`` rather than numpy's pairwise ``sum``, so that it matches
        the row-wise cumulative sums of the vectorised kernel bit-for-bit.
        The two totals can differ in the last ulp for particles with more
        than ~8 neighbours, which would alter the original trajectory only if
        a uniform draw fell within one rounding error of the perturbed CDF
        boundary.
        """
        params = self.parameters
        distances = np.linalg.norm(positions[:, None, :] - positions[None, :, :], axis=2)
        radii = radii.copy()
        new_positions = positions.copy()
        for i in range(params.num_particles):
            neighbour_mask = (distances[i] <= radii[i]) & (luciferin > luciferin[i])
            neighbour_mask[i] = False
            neighbours = np.flatnonzero(neighbour_mask)
            if neighbours.size:
                gaps = luciferin[neighbours] - luciferin[i]
                weights = gaps.astype(np.float64)
                if selection_weights is not None:
                    weights = weights * selection_weights[neighbours]
                # Sequential (cumsum) total so the normalisation matches the
                # row-wise cumulative sums of the vectorised kernel bit-for-bit.
                total = float(np.cumsum(weights)[-1])
                if total <= 0:
                    probabilities = np.full(neighbours.size, 1.0 / neighbours.size)
                else:
                    probabilities = weights / total
                chosen = int(rng.choice(neighbours, p=probabilities))
                direction = positions[chosen] - positions[i]
                norm = np.linalg.norm(direction)
                if norm > 1e-12:
                    new_positions[i] = positions[i] + step * direction / norm
            elif params.explore_when_isolated and not np.isfinite(fitness[i]):
                # Isolated + infeasible: random walk so the particle keeps exploring.
                direction = rng.normal(size=self.dim)
                norm = np.linalg.norm(direction)
                if norm > 1e-12:
                    new_positions[i] = positions[i] + step * direction / norm
            # Adaptive decision radius.
            radii[i] = float(
                np.clip(
                    radii[i] + params.radius_gain * (params.desired_neighbours - neighbours.size),
                    1e-6,
                    max_radius,
                )
            )
        return new_positions, radii

    def _move_vectorized(
        self,
        positions: np.ndarray,
        luciferin: np.ndarray,
        radii: np.ndarray,
        fitness: np.ndarray,
        selection_weights: Optional[np.ndarray],
        rng: np.random.Generator,
        step: float,
        max_radius: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Whole-swarm movement kernel.

        Replaces the per-particle loop with one boolean neighbour matrix, a
        row-wise inverse-CDF neighbour draw and batched step updates.  The RNG
        stream and every floating-point decision match ``_move_reference``
        (see the module docstring), which the equivalence tests assert.
        """
        params = self.parameters
        num_particles = params.num_particles
        new_positions = positions.copy()

        # Pairwise squared distances via one BLAS Gram matrix instead of the
        # O(L * L * d) broadcast the reference loop pays; ``d <= r`` becomes
        # ``d^2 <= r^2``, which flips a neighbour decision only if a distance
        # sits within one rounding error of the radius.
        squared_norms = np.einsum("ij,ij->i", positions, positions)
        squared_distances = squared_norms[:, None] + squared_norms[None, :]
        squared_distances -= 2.0 * (positions @ positions.T)
        np.maximum(squared_distances, 0.0, out=squared_distances)

        # Neighbour matrix: j is a neighbour of i iff it is inside i's decision
        # radius and strictly brighter.  The diagonal is excluded by the strict
        # luciferin comparison but cleared explicitly for clarity.
        neighbour_mask = (squared_distances <= (radii * radii)[:, None]) & (
            luciferin[None, :] > luciferin[:, None]
        )
        np.fill_diagonal(neighbour_mask, False)
        counts = neighbour_mask.sum(axis=1)
        has_neighbours = counts > 0
        movers = np.flatnonzero(has_neighbours)
        if params.explore_when_isolated:
            explore_mask = ~has_neighbours & ~np.isfinite(fitness)
        else:
            explore_mask = np.zeros(num_particles, dtype=bool)

        # RNG draws, in particle-index order exactly as the reference loop
        # makes them: one uniform per mover (what ``rng.choice`` consumes), one
        # d-dimensional normal per isolated infeasible particle.  Vector draws
        # consume the bit stream exactly like the equivalent sequence of
        # scalar draws, so each *run* of consecutive same-kind particles can
        # be drawn in one call; only the boundaries between kinds matter.
        uniforms = np.zeros(num_particles)
        random_directions: Optional[np.ndarray] = None
        if explore_mask.any():
            random_directions = np.zeros((num_particles, self.dim))
            active = np.flatnonzero(has_neighbours | explore_mask)
            kinds = has_neighbours[active]
            run_starts = np.flatnonzero(np.diff(kinds)) + 1
            for run in np.split(active, run_starts):
                if has_neighbours[run[0]]:
                    uniforms[run] = rng.random(run.size)
                else:
                    random_directions[run] = rng.normal(size=(run.size, self.dim))
        elif movers.size:
            uniforms[movers] = rng.random(movers.size)

        if movers.size:
            mask = neighbour_mask[movers]
            # Luciferin gaps to every brighter neighbour; zero elsewhere so the
            # cumulative sums below reproduce the compacted per-particle sums.
            gaps = np.where(mask, luciferin[None, :] - luciferin[movers][:, None], 0.0)
            if selection_weights is not None:
                gaps = gaps * np.where(mask, selection_weights[None, :], 0.0)
            totals = np.cumsum(gaps, axis=1)[:, -1]
            probabilities = gaps / np.where(totals > 0, totals, 1.0)[:, None]
            degenerate = totals <= 0
            if degenerate.any():
                probabilities[degenerate] = mask[degenerate] / counts[movers][degenerate][:, None]
            # Row-wise inverse-CDF draw: identical to rng.choice's internal
            # cumsum + renormalise + searchsorted(side="right").
            cdf = np.cumsum(probabilities, axis=1)
            cdf /= cdf[:, -1:]
            chosen = np.sum(cdf <= uniforms[movers, None], axis=1)

            directions = positions[chosen] - positions[movers]
            # Batched matmul hits the same BLAS dot kernel as np.linalg.norm
            # on a single vector, keeping the norms bit-identical.
            norms = np.sqrt((directions[:, None, :] @ directions[:, :, None])[:, 0, 0])
            moving = norms > 1e-12
            if moving.any():
                rows = movers[moving]
                new_positions[rows] = (
                    positions[rows] + step * directions[moving] / norms[moving][:, None]
                )

        if random_directions is not None:
            explorers = np.flatnonzero(explore_mask)
            directions = random_directions[explorers]
            norms = np.sqrt((directions[:, None, :] @ directions[:, :, None])[:, 0, 0])
            moving = norms > 1e-12
            if moving.any():
                rows = explorers[moving]
                new_positions[rows] = (
                    positions[rows] + step * directions[moving] / norms[moving][:, None]
                )

        # Adaptive decision radius (vectorised Eq. 7 radius update).
        radii = np.clip(
            radii + params.radius_gain * (params.desired_neighbours - counts), 1e-6, max_radius
        )
        return new_positions, radii

    # ------------------------------------------------------------------ main loop
    def run(self) -> OptimizationResult:
        """Execute the swarm and return the final particle population."""
        params = self.parameters
        rng = ensure_rng(params.random_state)
        self._evaluations = 0

        extent = float(np.mean(self.upper_bounds - self.lower_bounds))
        step = params.step_size * extent
        initial_radius = params.initial_radius
        if initial_radius is None:
            initial_radius = GSOParameters.recommended_radius(params.num_particles, self.dim) * extent
        max_radius = params.max_radius
        if max_radius is None:
            max_radius = 3.0 * initial_radius

        positions = self._initial_swarm(rng)
        initial_positions = positions.copy()
        luciferin = np.full(params.num_particles, params.initial_luciferin)
        radii = np.full(params.num_particles, initial_radius)
        fitness = self._evaluate_all(positions)

        mean_history: list[float] = []
        feasible_history: list[float] = []
        best_mean = -np.inf
        best_feasible_fraction = 0.0
        stall = 0
        converged = False
        start = time.perf_counter()

        hook = self.profile_hook
        iterations_done = 0
        for iteration in range(params.num_iterations):
            iterations_done = iteration + 1
            # Phase 1 — luciferin update (Eq. 6). Infeasible particles only decay.
            finite = np.isfinite(fitness)
            luciferin = (1.0 - params.luciferin_decay) * luciferin
            luciferin[finite] += params.luciferin_gain * fitness[finite]

            # Phase 2 — movement towards brighter neighbours (Eq. 7 / Eq. 8).
            new_positions, radii = self._movement_phase(
                positions, luciferin, radii, fitness, rng, step, max_radius
            )
            positions = np.clip(new_positions, self.lower_bounds, self.upper_bounds)
            fitness = self._evaluate_all(positions)

            finite = np.isfinite(fitness)
            mean_fitness = float(fitness[finite].mean()) if np.any(finite) else float("nan")
            feasible_fraction = float(np.mean(finite))
            mean_history.append(mean_fitness)
            feasible_history.append(feasible_fraction)

            if hook is not None:
                hook.on_iteration(iterations_done, self._evaluations, radii, fitness)

            # Early stopping: neither the swarm's mean fitness nor the fraction of
            # feasible particles has improved for ``convergence_patience`` iterations.
            improved = False
            if np.isfinite(mean_fitness) and mean_fitness > best_mean + params.convergence_tolerance:
                best_mean = mean_fitness
                improved = True
            if feasible_fraction > best_feasible_fraction + 1e-9:
                best_feasible_fraction = feasible_fraction
                improved = True
            if improved:
                stall = 0
            else:
                stall += 1
                if iterations_done >= params.min_iterations and stall >= params.convergence_patience:
                    converged = True
                    break

        elapsed = time.perf_counter() - start
        return OptimizationResult(
            positions=positions,
            fitness=fitness,
            initial_positions=initial_positions,
            mean_fitness_history=mean_history,
            feasible_fraction_history=feasible_history,
            num_iterations=iterations_done,
            converged=converged,
            function_evaluations=self._evaluations,
            elapsed_seconds=elapsed,
        )
