"""Standard (global-best) Particle Swarm Optimization.

PSO converges to a *single* optimum; the paper picks GSO over PSO precisely
because the region-mining problem is multimodal.  This implementation exists
for the ablation comparing the two on multimodal queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.optim.result import OptimizationResult
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_array


@dataclass
class PSOParameters:
    """Hyper-parameters of the particle swarm (standard 2007 defaults)."""

    num_particles: int = 100
    num_iterations: int = 100
    inertia: float = 0.72
    cognitive: float = 1.49
    social: float = 1.49
    convergence_tolerance: float = 1e-4
    convergence_patience: int = 15
    random_state: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_particles < 2:
            raise ValidationError(f"num_particles must be >= 2, got {self.num_particles}")
        if self.num_iterations < 1:
            raise ValidationError(f"num_iterations must be >= 1, got {self.num_iterations}")
        if not 0 < self.inertia < 1.5:
            raise ValidationError(f"inertia must be in (0, 1.5), got {self.inertia}")


class ParticleSwarmOptimizer:
    """Maximises a fitness function over a box-bounded space with global-best PSO.

    Parameters
    ----------
    objective:
        Callable mapping a solution vector (shape ``(D,)``) to a scalar fitness.
        ``-inf`` / ``nan`` mark infeasible solutions.
    lower_bounds / upper_bounds:
        Box constraints of the solution space (positions are clipped to stay inside).
    parameters:
        :class:`PSOParameters`; defaults are created if omitted.
    batch_objective:
        Optional vectorised fitness over a ``(L, D)`` matrix returning ``(L,)``
        values.  Used in preference to ``objective`` for the per-iteration
        swarm evaluation; the velocity/position updates were already
        whole-swarm array operations, so with a batch objective no per-particle
        Python work remains in the loop.
    """

    def __init__(
        self,
        objective: Callable[[np.ndarray], float],
        lower_bounds: Sequence[float],
        upper_bounds: Sequence[float],
        parameters: Optional[PSOParameters] = None,
        batch_objective: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ):
        self.objective = objective
        self.batch_objective = batch_objective
        self.lower_bounds = check_array(lower_bounds, name="lower_bounds", ndim=1)
        self.upper_bounds = check_array(upper_bounds, name="upper_bounds", ndim=1)
        if self.lower_bounds.shape != self.upper_bounds.shape:
            raise ValidationError("lower_bounds and upper_bounds must have the same shape")
        if np.any(self.upper_bounds <= self.lower_bounds):
            raise ValidationError("upper_bounds must exceed lower_bounds in every dimension")
        self.dim = self.lower_bounds.shape[0]
        self.parameters = parameters or PSOParameters()
        self._evaluations = 0

    def _evaluate(self, position: np.ndarray) -> float:
        self._evaluations += 1
        value = self.objective(position)
        if value is None or np.isnan(value):
            return -np.inf
        return float(value)

    def _evaluate_all(self, positions: np.ndarray) -> np.ndarray:
        if self.batch_objective is not None:
            self._evaluations += positions.shape[0]
            values = np.asarray(self.batch_objective(positions), dtype=np.float64)
            return np.where(np.isnan(values), -np.inf, values)
        return np.asarray([self._evaluate(position) for position in positions])

    def run(self) -> OptimizationResult:
        """Execute the swarm and return the final population (global best is ``result.best()``)."""
        params = self.parameters
        rng = ensure_rng(params.random_state)
        self._evaluations = 0

        extent = self.upper_bounds - self.lower_bounds
        positions = rng.uniform(self.lower_bounds, self.upper_bounds, size=(params.num_particles, self.dim))
        initial_positions = positions.copy()
        velocities = rng.uniform(-0.1, 0.1, size=positions.shape) * extent

        fitness = self._evaluate_all(positions)
        personal_best = positions.copy()
        personal_best_fitness = fitness.copy()
        global_idx = int(np.argmax(np.where(np.isfinite(fitness), fitness, -np.inf)))
        global_best = positions[global_idx].copy()
        global_best_fitness = fitness[global_idx]

        mean_history: list[float] = []
        feasible_history: list[float] = []
        best_seen = global_best_fitness
        stall = 0
        converged = False
        start = time.perf_counter()

        iterations_done = 0
        for iteration in range(params.num_iterations):
            iterations_done = iteration + 1
            r1 = rng.uniform(size=positions.shape)
            r2 = rng.uniform(size=positions.shape)
            velocities = (
                params.inertia * velocities
                + params.cognitive * r1 * (personal_best - positions)
                + params.social * r2 * (global_best - positions)
            )
            positions = np.clip(positions + velocities, self.lower_bounds, self.upper_bounds)
            fitness = self._evaluate_all(positions)

            improved = fitness > personal_best_fitness
            personal_best[improved] = positions[improved]
            personal_best_fitness[improved] = fitness[improved]
            best_idx = int(np.argmax(np.where(np.isfinite(personal_best_fitness), personal_best_fitness, -np.inf)))
            if personal_best_fitness[best_idx] > global_best_fitness:
                global_best = personal_best[best_idx].copy()
                global_best_fitness = personal_best_fitness[best_idx]

            finite = np.isfinite(fitness)
            mean_history.append(float(fitness[finite].mean()) if np.any(finite) else float("nan"))
            feasible_history.append(float(np.mean(finite)))

            if np.isfinite(global_best_fitness):
                if global_best_fitness > best_seen + params.convergence_tolerance:
                    best_seen = global_best_fitness
                    stall = 0
                else:
                    stall += 1
                    if stall >= params.convergence_patience:
                        converged = True
                        break

        elapsed = time.perf_counter() - start
        return OptimizationResult(
            positions=positions,
            fitness=fitness,
            initial_positions=initial_positions,
            mean_fitness_history=mean_history,
            feasible_fraction_history=feasible_history,
            num_iterations=iterations_done,
            converged=converged,
            function_evaluations=self._evaluations,
            elapsed_seconds=elapsed,
        )
