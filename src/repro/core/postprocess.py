"""Turning converged glowworms into a clean list of distinct region proposals.

After a GSO run many particles sit on (or near) the same local optimum.  This
module filters out infeasible particles, sorts the rest by objective value and
greedily merges particles whose regions overlap heavily, so the analyst gets
one representative proposal per discovered mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.objective import RegionObjective
from repro.data.regions import Region
from repro.exceptions import ValidationError
from repro.optim.result import OptimizationResult


@dataclass(frozen=True)
class RegionProposal:
    """A single proposed region of interest.

    Attributes
    ----------
    region:
        The proposed hyper-rectangle.
    predicted_value:
        The statistic the surrogate (or true function) predicts for it.
    objective_value:
        The objective value the optimiser assigned to it.
    support:
        Number of swarm particles merged into this proposal (a crude confidence signal).
    """

    region: Region
    predicted_value: float
    objective_value: float
    support: int = 1

    @property
    def vector(self) -> np.ndarray:
        """The proposal's ``[x, l]`` solution vector."""
        return self.region.to_vector()


def proposals_from_result(
    result: OptimizationResult,
    objective: RegionObjective,
    predictor: Callable[[np.ndarray], float],
    overlap_threshold: float = 0.3,
    max_proposals: Optional[int] = None,
    min_support: int = 1,
    batch_predictor: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> List[RegionProposal]:
    """Cluster the final swarm into distinct region proposals.

    Parameters
    ----------
    result:
        The finished optimisation run.
    objective:
        The objective used during the run (re-used to report objective values).
    predictor:
        Statistic estimator over solution vectors, used to annotate proposals.
    overlap_threshold:
        Two particles are considered the same mode when their regions' IoU
        exceeds this value.  Clusters are seeded in decreasing objective order,
        but each cluster is *represented* by the member whose predicted margin
        over the threshold is largest — the objective's maximiser sits right on
        the predicted feasibility boundary, where surrogate error makes true
        violations likely, whereas the max-margin member is the cluster's most
        robustly satisfying region.
    max_proposals:
        Keep at most this many proposals (highest objective first).
    min_support:
        Drop proposals supported by fewer than this many particles.
    batch_predictor:
        Optional vectorised ``(m, 2d) -> (m,)`` version of ``predictor``; used
        to annotate each cluster in one call instead of one call per particle.
    """
    if not 0 <= overlap_threshold <= 1:
        raise ValidationError(f"overlap_threshold must be in [0, 1], got {overlap_threshold}")
    if min_support < 1:
        raise ValidationError(f"min_support must be >= 1, got {min_support}")

    feasible = result.feasible_mask
    if not np.any(feasible):
        return []
    positions = result.positions[feasible]
    fitness = result.fitness[feasible]
    order = np.argsort(fitness)[::-1]

    seed_regions: List[Region] = []
    members: List[List[int]] = []
    for index in order:
        region = Region.from_vector(positions[index])
        merged = False
        for cluster_index, seed in enumerate(seed_regions):
            if seed.iou(region) >= overlap_threshold:
                members[cluster_index].append(int(index))
                merged = True
                break
        if not merged:
            seed_regions.append(region)
            members.append([int(index)])

    representative_vectors: List[np.ndarray] = []
    representative_predictions: List[float] = []
    supports: List[int] = []
    for indices in members:
        if len(indices) < min_support:
            continue
        cluster_vectors = positions[indices]
        if batch_predictor is not None:
            predictions = np.asarray(batch_predictor(cluster_vectors), dtype=np.float64)
        else:
            predictions = np.asarray([float(predictor(vector)) for vector in cluster_vectors])
        margins = np.asarray([objective.query.margin(value) for value in predictions])
        best = int(np.argmax(margins))
        representative_vectors.append(cluster_vectors[best])
        representative_predictions.append(float(predictions[best]))
        supports.append(len(indices))
    if not representative_vectors:
        return []

    # The cluster seed (highest-fitness member) and the max-margin representative
    # are generally *different* particles, so the representative's objective is
    # re-evaluated — one batch call over all representatives — to keep
    # ``objective_value`` consistent with ``region``/``predicted_value``.
    representative_objectives = objective.evaluate_batch(np.stack(representative_vectors))
    proposals = [
        RegionProposal(
            region=Region.from_vector(vector),
            predicted_value=prediction,
            objective_value=float(value),
            support=support,
        )
        for vector, prediction, value, support in zip(
            representative_vectors, representative_predictions, representative_objectives, supports
        )
    ]
    proposals.sort(key=lambda proposal: proposal.objective_value, reverse=True)
    if max_proposals is not None:
        proposals = proposals[: int(max_proposals)]
    return proposals
