"""Objective functions for region mining (Eqs. 2 and 4 of the paper).

Both objectives reward a large constraint margin ``|y_R - f(x, l)|`` in the
requested direction and penalise region size through the exponent ``c``:

* :class:`RatioObjective` — Eq. 2, ``(y_R - f) / (prod_i l_i)^c``.  Defined for
  infeasible regions too (with a negative value), which is exactly the
  weakness Fig. 7 demonstrates.
* :class:`LogObjective` — Eq. 4, ``log(y_R - f) - c Σ_i log(l_i)``.  Undefined
  (``-inf``) whenever the constraint is violated, so the optimiser implicitly
  rejects infeasible regions.

Objectives are callables over ``[x, l]`` solution vectors so they plug
directly into the swarm optimisers; ``evaluate_region`` is provided for
callers holding :class:`~repro.data.regions.Region` objects.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Literal, Optional

import numpy as np

from repro.core.query import RegionQuery
from repro.data.regions import Region
from repro.exceptions import ValidationError

#: A statistic estimator over solution vectors (true engine or surrogate).
StatisticFn = Callable[[np.ndarray], float]
#: A statistic estimator over a batch of solution vectors, shape ``(m, 2d) -> (m,)``.
BatchStatisticFn = Callable[[np.ndarray], np.ndarray]


class RegionObjective(ABC):
    """Base class for region-mining objectives.

    Parameters
    ----------
    statistic_fn:
        Estimator of the statistic for a single ``[x, l]`` vector (true engine
        or surrogate).
    query:
        The threshold query being answered.
    batch_statistic_fn:
        Optional vectorised estimator over a ``(m, 2d)`` matrix; when omitted,
        batch evaluation falls back to looping ``statistic_fn``.
    """

    def __init__(
        self,
        statistic_fn: StatisticFn,
        query: RegionQuery,
        batch_statistic_fn: Optional[BatchStatisticFn] = None,
    ):
        if not callable(statistic_fn):
            raise ValidationError("statistic_fn must be callable")
        self.statistic_fn = statistic_fn
        self.query = query
        self.batch_statistic_fn = batch_statistic_fn

    # ------------------------------------------------------------------ helpers
    def _split(self, vector: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.size % 2 != 0:
            raise ValidationError(f"solution vector must be 1-D with even length, got shape {vector.shape}")
        dim = vector.size // 2
        return vector[:dim], vector[dim:]

    def _split_batch(self, vectors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] % 2 != 0:
            raise ValidationError(f"vectors must be a (m, 2d) matrix, got shape {vectors.shape}")
        dim = vectors.shape[1] // 2
        return vectors[:, :dim], vectors[:, dim:]

    def _statistics_batch(self, vectors: np.ndarray) -> np.ndarray:
        if self.batch_statistic_fn is not None:
            return np.asarray(self.batch_statistic_fn(vectors), dtype=np.float64)
        return np.asarray([self.statistic_fn(vector) for vector in vectors], dtype=np.float64)

    def _margins_batch(self, vectors: np.ndarray) -> np.ndarray:
        statistics = self._statistics_batch(vectors)
        if self.query.direction == "above":
            return statistics - self.query.threshold
        return self.query.threshold - statistics

    def margin(self, vector: np.ndarray) -> float:
        """Constraint slack ``y_R - f`` (below) or ``f - y_R`` (above) for ``vector``."""
        return self.query.margin(self.statistic_fn(np.asarray(vector, dtype=np.float64)))

    def is_feasible(self, vector: np.ndarray) -> bool:
        """Whether the region encoded by ``vector`` satisfies the query constraint."""
        return self.margin(vector) > 0.0

    # ------------------------------------------------------------------ evaluation
    @abstractmethod
    def __call__(self, vector: np.ndarray) -> float:
        """Objective value for an ``[x, l]`` solution vector (``-inf`` if undefined)."""

    @abstractmethod
    def evaluate_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Objective values for a ``(m, 2d)`` matrix of solution vectors."""

    def evaluate_region(self, region: Region) -> float:
        """Objective value for a :class:`Region`."""
        return self(region.to_vector())


class LogObjective(RegionObjective):
    """The log objective of Eq. 4: ``log(margin) - c Σ_i log(l_i)``.

    Returns ``-inf`` when the margin is non-positive or any half length is
    non-positive, which is how the constraint is enforced implicitly.
    """

    def __call__(self, vector: np.ndarray) -> float:
        _, half_lengths = self._split(vector)
        if np.any(half_lengths <= 0):
            return -np.inf
        margin = self.margin(vector)
        if margin <= 0:
            return -np.inf
        return float(np.log(margin) - self.query.size_penalty * np.sum(np.log(half_lengths)))

    def evaluate_batch(self, vectors: np.ndarray) -> np.ndarray:
        _, half_lengths = self._split_batch(vectors)
        margins = self._margins_batch(vectors)
        feasible = (margins > 0) & np.all(half_lengths > 0, axis=1)
        values = np.full(margins.shape[0], -np.inf)
        if np.any(feasible):
            size_term = self.query.size_penalty * np.sum(np.log(half_lengths[feasible]), axis=1)
            values[feasible] = np.log(margins[feasible]) - size_term
        return values


class RatioObjective(RegionObjective):
    """The raw ratio objective of Eq. 2: ``margin / (prod_i l_i)^c``.

    Stays defined (and negative) for infeasible regions — retained to
    reproduce the sensitivity analysis of Fig. 7.
    """

    def __call__(self, vector: np.ndarray) -> float:
        _, half_lengths = self._split(vector)
        if np.any(half_lengths <= 0):
            return -np.inf
        margin = self.margin(vector)
        volume_term = float(np.prod(half_lengths)) ** self.query.size_penalty
        if volume_term <= 0:
            return -np.inf
        return float(margin / volume_term)

    def evaluate_batch(self, vectors: np.ndarray) -> np.ndarray:
        _, half_lengths = self._split_batch(vectors)
        margins = self._margins_batch(vectors)
        values = np.full(margins.shape[0], -np.inf)
        positive = np.all(half_lengths > 0, axis=1)
        if np.any(positive):
            # Exponentiate only rows with positive half lengths, matching the
            # scalar path's check-first order; a negative product under a
            # fractional ``size_penalty`` is NaN and warns.
            volume_term = np.prod(half_lengths[positive], axis=1) ** self.query.size_penalty
            valid = volume_term > 0
            rows = np.flatnonzero(positive)[valid]
            values[rows] = margins[rows] / volume_term[valid]
        return values


ObjectiveKind = Literal["log", "ratio"]


def make_objective(
    kind: ObjectiveKind,
    statistic_fn: StatisticFn,
    query: RegionQuery,
    batch_statistic_fn: Optional[BatchStatisticFn] = None,
) -> RegionObjective:
    """Factory for objectives by name (``"log"`` for Eq. 4, ``"ratio"`` for Eq. 2)."""
    kind = str(kind).lower()
    if kind == "log":
        return LogObjective(statistic_fn, query, batch_statistic_fn)
    if kind == "ratio":
        return RatioObjective(statistic_fn, query, batch_statistic_fn)
    raise ValidationError(f"unknown objective kind {kind!r}; expected 'log' or 'ratio'")
