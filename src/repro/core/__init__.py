"""SuRF core: threshold queries, objectives, the finder and evaluation metrics."""

from repro.core.evaluation import average_iou, compliance_rate, match_to_ground_truth
from repro.core.finder import RegionSearchResult, SuRF
from repro.core.objective import LogObjective, RatioObjective, make_objective
from repro.core.postprocess import RegionProposal, proposals_from_result
from repro.core.query import RegionQuery, SolutionSpace
from repro.core.satisfiability import SatisfiabilityModel

__all__ = [
    "SuRF",
    "RegionSearchResult",
    "RegionQuery",
    "SolutionSpace",
    "SatisfiabilityModel",
    "LogObjective",
    "RatioObjective",
    "make_objective",
    "RegionProposal",
    "proposals_from_result",
    "average_iou",
    "compliance_rate",
    "match_to_ground_truth",
]
