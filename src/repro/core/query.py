"""Analyst queries and the region solution space they are answered over.

A :class:`RegionQuery` captures the analytics task the paper introduces:
"find regions whose statistic is above (or below) the cut-off ``y_R``",
together with the size-regularisation strength ``c`` from Eq. 2/4.

A :class:`SolutionSpace` describes the ``2d``-dimensional box the optimiser
searches: centres range over the data bounding box, half side lengths over a
configurable fraction of each dimension's extent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, Tuple

import numpy as np

from repro.data.regions import Region
from repro.exceptions import ValidationError

Direction = Literal["above", "below"]


@dataclass(frozen=True)
class RegionQuery:
    """A threshold query: find regions with statistic above/below ``threshold``.

    Parameters
    ----------
    threshold:
        The cut-off value ``y_R``.
    direction:
        ``"above"`` seeks regions with ``f(x, l) > y_R`` (the paper's default in
        experiments); ``"below"`` seeks ``f(x, l) < y_R``.
    size_penalty:
        The regularisation exponent ``c`` in Eqs. 2/4; larger values favour
        smaller (finer-grained) regions.
    """

    threshold: float
    direction: Direction = "above"
    size_penalty: float = 4.0

    def __post_init__(self) -> None:
        if self.direction not in ("above", "below"):
            raise ValidationError(f"direction must be 'above' or 'below', got {self.direction!r}")
        if not np.isfinite(self.threshold):
            raise ValidationError(f"threshold must be finite, got {self.threshold}")
        if self.size_penalty < 0:
            raise ValidationError(f"size_penalty must be >= 0, got {self.size_penalty}")

    def margin(self, value: float) -> float:
        """Signed slack of ``value`` w.r.t. the constraint (positive = satisfied)."""
        if self.direction == "above":
            return float(value) - self.threshold
        return self.threshold - float(value)

    def satisfied_by(self, value: float) -> bool:
        """Whether a statistic value satisfies the query's constraint (strictly)."""
        return self.margin(value) > 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        comparator = ">" if self.direction == "above" else "<"
        return f"f(x, l) {comparator} {self.threshold} (c={self.size_penalty})"


@dataclass(frozen=True)
class SolutionSpace:
    """The ``2d``-dimensional box the optimiser searches over.

    Parameters
    ----------
    data_bounds:
        Bounding box of the data over the region columns.
    min_half_fraction / max_half_fraction:
        Half side lengths are constrained to this fraction of each dimension's
        extent (default 0.5 %–50 %, i.e. regions can cover up to the whole domain).
    """

    data_bounds: Region
    min_half_fraction: float = 0.005
    max_half_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.min_half_fraction < self.max_half_fraction:
            raise ValidationError(
                "must satisfy 0 < min_half_fraction < max_half_fraction, got "
                f"{self.min_half_fraction} and {self.max_half_fraction}"
            )

    @property
    def region_dim(self) -> int:
        """Dimensionality ``d`` of the regions."""
        return self.data_bounds.dim

    @property
    def solution_dim(self) -> int:
        """Dimensionality of the solution vectors (``2 d``)."""
        return 2 * self.region_dim

    @property
    def extent(self) -> np.ndarray:
        """Per-dimension extent of the data bounding box."""
        return self.data_bounds.upper - self.data_bounds.lower

    def bounds_vectors(self) -> Tuple[np.ndarray, np.ndarray]:
        """Lower/upper bound vectors of the ``[x, l]`` solution space."""
        extent = self.extent
        lower = np.concatenate([self.data_bounds.lower, self.min_half_fraction * extent])
        upper = np.concatenate([self.data_bounds.upper, self.max_half_fraction * extent])
        return lower, upper

    def clip_vector(self, vector: np.ndarray) -> np.ndarray:
        """Clip a solution vector into the admissible box."""
        lower, upper = self.bounds_vectors()
        return np.clip(np.asarray(vector, dtype=np.float64), lower, upper)

    def contains_vector(self, vector: np.ndarray) -> bool:
        """Whether a solution vector lies inside the admissible box."""
        lower, upper = self.bounds_vectors()
        vector = np.asarray(vector, dtype=np.float64)
        return bool(np.all(vector >= lower - 1e-12) and np.all(vector <= upper + 1e-12))

    @classmethod
    def from_workload_features(
        cls,
        features: np.ndarray,
        min_half_fraction: float = 0.005,
        max_half_fraction: float = 0.5,
    ) -> "SolutionSpace":
        """Infer the solution space from past-evaluation feature vectors ``[x, l]``.

        The data bounding box is reconstructed from the extremes of the
        evaluated regions, so SuRF never needs the raw data to know where to
        search.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] % 2 != 0:
            raise ValidationError("features must be a (n, 2d) array of [x, l] vectors")
        if features.shape[0] < 1:
            raise ValidationError(
                "features must contain at least one evaluation to infer the solution space"
            )
        dim = features.shape[1] // 2
        centers = features[:, :dim]
        halves = features[:, dim:]
        lower = (centers - halves).min(axis=0)
        upper = (centers + halves).max(axis=0)
        return cls(Region.from_bounds(lower, upper), min_half_fraction, max_half_fraction)
