"""The SuRF finder: surrogate models + KDE-guided glowworm swarm optimisation.

This is the paper's headline system.  A :class:`SuRF` instance is

1. *fitted* on a workload of past region evaluations (training the surrogate
   ``f̂``) and, optionally, on a sample of the raw data (fitting the KDE used
   to steer particles, Eq. 8), then
2. *queried* with a :class:`~repro.core.query.RegionQuery`; the finder runs
   GSO over the ``2d``-dimensional region solution space using the surrogate
   in place of the back-end system and returns distinct region proposals.

No data access happens at query time — that is the source of SuRF's
scalability in Table I.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.core.objective import ObjectiveKind, RegionObjective, make_objective
from repro.core.postprocess import RegionProposal, proposals_from_result
from repro.core.query import RegionQuery, SolutionSpace
from repro.core.satisfiability import SatisfiabilityModel
from repro.data.engine import DataEngine
from repro.density.region_mass import RegionMassEstimator
from repro.exceptions import NotFittedError, ValidationError
from repro.optim.gso import GlowwormSwarmOptimizer, GSOParameters
from repro.optim.result import OptimizationResult
from repro.surrogate.model import SurrogateModel
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import RegionWorkload, generate_workload


@dataclass
class RegionSearchResult:
    """Everything produced by one ``find_regions`` call."""

    query: RegionQuery
    proposals: List[RegionProposal]
    optimization: OptimizationResult
    solution_space: SolutionSpace
    elapsed_seconds: float

    @property
    def regions(self) -> List:
        """Just the proposed regions, ordered by decreasing objective value."""
        return [proposal.region for proposal in self.proposals]

    def all_feasible_regions(self) -> List:
        """Regions of *every* feasible converged particle (no de-duplication).

        The paper's accuracy experiments treat all converged particles as
        proposed regions; this accessor exposes the same view, while
        ``proposals`` holds the de-duplicated representatives.
        """
        from repro.data.regions import Region

        return [Region.from_vector(vector) for vector in self.optimization.feasible_positions]

    @property
    def num_regions(self) -> int:
        """Number of distinct proposals."""
        return len(self.proposals)

    def best(self) -> Optional[RegionProposal]:
        """The highest-objective proposal, or ``None`` when nothing was found."""
        return self.proposals[0] if self.proposals else None


class SuRF:
    """SUrrogate Region Finder.

    Parameters
    ----------
    trainer:
        Surrogate training configuration; the default trains a gradient-boosted
        model without hyper-tuning.
    objective:
        ``"log"`` for the paper's Eq. 4 objective (default) or ``"ratio"`` for Eq. 2.
    use_density_guidance:
        Whether to re-weight neighbour selection by KDE region mass (Eq. 8).
        Requires a data sample at fit time; silently disabled otherwise.
    density_method:
        ``"kde"`` or ``"histogram"`` for the density guidance model.
    gso_parameters:
        Swarm parameters; when omitted they are scaled to the solution-space
        dimensionality with :meth:`GSOParameters.for_dimension`.
    min_half_fraction / max_half_fraction:
        Admissible region half-lengths as a fraction of the data extent.
    overlap_threshold:
        IoU above which two converged particles count as the same proposal.
    warm_start_fraction:
        Fraction of the swarm initialised at past-evaluation regions that are
        feasible under the current query (sampled uniformly among them; the
        remainder of the swarm is uniform random over the solution space).
        This "leverages historical region evaluations" for initialisation as
        well as for the surrogate and keeps the swarm from starting with no
        feasible particle at all; set to 0 for the plain uniform initialisation.
    random_state:
        Seed forwarded to the optimiser when it has no explicit seed.
    """

    def __init__(
        self,
        trainer: Optional[SurrogateTrainer] = None,
        objective: ObjectiveKind = "log",
        use_density_guidance: bool = True,
        density_method: str = "kde",
        gso_parameters: Optional[GSOParameters] = None,
        min_half_fraction: float = 0.005,
        max_half_fraction: float = 0.5,
        overlap_threshold: float = 0.5,
        warm_start_fraction: float = 0.25,
        random_state: Optional[int] = None,
    ):
        if not 0 <= warm_start_fraction <= 1:
            raise ValidationError(f"warm_start_fraction must be in [0, 1], got {warm_start_fraction}")
        self.trainer = trainer if trainer is not None else SurrogateTrainer(random_state=random_state)
        self.objective_kind = objective
        self.use_density_guidance = bool(use_density_guidance)
        self.density_method = density_method
        self.gso_parameters = gso_parameters
        self.min_half_fraction = float(min_half_fraction)
        self.max_half_fraction = float(max_half_fraction)
        self.overlap_threshold = float(overlap_threshold)
        self.warm_start_fraction = float(warm_start_fraction)
        self.random_state = random_state

        self.surrogate_: Optional[SurrogateModel] = None
        self.solution_space_: Optional[SolutionSpace] = None
        self.density_: Optional[RegionMassEstimator] = None
        self.satisfiability_: Optional[SatisfiabilityModel] = None
        self.workload_features_: Optional[np.ndarray] = None
        self.workload_targets_: Optional[np.ndarray] = None
        self.workload_size_: int = 0

    # ------------------------------------------------------------------ fitting
    def fit(self, workload: RegionWorkload, data_sample: Optional[np.ndarray] = None) -> "SuRF":
        """Train the surrogate from past evaluations and (optionally) the density model.

        Parameters
        ----------
        workload:
            Past region evaluations ``([x, l], y)``.
        data_sample:
            Optional ``(n, d)`` sample of raw data vectors used only for the
            KDE guidance of Eq. 8.  SuRF never touches it at query time.
        """
        self.surrogate_ = self.trainer.train(workload)
        self.solution_space_ = SolutionSpace.from_workload_features(
            workload.features,
            min_half_fraction=self.min_half_fraction,
            max_half_fraction=self.max_half_fraction,
        )
        self.satisfiability_ = SatisfiabilityModel.from_workload(workload)
        self.workload_features_ = workload.features
        self.workload_targets_ = workload.targets
        self.workload_size_ = len(workload)
        self.density_ = None
        if self.use_density_guidance and data_sample is not None:
            sample = np.asarray(data_sample, dtype=np.float64)
            if sample.ndim != 2 or sample.shape[1] != workload.region_dim:
                raise ValidationError(
                    "data_sample must be a (n, d) array matching the workload's region dimensionality"
                )
            self.density_ = RegionMassEstimator(
                method=self.density_method, random_state=self.random_state
            ).fit(sample)
        return self

    @classmethod
    def from_engine(
        cls,
        engine: DataEngine,
        num_evaluations: int = 2_000,
        data_sample_size: Optional[int] = 1_000,
        random_state: Optional[int] = None,
        **kwargs,
    ) -> "SuRF":
        """Convenience constructor: generate a workload from ``engine`` and fit.

        This is the typical offline phase: the back-end is queried once to
        produce past evaluations (or they are harvested from logs) and the
        surrogate is trained on them.
        """
        finder = cls(random_state=random_state, **kwargs)
        workload = generate_workload(engine, num_evaluations, random_state=random_state)
        data_sample = None
        if finder.use_density_guidance and data_sample_size:
            columns = engine.region_columns
            dataset = engine.dataset
            sample_size = min(int(data_sample_size), dataset.num_rows)
            data_sample = dataset.sample(sample_size, random_state=random_state).select_columns(columns).values
        return finder.fit(workload, data_sample=data_sample)

    def _check_fitted(self) -> None:
        if self.surrogate_ is None or self.solution_space_ is None:
            raise NotFittedError("SuRF must be fitted with a workload before finding regions")

    # ------------------------------------------------------------------ querying
    def build_objective(self, query: RegionQuery) -> RegionObjective:
        """The objective ``Ĵ`` (surrogate-backed) used for a given query."""
        self._check_fitted()
        return make_objective(
            self.objective_kind,
            self.surrogate_.predict_vector,
            query,
            batch_statistic_fn=self.surrogate_.predict,
        )

    def find_regions(
        self,
        query: RegionQuery,
        gso_parameters: Optional[GSOParameters] = None,
        max_proposals: Optional[int] = None,
        profile_hook=None,
    ) -> RegionSearchResult:
        """Mine regions satisfying ``query`` using the surrogate and GSO.

        ``profile_hook`` (e.g. :class:`repro.obs.GSORunProfile`) is forwarded
        to the optimiser for per-iteration profiling; it never touches the
        RNG stream, so results are identical with or without it.
        """
        self._check_fitted()
        start = time.perf_counter()

        space = self.solution_space_
        objective = self.build_objective(query)
        parameters = gso_parameters or self.gso_parameters
        if parameters is None:
            parameters = GSOParameters.for_dimension(
                space.solution_dim,
                num_particles=max(100, 25 * space.solution_dim),
                random_state=self.random_state,
            )
        initial_positions = self._initial_positions(objective, parameters, space)

        selection_weight = None
        batch_selection_weight = None
        if self.density_ is not None:
            density = self.density_

            def selection_weight(vector: np.ndarray) -> float:
                return density.mass_of_vector(vector)

            def batch_selection_weight(vectors: np.ndarray) -> np.ndarray:
                return density.mass_of_vectors(vectors)

        lower, upper = space.bounds_vectors()
        optimizer = GlowwormSwarmOptimizer(
            objective=objective,
            lower_bounds=lower,
            upper_bounds=upper,
            parameters=parameters,
            batch_objective=objective.evaluate_batch,
            selection_weight=selection_weight,
            batch_selection_weight=batch_selection_weight,
            initial_positions=initial_positions,
            profile_hook=profile_hook,
        )
        result = optimizer.run()
        proposals = proposals_from_result(
            result,
            objective,
            self.surrogate_.predict_vector,
            overlap_threshold=self.overlap_threshold,
            max_proposals=max_proposals,
            batch_predictor=self.surrogate_.predict,
        )
        elapsed = time.perf_counter() - start
        return RegionSearchResult(
            query=query,
            proposals=proposals,
            optimization=result,
            solution_space=space,
            elapsed_seconds=elapsed,
        )

    def _initial_positions(
        self,
        objective: RegionObjective,
        parameters: GSOParameters,
        space: SolutionSpace,
    ) -> Optional[np.ndarray]:
        """Warm-start part of the swarm at the best past-evaluation regions.

        Returns ``None`` (uniform initialisation) when warm starting is disabled
        or no past evaluation scores a finite objective under the query.
        """
        if self.warm_start_fraction <= 0 or self.workload_features_ is None:
            return None
        num_particles = parameters.num_particles
        num_seeded = int(round(self.warm_start_fraction * num_particles))
        if num_seeded == 0:
            return None

        scores = objective.evaluate_batch(self.workload_features_)
        feasible = np.flatnonzero(np.isfinite(scores))
        if feasible.size == 0:
            return None
        rng = self._warm_start_rng()
        # Sample uniformly among feasible past evaluations so every discovered mode
        # is represented, rather than biasing all seeds towards the single best one.
        chosen = rng.choice(feasible, size=min(num_seeded, feasible.size), replace=False)
        seeds = self.workload_features_[chosen]

        lower, upper = space.bounds_vectors()
        positions = rng.uniform(lower, upper, size=(num_particles, space.solution_dim))
        positions[: seeds.shape[0]] = np.clip(seeds, lower, upper)
        return positions

    def _warm_start_rng(self) -> np.random.Generator:
        """An RNG stream for warm-start sampling, independent of the optimiser's.

        The optimiser seeds its own stream with ``default_rng(random_state)``;
        seeding warm starts with the same integer would make both consume
        correlated draws, so this spawns a child of the seed sequence instead —
        still deterministic for a fixed seed, but statistically independent of
        the swarm's movement stream.  A caller-supplied ``Generator`` (see
        :func:`repro.utils.rng.ensure_rng`) is a single live stream shared with
        the optimiser; drawing from it directly cannot replay any draws, so it
        is returned unchanged.
        """
        if isinstance(self.random_state, np.random.Generator):
            return self.random_state
        return np.random.default_rng(np.random.SeedSequence(self.random_state).spawn(1)[0])

    # ------------------------------------------------------------------ introspection
    def predict_statistic(self, region) -> float:
        """Surrogate prediction of the statistic for a region (no data access)."""
        self._check_fitted()
        return self.surrogate_.predict_region(region)

    def satisfiability(self, query: RegionQuery) -> float:
        """Eq. 5: probability that ``query`` is satisfiable at all.

        Estimated from the empirical CDF of the statistic over the training
        workload — an ``O(log W)`` binary search, no data access and no swarm
        run.  A serving layer uses this to reject hopeless thresholds before
        spending a full GSO run on them.
        """
        self._check_fitted()
        if self.satisfiability_ is None:
            raise NotFittedError("this SuRF was fitted without a satisfiability model")
        return self.satisfiability_.probability(query)

    # ------------------------------------------------------------------ persistence
    def save(self, path) -> Path:
        """Serialise the whole fitted finder to a single on-disk artifact bundle.

        The bundle carries the surrogate, solution space, density model,
        satisfiability model, workload features and every constructor setting,
        so :meth:`load` reconstructs a finder whose seeded queries are
        bit-identical to the original's.  See
        :func:`repro.surrogate.persistence.save_bundle`.
        """
        from repro.surrogate.persistence import save_bundle

        return save_bundle(self, path)

    @classmethod
    def load(cls, path) -> "SuRF":
        """Load a fitted finder from a bundle written by :meth:`save`.

        Called on a subclass, reconstructs that subclass (it must accept the
        same constructor arguments).
        """
        from repro.surrogate.persistence import load_bundle

        return load_bundle(path, finder_cls=cls)
