"""Accuracy metrics for mined regions.

The paper measures accuracy with the Intersection-over-Union (Jaccard index,
Eq. 10) between proposed regions and the planted ground-truth regions, and in
the qualitative experiments with the fraction of proposals whose *true*
statistic satisfies the analyst's constraint.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.postprocess import RegionProposal
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.regions import Region

RegionLike = Union[Region, RegionProposal]


def _as_regions(items: Iterable[RegionLike]) -> List[Region]:
    regions = []
    for item in items:
        regions.append(item.region if isinstance(item, RegionProposal) else item)
    return regions


def match_to_ground_truth(
    proposals: Sequence[RegionLike],
    ground_truth: Sequence[Region],
) -> List[float]:
    """Best IoU achieved for each ground-truth region.

    Returns one value per ground-truth region: the maximum IoU over all
    proposals (0.0 when there are no proposals).
    """
    proposal_regions = _as_regions(proposals)
    scores = []
    for truth in ground_truth:
        if not proposal_regions:
            scores.append(0.0)
            continue
        scores.append(max(truth.iou(candidate) for candidate in proposal_regions))
    return scores


def average_iou(proposals: Sequence[RegionLike], ground_truth: Sequence[Region]) -> float:
    """Average (over ground-truth regions) of the best IoU achieved by any proposal.

    This is the per-dataset accuracy number reported in Figs. 3 and 4; for
    ``k = 3`` datasets the paper averages the per-region IoUs, which is what
    this function does.
    """
    if not ground_truth:
        return 0.0
    return float(np.mean(match_to_ground_truth(proposals, ground_truth)))


def compliance_rate(
    proposals: Sequence[RegionLike],
    engine: DataEngine,
    query: RegionQuery,
) -> float:
    """Fraction of proposals whose *true* statistic satisfies the query.

    This is the metric behind the Crimes qualitative experiment (Fig. 5), where
    100 % of the regions proposed with the surrogate also satisfied the
    constraint under the true function.
    """
    regions = _as_regions(proposals)
    if not regions:
        return 0.0
    values = engine.evaluate_many(regions)
    satisfied = sum(1 for value in values if query.satisfied_by(value))
    return satisfied / len(regions)


def proposal_statistics(
    proposals: Sequence[RegionLike],
    engine: DataEngine,
) -> np.ndarray:
    """True statistic value for each proposal (useful for reports and plots)."""
    regions = _as_regions(proposals)
    return engine.evaluate_many(regions)
