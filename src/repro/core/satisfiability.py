"""Satisfiability of a threshold query — Eq. 5 of the paper.

The paper reasons about whether a request "statistic above/below ``y_R``" is
*satisfiable at all* before any optimisation is attempted: using the empirical
CDF ``F_Y`` of the statistic over past region evaluations, the probability
that a uniformly drawn region satisfies ``y >= y_R`` is ``1 - F_Y(y_R)`` (and
``F_Y(y_R)`` for the ``below`` direction).  The Crimes case study uses exactly
this distribution to pick its Q3 threshold.

:class:`SatisfiabilityModel` packages that CDF as a fitted object.  It is
built once from the workload's targets (the same past evaluations the
surrogate trains on — no extra data access) and answers each probe with one
binary search over the sorted sample, i.e. ``O(log W)`` per query instead of
the full GSO run a hopeless threshold would otherwise burn.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.query import Direction, RegionQuery
from repro.exceptions import NotFittedError, ValidationError


class SatisfiabilityModel:
    """Empirical-CDF model of the statistic over past evaluations (Eq. 5).

    Fit it on the workload's target values; ``probability(query)`` then
    estimates the fraction of past-evaluation regions that satisfy the query's
    constraint — a direct estimate of how satisfiable the request is.  A
    serving layer can reject queries whose probability is (near) zero without
    running the optimiser at all.
    """

    def __init__(self):
        self._sorted: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ fitting
    def fit(self, values) -> "SatisfiabilityModel":
        """Fit the empirical CDF on a sample of statistic values.

        Non-finite values (an engine may report NaN for degenerate probes) are
        dropped; at least one finite value is required.
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        values = values[np.isfinite(values)]
        if values.size == 0:
            raise ValidationError(
                "SatisfiabilityModel requires at least one finite statistic value"
            )
        self._sorted = np.sort(values)
        return self

    @classmethod
    def from_workload(cls, workload) -> "SatisfiabilityModel":
        """Fit directly on a :class:`~repro.surrogate.workload.RegionWorkload`."""
        return cls().fit(workload.targets)

    def extended_with(self, values) -> "SatisfiabilityModel":
        """A new model whose CDF also covers ``values`` (the enlarged sample).

        The online learning loop refreshes Eq. 5 with every batch of freshly
        harvested evaluations; this merges the new statistic values into the
        already-sorted sample in ``O(n log n + W)`` and leaves ``self``
        untouched, so a serving layer can hot-swap the returned model while
        the old one keeps answering in-flight probes.
        """
        self._check_fitted()
        values = np.asarray(values, dtype=np.float64).ravel()
        values = values[np.isfinite(values)]
        extended = SatisfiabilityModel()
        if values.size == 0:
            extended._sorted = self._sorted.copy()
            return extended
        merged = np.concatenate([self._sorted, np.sort(values)])
        merged.sort(kind="mergesort")  # both halves pre-sorted: this is a cheap merge
        extended._sorted = merged
        return extended

    def _check_fitted(self) -> None:
        if self._sorted is None:
            raise NotFittedError("SatisfiabilityModel must be fitted before use")

    # ------------------------------------------------------------------ queries
    @property
    def num_samples(self) -> int:
        """Number of past evaluations backing the CDF (``W``)."""
        self._check_fitted()
        return int(self._sorted.size)

    def cdf(self, value: float) -> float:
        """Empirical CDF ``F_Y(value) = P[Y <= value]`` — one ``O(log W)`` search."""
        self._check_fitted()
        return float(np.searchsorted(self._sorted, value, side="right")) / self._sorted.size

    def probability(self, query: RegionQuery) -> float:
        """Eq. 5: probability that ``query``'s constraint is satisfiable.

        ``P[Y > y_R] = 1 - F_Y(y_R)`` for an ``above`` query; ``P[Y < y_R]``
        (strict, matching :meth:`RegionQuery.satisfied_by`) for ``below``.
        """
        self._check_fitted()
        if query.direction == "above":
            return 1.0 - self.cdf(query.threshold)
        below = float(np.searchsorted(self._sorted, query.threshold, side="left"))
        return below / self._sorted.size

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of the statistic sample (used to pick thresholds)."""
        self._check_fitted()
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"q must be in [0, 1], got {q}")
        return float(np.quantile(self._sorted, q))

    def satisfiable_threshold(self, probability: float, direction: Direction = "above") -> float:
        """A threshold whose Eq. 5 satisfiability is approximately ``probability``.

        Convenience inverse used by examples and benchmarks: for ``above``
        queries this is the ``1 - probability`` quantile of the statistic, for
        ``below`` queries the ``probability`` quantile.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValidationError(f"probability must be in [0, 1], got {probability}")
        if direction == "above":
            return self.quantile(1.0 - probability)
        return self.quantile(probability)
