"""Data substrate: hyper-rectangular regions, datasets, statistics and the back-end engine.

This package plays the role of the "back-end data/analytics system" from the
paper: it stores data vectors, evaluates region statistics ``y = f(x, l)``
exactly, and generates the synthetic and real-world-like datasets used in the
evaluation section.  The storage/scan engine behind :class:`DataEngine` is
pluggable — see :mod:`repro.backends` for the out-of-core, SQL and sharded
parallel implementations.
"""

from repro.data.dataset import Dataset
from repro.data.engine import DataEngine
from repro.data.index import GridIndex
from repro.data.regions import Region, iou, rectangle_intersection_volume, rectangle_union_volume
from repro.data.statistics import (
    AverageStatistic,
    CountStatistic,
    MedianStatistic,
    RatioStatistic,
    StatisticSpec,
    SumStatistic,
    VarianceStatistic,
    make_statistic,
)
from repro.data.synthetic import GroundTruthRegion, SyntheticConfig, make_synthetic_dataset
from repro.data.real import make_activity_like, make_crimes_like

__all__ = [
    "Dataset",
    "DataEngine",
    "GridIndex",
    "Region",
    "iou",
    "rectangle_intersection_volume",
    "rectangle_union_volume",
    "StatisticSpec",
    "CountStatistic",
    "AverageStatistic",
    "SumStatistic",
    "RatioStatistic",
    "VarianceStatistic",
    "MedianStatistic",
    "make_statistic",
    "GroundTruthRegion",
    "SyntheticConfig",
    "make_synthetic_dataset",
    "make_crimes_like",
    "make_activity_like",
]
