"""Region statistics ``y = f(x, l)`` (Definition 2/3 of the paper).

A :class:`StatisticSpec` turns the subset ``D`` of data vectors inside a region
into a scalar statistic.  The paper's experiments use two of them —
``density`` (the number of points inside the region) and ``aggregate`` (the
average of one attribute over points inside the region) — but notes the
statistic can be anything (sum, variance, higher-order moments, class ratio,
median, ...).  All of those are provided here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.regions import Region
from repro.exceptions import EmptyRegionError, ValidationError


class StatisticSpec(ABC):
    """Specification of a statistic computed over the points inside a region."""

    #: Value reported for an empty region when the statistic needs data points.
    empty_value: float = 0.0

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier (``count``, ``average``, ...)."""

    @abstractmethod
    def region_columns(self, dataset: Dataset) -> list:
        """Columns of ``dataset`` that the hyper-rectangle constrains."""

    @abstractmethod
    def compute(self, dataset: Dataset, mask: np.ndarray) -> float:
        """Compute the statistic over the rows of ``dataset`` selected by ``mask``."""

    def compute_batch(self, dataset: Dataset, masks: np.ndarray) -> np.ndarray:
        """Compute the statistic for every row of an ``(M, N)`` mask matrix.

        The default implementation loops :meth:`compute` per mask row, so it
        is bit-for-bit identical to scalar evaluation by construction;
        subclasses override it with whole-batch array code only where the
        result is provably identical (integer-valued reductions are exact in
        float64 regardless of summation order, arbitrary float reductions are
        not — see ``docs/architecture.md``).
        """
        masks = np.asarray(masks, dtype=bool)
        return np.asarray([self.compute(dataset, mask) for mask in masks], dtype=np.float64)

    def region_dim(self, dataset: Dataset) -> int:
        """Dimensionality of the region vector for this statistic over ``dataset``."""
        return len(self.region_columns(dataset))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class CountStatistic(StatisticSpec):
    """Number of data points inside the region (the paper's *density* statistic)."""

    @property
    def name(self) -> str:
        return "count"

    def region_columns(self, dataset: Dataset) -> list:
        return dataset.column_names

    def compute(self, dataset: Dataset, mask: np.ndarray) -> float:
        return float(np.count_nonzero(mask))

    def compute_batch(self, dataset: Dataset, masks: np.ndarray) -> np.ndarray:
        # Row counts are integers, so the vectorised sum is exactly the scalar
        # count for every region.
        masks = np.asarray(masks, dtype=bool)
        return masks.sum(axis=1, dtype=np.int64).astype(np.float64)


class _AttributeStatistic(StatisticSpec):
    """Base class for statistics of a single target attribute.

    Per Definition 2, the measured attribute is *not* part of the
    hyper-rectangle: the region constrains all other columns.
    """

    def __init__(self, target_column, exclude_target_from_region: bool = True):
        self.target_column = target_column
        self.exclude_target_from_region = bool(exclude_target_from_region)

    def region_columns(self, dataset: Dataset) -> list:
        target = dataset.column_names[dataset.column_position(self.target_column)]
        if not self.exclude_target_from_region:
            return dataset.column_names
        return [name for name in dataset.column_names if name != target]

    def _target_values(self, dataset: Dataset, mask: np.ndarray) -> np.ndarray:
        return dataset.column(self.target_column)[mask]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(target_column={self.target_column!r})"


class AverageStatistic(_AttributeStatistic):
    """Average of the target attribute over points in the region (paper's *aggregate*)."""

    @property
    def name(self) -> str:
        return "average"

    def compute(self, dataset: Dataset, mask: np.ndarray) -> float:
        values = self._target_values(dataset, mask)
        if values.size == 0:
            return self.empty_value
        return float(values.mean())


class SumStatistic(_AttributeStatistic):
    """Sum of the target attribute over points in the region."""

    @property
    def name(self) -> str:
        return "sum"

    def compute(self, dataset: Dataset, mask: np.ndarray) -> float:
        values = self._target_values(dataset, mask)
        return float(values.sum()) if values.size else self.empty_value


class VarianceStatistic(_AttributeStatistic):
    """Population variance of the target attribute over points in the region."""

    @property
    def name(self) -> str:
        return "variance"

    def compute(self, dataset: Dataset, mask: np.ndarray) -> float:
        values = self._target_values(dataset, mask)
        if values.size == 0:
            return self.empty_value
        return float(values.var())


class MedianStatistic(_AttributeStatistic):
    """Median of the target attribute — a non-decomposable statistic (Definition 3)."""

    @property
    def name(self) -> str:
        return "median"

    def compute(self, dataset: Dataset, mask: np.ndarray) -> float:
        values = self._target_values(dataset, mask)
        if values.size == 0:
            return self.empty_value
        return float(np.median(values))


class RatioStatistic(_AttributeStatistic):
    """Fraction of points in the region whose target attribute equals ``positive_value``.

    Used for the Human Activity use case: the ratio of readings labelled with a
    given activity inside a region of the sensor space.
    """

    def __init__(self, target_column, positive_value: float, exclude_target_from_region: bool = True):
        super().__init__(target_column, exclude_target_from_region)
        self.positive_value = float(positive_value)

    @property
    def name(self) -> str:
        return "ratio"

    def compute(self, dataset: Dataset, mask: np.ndarray) -> float:
        values = self._target_values(dataset, mask)
        if values.size == 0:
            return self.empty_value
        return float(np.mean(np.isclose(values, self.positive_value)))

    def compute_batch(self, dataset: Dataset, masks: np.ndarray) -> np.ndarray:
        # A ratio is a quotient of two integer counts, both exact in float64,
        # so the vectorised version matches the scalar one bit-for-bit.
        masks = np.asarray(masks, dtype=bool)
        matches = np.isclose(dataset.column(self.target_column), self.positive_value)
        counts = masks.sum(axis=1, dtype=np.int64)
        positives = (masks & matches[None, :]).sum(axis=1, dtype=np.int64)
        values = np.full(masks.shape[0], self.empty_value, dtype=np.float64)
        covered = counts > 0
        values[covered] = positives[covered] / counts[covered]
        return values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RatioStatistic(target_column={self.target_column!r}, "
            f"positive_value={self.positive_value})"
        )


_STATISTIC_FACTORIES = {
    "count": lambda **kw: CountStatistic(),
    "density": lambda **kw: CountStatistic(),
    "average": lambda **kw: AverageStatistic(kw["target_column"]),
    "aggregate": lambda **kw: AverageStatistic(kw["target_column"]),
    "sum": lambda **kw: SumStatistic(kw["target_column"]),
    "variance": lambda **kw: VarianceStatistic(kw["target_column"]),
    "median": lambda **kw: MedianStatistic(kw["target_column"]),
    "ratio": lambda **kw: RatioStatistic(kw["target_column"], kw["positive_value"]),
}


def make_statistic(name: str, **kwargs) -> StatisticSpec:
    """Create a statistic by name.

    Recognised names: ``count``/``density``, ``average``/``aggregate``, ``sum``,
    ``variance``, ``median`` and ``ratio``.  Attribute statistics require a
    ``target_column`` keyword; ``ratio`` also needs ``positive_value``.
    """
    key = str(name).lower()
    if key not in _STATISTIC_FACTORIES:
        raise ValidationError(
            f"unknown statistic {name!r}; available: {sorted(_STATISTIC_FACTORIES)}"
        )
    try:
        return _STATISTIC_FACTORIES[key](**kwargs)
    except KeyError as exc:
        raise ValidationError(f"statistic {name!r} is missing required argument {exc}") from exc
