"""Region statistics ``y = f(x, l)`` (Definition 2/3 of the paper).

A :class:`StatisticSpec` turns the subset ``D`` of data vectors inside a region
into a scalar statistic.  The paper's experiments use two of them —
``density`` (the number of points inside the region) and ``aggregate`` (the
average of one attribute over points inside the region) — but notes the
statistic can be anything (sum, variance, higher-order moments, class ratio,
median, ...).  All of those are provided here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ValidationError
from repro.utils.registry import Registry


class StatisticSpec(ABC):
    """Specification of a statistic computed over the points inside a region.

    Two layers of API coexist here.  The dataset-level methods
    (:meth:`compute`, :meth:`compute_batch`) are what most callers use.  The
    array-level kernels (:meth:`compute_from_values`,
    :meth:`compute_from_counts`, :meth:`compute_batch_from_arrays`) express the
    same reductions over raw arrays so that :mod:`repro.backends` — which may
    hold the data in a memory map, a SQLite table or a set of shards rather
    than a :class:`Dataset` — can evaluate the statistic without one.  The
    dataset-level methods are thin wrappers over the kernels, so the two
    layers cannot drift apart.
    """

    #: Value reported for an empty region when the statistic needs data points.
    empty_value: float = 0.0

    #: Statistics fully determined by the number of rows inside the region
    #: (no attribute values needed); backends answer them from counts alone.
    count_only: bool = False

    #: How the statistic decomposes across disjoint row partitions (shards):
    #: ``"exact"`` — merging per-shard sufficient stats reproduces the
    #: unsharded reduction bit for bit (integer-valued sums); ``"float"`` —
    #: the merge is algebraically equal but may differ in the last ulp
    #: (float summation order); ``None`` — non-decomposable, the shards'
    #: selected values must be gathered and reduced centrally.
    decomposition: Optional[str] = None

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier (``count``, ``average``, ...)."""

    @abstractmethod
    def region_columns(self, dataset: Dataset) -> list:
        """Columns of ``dataset`` that the hyper-rectangle constrains."""

    @abstractmethod
    def compute(self, dataset: Dataset, mask: np.ndarray) -> float:
        """Compute the statistic over the rows of ``dataset`` selected by ``mask``."""

    def compute_batch(self, dataset: Dataset, masks: np.ndarray) -> np.ndarray:
        """Compute the statistic for every row of an ``(M, N)`` mask matrix.

        The default implementation loops :meth:`compute` per mask row, so it
        is bit-for-bit identical to scalar evaluation by construction;
        subclasses override it with whole-batch array code only where the
        result is provably identical (integer-valued reductions are exact in
        float64 regardless of summation order, arbitrary float reductions are
        not — see ``docs/architecture.md``).
        """
        masks = np.asarray(masks, dtype=bool)
        return np.asarray([self.compute(dataset, mask) for mask in masks], dtype=np.float64)

    # ------------------------------------------------------------------ array-level kernels
    def target_position(self, dataset: Dataset) -> Optional[int]:
        """Column position of the measured attribute, or ``None`` for count-only stats."""
        return None

    def compute_from_values(self, values: np.ndarray) -> float:
        """Reduce the gathered target values of one region (row order preserved).

        Must be bit-identical to :meth:`compute` when ``values`` equals the
        masked target column in row order — backends rely on that to stay
        equivalent to the in-memory path.
        """
        raise NotImplementedError(f"{type(self).__name__} has no value-level kernel")

    def compute_from_counts(self, counts: np.ndarray) -> np.ndarray:
        """Vector of statistics from per-region row counts (count-only stats)."""
        raise NotImplementedError(f"{type(self).__name__} is not a count-only statistic")

    def compute_batch_from_arrays(
        self, target: Optional[np.ndarray], masks: np.ndarray
    ) -> np.ndarray:
        """Array-level twin of :meth:`compute_batch`: reduce an ``(M, N)`` mask matrix.

        ``target`` is the full measured-attribute column (``None`` for
        count-only statistics).  Default: one gather + :meth:`compute_from_values`
        per mask row — bit-identical to the dataset-level loop.
        """
        masks = np.asarray(masks, dtype=bool)
        if self.count_only:
            return self.compute_from_counts(masks.sum(axis=1, dtype=np.int64))
        if target is None:
            raise ValidationError(f"statistic {self.name!r} needs a target column")
        return np.asarray(
            [self.compute_from_values(target[mask]) for mask in masks], dtype=np.float64
        )

    # ------------------------------------------------------------------ shard decomposition
    def partial_stats(self, values: np.ndarray) -> tuple:
        """Sufficient statistics of one shard's gathered values (see ``decomposition``)."""
        raise NotImplementedError(f"{type(self).__name__} is not decomposable")

    def merge_stats(self, partials: Sequence[tuple]) -> float:
        """Merge per-shard sufficient statistics into the region's statistic."""
        raise NotImplementedError(f"{type(self).__name__} is not decomposable")

    def region_dim(self, dataset: Dataset) -> int:
        """Dimensionality of the region vector for this statistic over ``dataset``."""
        return len(self.region_columns(dataset))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class CountStatistic(StatisticSpec):
    """Number of data points inside the region (the paper's *density* statistic)."""

    count_only = True
    decomposition = "exact"  # a sum of shard counts is the count

    @property
    def name(self) -> str:
        return "count"

    def region_columns(self, dataset: Dataset) -> list:
        return dataset.column_names

    def compute(self, dataset: Dataset, mask: np.ndarray) -> float:
        return float(np.count_nonzero(mask))

    def compute_batch(self, dataset: Dataset, masks: np.ndarray) -> np.ndarray:
        # Row counts are integers, so the vectorised sum is exactly the scalar
        # count for every region.
        masks = np.asarray(masks, dtype=bool)
        return masks.sum(axis=1, dtype=np.int64).astype(np.float64)

    def compute_from_counts(self, counts: np.ndarray) -> np.ndarray:
        return np.asarray(counts, dtype=np.int64).astype(np.float64)


class _AttributeStatistic(StatisticSpec):
    """Base class for statistics of a single target attribute.

    Per Definition 2, the measured attribute is *not* part of the
    hyper-rectangle: the region constrains all other columns.
    """

    def __init__(self, target_column, exclude_target_from_region: bool = True):
        self.target_column = target_column
        self.exclude_target_from_region = bool(exclude_target_from_region)

    def region_columns(self, dataset: Dataset) -> list:
        target = dataset.column_names[dataset.column_position(self.target_column)]
        if not self.exclude_target_from_region:
            return dataset.column_names
        return [name for name in dataset.column_names if name != target]

    def target_position(self, dataset: Dataset) -> Optional[int]:
        return dataset.column_position(self.target_column)

    def compute(self, dataset: Dataset, mask: np.ndarray) -> float:
        return self.compute_from_values(self._target_values(dataset, mask))

    def _target_values(self, dataset: Dataset, mask: np.ndarray) -> np.ndarray:
        return dataset.column(self.target_column)[mask]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(target_column={self.target_column!r})"


class AverageStatistic(_AttributeStatistic):
    """Average of the target attribute over points in the region (paper's *aggregate*)."""

    decomposition = "float"  # (count, sum) partials; merge rounds differently in the last ulp

    @property
    def name(self) -> str:
        return "average"

    def compute_from_values(self, values: np.ndarray) -> float:
        if values.size == 0:
            return self.empty_value
        return float(values.mean())

    def partial_stats(self, values: np.ndarray) -> tuple:
        return (int(values.size), float(values.sum()) if values.size else 0.0)

    def merge_stats(self, partials: Sequence[tuple]) -> float:
        count = sum(partial[0] for partial in partials)
        if count == 0:
            return self.empty_value
        return float(sum(partial[1] for partial in partials) / count)


class SumStatistic(_AttributeStatistic):
    """Sum of the target attribute over points in the region."""

    decomposition = "float"  # partial sums; re-summing changes pairwise rounding

    @property
    def name(self) -> str:
        return "sum"

    def compute_from_values(self, values: np.ndarray) -> float:
        return float(values.sum()) if values.size else self.empty_value

    def partial_stats(self, values: np.ndarray) -> tuple:
        return (int(values.size), float(values.sum()) if values.size else 0.0)

    def merge_stats(self, partials: Sequence[tuple]) -> float:
        if sum(partial[0] for partial in partials) == 0:
            return self.empty_value
        return float(sum(partial[1] for partial in partials))


class VarianceStatistic(_AttributeStatistic):
    """Population variance of the target attribute over points in the region."""

    #: (count, mean, M2) partials merged with Chan's parallel update — unlike
    #: the textbook E[x²]−E[x]² sufficient stats, this never cancels two large
    #: squares, so the merged value stays within summation-order rounding of
    #: the unsharded reduction even for tiny variances at huge means.
    decomposition = "float"

    @property
    def name(self) -> str:
        return "variance"

    def compute_from_values(self, values: np.ndarray) -> float:
        if values.size == 0:
            return self.empty_value
        return float(values.var())

    def partial_stats(self, values: np.ndarray) -> tuple:
        if values.size == 0:
            return (0, 0.0, 0.0)
        mean = float(values.mean())
        return (int(values.size), mean, float(np.square(values - mean).sum()))

    def merge_stats(self, partials: Sequence[tuple]) -> float:
        count, mean, m2 = 0, 0.0, 0.0
        for part_count, part_mean, part_m2 in partials:
            if part_count == 0:
                continue
            if count == 0:
                count, mean, m2 = part_count, part_mean, part_m2
                continue
            delta = part_mean - mean
            total = count + part_count
            m2 = m2 + part_m2 + delta * delta * (count * part_count / total)
            mean = mean + delta * part_count / total
            count = total
        if count == 0:
            return self.empty_value
        return float(m2 / count)


class MedianStatistic(_AttributeStatistic):
    """Median of the target attribute — a non-decomposable statistic (Definition 3).

    ``decomposition`` stays ``None``: a sharded backend must gather the
    selected values from every shard and reduce them centrally.
    """

    @property
    def name(self) -> str:
        return "median"

    def compute_from_values(self, values: np.ndarray) -> float:
        if values.size == 0:
            return self.empty_value
        return float(np.median(values))


class RatioStatistic(_AttributeStatistic):
    """Fraction of points in the region whose target attribute equals ``positive_value``.

    Used for the Human Activity use case: the ratio of readings labelled with a
    given activity inside a region of the sensor space.
    """

    decomposition = "exact"  # (count, positives) partials are integer-exact

    def __init__(self, target_column, positive_value: float, exclude_target_from_region: bool = True):
        super().__init__(target_column, exclude_target_from_region)
        self.positive_value = float(positive_value)

    @property
    def name(self) -> str:
        return "ratio"

    def compute_from_values(self, values: np.ndarray) -> float:
        if values.size == 0:
            return self.empty_value
        return float(np.mean(np.isclose(values, self.positive_value)))

    def compute_batch(self, dataset: Dataset, masks: np.ndarray) -> np.ndarray:
        return self.compute_batch_from_arrays(dataset.column(self.target_column), masks)

    def compute_batch_from_arrays(
        self, target: Optional[np.ndarray], masks: np.ndarray
    ) -> np.ndarray:
        # A ratio is a quotient of two integer counts, both exact in float64,
        # so the vectorised version matches the scalar one bit-for-bit.
        masks = np.asarray(masks, dtype=bool)
        if target is None:
            raise ValidationError("ratio statistic needs a target column")
        matches = np.isclose(target, self.positive_value)
        counts = masks.sum(axis=1, dtype=np.int64)
        positives = (masks & matches[None, :]).sum(axis=1, dtype=np.int64)
        values = np.full(masks.shape[0], self.empty_value, dtype=np.float64)
        covered = counts > 0
        values[covered] = positives[covered] / counts[covered]
        return values

    def partial_stats(self, values: np.ndarray) -> tuple:
        return (
            int(values.size),
            int(np.count_nonzero(np.isclose(values, self.positive_value))),
        )

    def merge_stats(self, partials: Sequence[tuple]) -> float:
        count = sum(partial[0] for partial in partials)
        if count == 0:
            return self.empty_value
        # np.mean over booleans is an exact integer sum divided by the size,
        # so this division is bit-identical to compute_from_values.
        return float(sum(partial[1] for partial in partials) / count)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RatioStatistic(target_column={self.target_column!r}, "
            f"positive_value={self.positive_value})"
        )


#: Plugin registry of constructible statistics.  Built-ins are registered
#: below; third parties add their own via ``STATISTICS.register(name, factory)``
#: (also re-exported through :mod:`repro.api.registries`).
STATISTICS = Registry("statistic")
STATISTICS.register("count", lambda **kw: CountStatistic(), aliases=("density",))
STATISTICS.register(
    "average", lambda **kw: AverageStatistic(kw["target_column"]), aliases=("aggregate",)
)
STATISTICS.register("sum", lambda **kw: SumStatistic(kw["target_column"]))
STATISTICS.register("variance", lambda **kw: VarianceStatistic(kw["target_column"]))
STATISTICS.register("median", lambda **kw: MedianStatistic(kw["target_column"]))
STATISTICS.register(
    "ratio", lambda **kw: RatioStatistic(kw["target_column"], kw["positive_value"])
)


def make_statistic(name: str, **kwargs) -> StatisticSpec:
    """Create a statistic by name, resolved through the :data:`STATISTICS` registry.

    Built-in names: ``count``/``density``, ``average``/``aggregate``, ``sum``,
    ``variance``, ``median`` and ``ratio``.  Attribute statistics require a
    ``target_column`` keyword; ``ratio`` also needs ``positive_value``.
    """
    try:
        return STATISTICS.create(name, **kwargs)
    except KeyError as exc:
        raise ValidationError(f"statistic {name!r} is missing required argument {exc}") from exc
