"""Synthetic ground-truth datasets (Section V-A / Figure 2 of the paper).

Each dataset embeds ``k`` ground-truth (GT) hyper-rectangular regions in an
otherwise uniform ``[0, 1]^d`` point cloud.  Two statistic flavours are
supported, mirroring the paper:

* ``density`` — the GT regions contain many more points than the background,
  so the *count* of points inside them exceeds the threshold (``y_R = 1000``
  in the paper's accuracy experiments).
* ``aggregate`` — points are uniform in space, but a measured attribute
  (column ``target``) takes much larger values inside the GT regions, so the
  *average* of that attribute inside a GT region exceeds the threshold
  (``y_R = 2`` in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.regions import Region
from repro.data.statistics import AverageStatistic, CountStatistic, StatisticSpec
from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng

StatisticKind = Literal["density", "aggregate"]


@dataclass(frozen=True)
class GroundTruthRegion:
    """A planted region of interest together with its planted statistic value."""

    region: Region
    statistic_value: float


@dataclass
class SyntheticConfig:
    """Configuration of a synthetic ground-truth dataset.

    Parameters mirror the knobs varied in the paper's evaluation: statistic
    kind, dimensionality ``d``, number of GT regions ``k`` and dataset size.
    """

    statistic: StatisticKind = "density"
    dim: int = 2
    num_regions: int = 1
    num_points: int = 10_000
    #: Points planted inside each GT region for the density statistic.  The default
    #: makes the GT regions comfortably exceed the paper's ``y_R = 1000`` threshold.
    points_per_region: int = 1_500
    #: Mean of the target attribute inside GT regions for the aggregate statistic.
    region_target_mean: float = 4.0
    #: Mean of the target attribute outside GT regions.
    background_target_mean: float = 0.0
    #: Standard deviation of the target attribute noise.
    target_std: float = 0.5
    #: Half side length of each GT region in every dimension (side length 0.3 of the
    #: unit domain, the scale the paper quotes when discussing space coverage).
    region_half_length: float = 0.15
    random_state: Optional[int] = None

    def __post_init__(self) -> None:
        if self.statistic not in ("density", "aggregate"):
            raise ValidationError(f"statistic must be 'density' or 'aggregate', got {self.statistic!r}")
        if self.dim < 1:
            raise ValidationError(f"dim must be >= 1, got {self.dim}")
        if self.num_regions < 1:
            raise ValidationError(f"num_regions must be >= 1, got {self.num_regions}")
        if self.num_points < self.num_regions * 10:
            raise ValidationError("num_points is too small for the requested number of regions")
        if not 0 < self.region_half_length < 0.5:
            raise ValidationError("region_half_length must be in (0, 0.5)")


@dataclass
class SyntheticDataset:
    """A generated dataset together with its planted ground truth."""

    dataset: Dataset
    ground_truth: List[GroundTruthRegion]
    statistic: StatisticSpec
    config: SyntheticConfig

    @property
    def region_columns(self) -> list:
        """Columns constrained by regions for this dataset's statistic."""
        return self.statistic.region_columns(self.dataset)

    @property
    def ground_truth_regions(self) -> List[Region]:
        """Just the planted regions, without their statistic values."""
        return [gt.region for gt in self.ground_truth]

    def suggested_threshold(self, margin: Optional[float] = None) -> float:
        """A threshold ``y_R`` "close to the statistic of the GT regions" (Section V-B).

        The paper fixes ``y_R = 1000`` for the density statistic and ``y_R = 2``
        for the aggregate statistic.  This helper derives the analogous value
        for arbitrary configurations as ``margin`` times the weakest planted
        region's statistic.  The default margin mirrors the paper's ratios:
        0.85 for the density statistic (only near-ground-truth-sized regions
        satisfy the query, so the objective's peaks sit at the planted regions)
        and 0.5 for the aggregate statistic (matching ``y_R = 2`` against the
        default planted mean of 4).
        """
        if margin is None:
            margin = 0.85 if self.config.statistic == "density" else 0.75
        weakest = min(gt.statistic_value for gt in self.ground_truth)
        return margin * weakest


def _spread_region_centers(rng: np.random.Generator, dim: int, count: int, half_length: float) -> np.ndarray:
    """Pick well-separated centres for the GT regions inside the unit cube.

    Rejection-samples centres so the planted regions do not overlap (keeping
    per-region IoU evaluation unambiguous); when the configuration is too
    tight for rejection sampling, centres fall back to a jittered diagonal
    layout that always satisfies the separation constraint when possible.
    """
    margin = half_length + 0.01
    separation = 2.05 * half_length
    centers: List[np.ndarray] = []
    for _ in range(5_000):
        candidate = rng.uniform(margin, 1.0 - margin, size=dim)
        if all(np.max(np.abs(candidate - c)) > separation for c in centers):
            centers.append(candidate)
        if len(centers) == count:
            return np.asarray(centers)

    # Fallback: spread centres evenly along the main diagonal with a small jitter.
    span = 1.0 - 2.0 * margin
    if count > 1 and span < (count - 1) * separation:
        raise ValidationError(
            "could not place non-overlapping ground-truth regions; "
            "reduce num_regions or region_half_length"
        )
    positions = np.linspace(margin, 1.0 - margin, count)
    jitter_scale = max(0.0, (span / max(count - 1, 1) - separation) / 2.0) if count > 1 else span / 2.0
    centers = []
    for position in positions:
        jitter = rng.uniform(-jitter_scale, jitter_scale, size=dim)
        centers.append(np.clip(position + jitter, margin, 1.0 - margin))
    return np.asarray(centers)


def _make_density_dataset(config: SyntheticConfig, rng: np.random.Generator) -> SyntheticDataset:
    dim = config.dim
    centers = _spread_region_centers(rng, dim, config.num_regions, config.region_half_length)
    half = np.full(dim, config.region_half_length)

    background_count = config.num_points
    background = rng.uniform(0.0, 1.0, size=(background_count, dim))
    planted_blocks = []
    for center in centers:
        block = rng.uniform(center - half, center + half, size=(config.points_per_region, dim))
        planted_blocks.append(block)
    values = np.vstack([background] + planted_blocks)
    rng.shuffle(values)

    column_names = [f"a{i + 1}" for i in range(dim)]
    dataset = Dataset(values, column_names)
    statistic = CountStatistic()

    ground_truth = []
    for center in centers:
        region = Region(center, half.copy())
        mask = dataset.region_mask(region)
        ground_truth.append(GroundTruthRegion(region, statistic.compute(dataset, mask)))
    return SyntheticDataset(dataset, ground_truth, statistic, config)


def _make_aggregate_dataset(config: SyntheticConfig, rng: np.random.Generator) -> SyntheticDataset:
    dim = config.dim
    centers = _spread_region_centers(rng, dim, config.num_regions, config.region_half_length)
    half = np.full(dim, config.region_half_length)

    spatial = rng.uniform(0.0, 1.0, size=(config.num_points, dim))
    target = rng.normal(config.background_target_mean, config.target_std, size=config.num_points)
    for center in centers:
        inside = np.all(np.abs(spatial - center) <= half, axis=1)
        target[inside] = rng.normal(config.region_target_mean, config.target_std, size=int(inside.sum()))

    column_names = [f"a{i + 1}" for i in range(dim)] + ["target"]
    dataset = Dataset(np.column_stack([spatial, target]), column_names)
    statistic = AverageStatistic("target")

    ground_truth = []
    for center in centers:
        region = Region(center, half.copy())
        mask = dataset.region_mask(region, columns=statistic.region_columns(dataset))
        ground_truth.append(GroundTruthRegion(region, statistic.compute(dataset, mask)))
    return SyntheticDataset(dataset, ground_truth, statistic, config)


def make_synthetic_dataset(config: Optional[SyntheticConfig] = None, **kwargs) -> SyntheticDataset:
    """Generate a synthetic ground-truth dataset.

    Either pass a :class:`SyntheticConfig` or keyword arguments accepted by it,
    e.g. ``make_synthetic_dataset(statistic="density", dim=2, num_regions=3)``.
    """
    if config is None:
        config = SyntheticConfig(**kwargs)
    elif kwargs:
        raise ValidationError("pass either a config object or keyword arguments, not both")
    rng = ensure_rng(config.random_state)
    if config.statistic == "density":
        return _make_density_dataset(config, rng)
    return _make_aggregate_dataset(config, rng)


def make_benchmark_suite(
    dims: Sequence[int] = (1, 2, 3, 4, 5),
    region_counts: Sequence[int] = (1, 3),
    statistics: Sequence[StatisticKind] = ("density", "aggregate"),
    num_points: int = 10_000,
    random_state: Optional[int] = 7,
) -> List[SyntheticDataset]:
    """Generate the full grid of synthetic datasets used by the accuracy experiments.

    The paper uses 20 synthetic datasets obtained by crossing statistic type,
    dimensionality (1–5) and number of GT regions (1 or 3).
    """
    suite = []
    seed = random_state
    for statistic in statistics:
        for dim in dims:
            for k in region_counts:
                config = SyntheticConfig(
                    statistic=statistic,
                    dim=dim,
                    num_regions=k,
                    num_points=num_points,
                    random_state=None if seed is None else seed + 13 * dim + 101 * k,
                )
                suite.append(make_synthetic_dataset(config))
    return suite
