"""Stand-ins for the paper's real datasets (Crimes and Human Activity).

The original Chicago *Crimes* dump and the UCI *Human Activity Recognition*
dataset are not available offline, so this module generates synthetic
datasets with the same structure the qualitative experiments rely on:

* :func:`make_crimes_like` — a 2-D spatial point process over normalised X/Y
  coordinates with a handful of pronounced hot-spots (mixture of Gaussians)
  on top of diffuse background incidents.  The Fig. 5 experiment only needs
  "a spatial dataset whose density is strongly non-uniform", which this
  reproduces.
* :func:`make_activity_like` — accelerometer-style (X, Y, Z) readings with an
  ``activity`` label where one activity ("stand", encoded as class 1) is rare
  overall but dominant inside a compact sub-region of the sensor space, so
  regions with a high class ratio exist but are statistically unlikely —
  matching the paper's observation that ``P(f > 0.3) ≈ 0.0035``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.regions import Region
from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng

#: Encoded activity classes for the activity-like dataset.
ACTIVITY_CLASSES = {"walk": 0.0, "stand": 1.0, "sit": 2.0, "cardio": 3.0}


@dataclass(frozen=True)
class HotSpot:
    """A planted spatial hot-spot: Gaussian cluster centre, spread and weight."""

    center: Tuple[float, float]
    spread: float
    weight: float


_DEFAULT_HOTSPOTS = (
    HotSpot(center=(0.25, 0.30), spread=0.045, weight=0.22),
    HotSpot(center=(0.70, 0.65), spread=0.060, weight=0.28),
    HotSpot(center=(0.45, 0.80), spread=0.035, weight=0.15),
)


def make_crimes_like(
    num_points: int = 50_000,
    hotspots: Tuple[HotSpot, ...] = _DEFAULT_HOTSPOTS,
    background_fraction: float = 0.35,
    random_state: Optional[int] = 11,
) -> Dataset:
    """Generate a Crimes-like 2-D spatial incident dataset on ``[0, 1]^2``.

    Parameters
    ----------
    num_points:
        Total number of incident records.
    hotspots:
        Planted high-density clusters.  Their ``weight`` values are normalised
        over the non-background share of points.
    background_fraction:
        Fraction of incidents spread uniformly over the city extent.
    """
    if num_points < 100:
        raise ValidationError("num_points must be at least 100")
    if not 0 < background_fraction < 1:
        raise ValidationError("background_fraction must be in (0, 1)")
    rng = ensure_rng(random_state)

    num_background = int(round(background_fraction * num_points))
    num_clustered = num_points - num_background
    weights = np.asarray([spot.weight for spot in hotspots], dtype=np.float64)
    weights = weights / weights.sum()
    counts = rng.multinomial(num_clustered, weights)

    blocks = [rng.uniform(0.0, 1.0, size=(num_background, 2))]
    for spot, count in zip(hotspots, counts):
        points = rng.normal(loc=spot.center, scale=spot.spread, size=(count, 2))
        blocks.append(np.clip(points, 0.0, 1.0))
    values = np.vstack(blocks)
    rng.shuffle(values)
    return Dataset(values, ["x_coordinate", "y_coordinate"])


def crimes_hotspot_regions(hotspots: Tuple[HotSpot, ...] = _DEFAULT_HOTSPOTS, sigmas: float = 2.0) -> List[Region]:
    """Regions covering each planted hot-spot (±``sigmas`` standard deviations).

    Useful as a qualitative reference when checking that regions returned by
    SuRF on the Crimes-like data sit on true hot-spots.
    """
    regions = []
    for spot in hotspots:
        center = np.asarray(spot.center, dtype=np.float64)
        half = np.full(2, sigmas * spot.spread)
        regions.append(Region(center, half))
    return regions


def make_activity_like(
    num_points: int = 30_000,
    stand_fraction: float = 0.08,
    stand_center: Tuple[float, float, float] = (0.1, 0.9, 0.05),
    stand_spread: float = 0.06,
    random_state: Optional[int] = 23,
) -> Dataset:
    """Generate a Human-Activity-like dataset of accelerometer readings.

    Columns are ``acc_x``, ``acc_y``, ``acc_z`` and ``activity`` (encoded per
    :data:`ACTIVITY_CLASSES`).  Readings of the rare ``stand`` activity cluster
    tightly around ``stand_center``; the other activities fill the rest of the
    sensor space, so the *ratio* of stand readings is only high inside a small
    region — the structure the paper's qualitative experiment exploits.
    """
    if num_points < 100:
        raise ValidationError("num_points must be at least 100")
    if not 0 < stand_fraction < 0.5:
        raise ValidationError("stand_fraction must be in (0, 0.5)")
    rng = ensure_rng(random_state)

    num_stand = int(round(stand_fraction * num_points))
    num_other = num_points - num_stand

    stand_readings = rng.normal(loc=stand_center, scale=stand_spread, size=(num_stand, 3))
    stand_readings = np.clip(stand_readings, -1.0, 1.0)
    stand_labels = np.full(num_stand, ACTIVITY_CLASSES["stand"])

    other_classes = [ACTIVITY_CLASSES[name] for name in ("walk", "sit", "cardio")]
    other_labels = rng.choice(other_classes, size=num_other)
    other_readings = rng.uniform(-1.0, 1.0, size=(num_other, 3))

    values = np.column_stack(
        [
            np.concatenate([stand_readings[:, 0], other_readings[:, 0]]),
            np.concatenate([stand_readings[:, 1], other_readings[:, 1]]),
            np.concatenate([stand_readings[:, 2], other_readings[:, 2]]),
            np.concatenate([stand_labels, other_labels]),
        ]
    )
    order = rng.permutation(values.shape[0])
    return Dataset(values[order], ["acc_x", "acc_y", "acc_z", "activity"])


def activity_stand_region(
    stand_center: Tuple[float, float, float] = (0.1, 0.9, 0.05),
    stand_spread: float = 0.06,
    sigmas: float = 2.0,
) -> Region:
    """The region of sensor space where the planted ``stand`` activity concentrates."""
    center = np.asarray(stand_center, dtype=np.float64)
    half = np.full(3, sigmas * stand_spread)
    return Region(center, half)
