"""Hyper-rectangular regions (Definition 2 of the paper) and their geometry.

A *statistic region* is parameterised by a centre ``x`` and per-dimension half
side lengths ``l``; the region covers ``[x - l, x + l]`` in every dimension.
The paper encodes a candidate solution as the ``2d``-dimensional vector
``[x, l]`` — :meth:`Region.to_vector` / :meth:`Region.from_vector` implement
exactly that encoding, and :func:`iou` implements the Intersection-over-Union
accuracy metric (Eq. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, ValidationError
from repro.utils.validation import check_array


@dataclass(frozen=True)
class Region:
    """Axis-aligned hyper-rectangle described by centre and half side lengths.

    Parameters
    ----------
    center:
        Centre point ``x`` of the hyper-rectangle, shape ``(d,)``.
    half_lengths:
        Per-dimension half side lengths ``l`` (all strictly positive), shape ``(d,)``.
    """

    center: np.ndarray
    half_lengths: np.ndarray

    def __post_init__(self) -> None:
        center = check_array(self.center, name="center", ndim=1)
        half_lengths = check_array(self.half_lengths, name="half_lengths", ndim=1)
        if center.shape != half_lengths.shape:
            raise DimensionMismatchError(
                f"center has shape {center.shape} but half_lengths has shape {half_lengths.shape}"
            )
        if np.any(half_lengths <= 0):
            raise ValidationError("all half_lengths must be strictly positive")
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "half_lengths", half_lengths)

    # ------------------------------------------------------------------ basic geometry
    @property
    def dim(self) -> int:
        """Dimensionality ``d`` of the region."""
        return self.center.shape[0]

    @property
    def lower(self) -> np.ndarray:
        """Lower corner ``x - l``."""
        return self.center - self.half_lengths

    @property
    def upper(self) -> np.ndarray:
        """Upper corner ``x + l``."""
        return self.center + self.half_lengths

    @property
    def side_lengths(self) -> np.ndarray:
        """Full side lengths ``2 * l``."""
        return 2.0 * self.half_lengths

    def volume(self) -> float:
        """Volume of the hyper-rectangle, ``prod_i 2 l_i``."""
        return float(np.prod(self.side_lengths))

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_bounds(cls, lower: Sequence[float], upper: Sequence[float]) -> "Region":
        """Build a region from its lower/upper corners."""
        lower = check_array(lower, name="lower", ndim=1)
        upper = check_array(upper, name="upper", ndim=1)
        if lower.shape != upper.shape:
            raise DimensionMismatchError("lower and upper must have the same shape")
        if np.any(upper <= lower):
            raise ValidationError("upper must be strictly greater than lower in every dimension")
        center = (lower + upper) / 2.0
        half = (upper - lower) / 2.0
        return cls(center, half)

    @classmethod
    def from_vector(cls, vector: Sequence[float]) -> "Region":
        """Decode a ``2d``-dimensional solution vector ``[x, l]`` into a region."""
        vector = check_array(vector, name="vector", ndim=1)
        if vector.shape[0] % 2 != 0:
            raise ValidationError(f"solution vector length must be even, got {vector.shape[0]}")
        d = vector.shape[0] // 2
        return cls(vector[:d], vector[d:])

    def to_vector(self) -> np.ndarray:
        """Encode the region as the ``2d``-dimensional vector ``[x, l]``."""
        return np.concatenate([self.center, self.half_lengths])

    # ------------------------------------------------------------------ predicates
    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of which ``points`` (shape ``(n, d)``) fall inside the region."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if points.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"points have dimensionality {points.shape[1]}, region has {self.dim}"
            )
        return np.all((points >= self.lower) & (points <= self.upper), axis=1)

    def contains_region(self, other: "Region") -> bool:
        """Whether ``other`` lies fully inside this region."""
        self._check_same_dim(other)
        return bool(np.all(other.lower >= self.lower) and np.all(other.upper <= self.upper))

    def intersects(self, other: "Region") -> bool:
        """Whether the two hyper-rectangles overlap (touching counts as overlap)."""
        self._check_same_dim(other)
        return bool(np.all(self.lower <= other.upper) and np.all(other.lower <= self.upper))

    # ------------------------------------------------------------------ geometry with others
    def intersection_volume(self, other: "Region") -> float:
        """Volume of the overlap between the two regions (0.0 when disjoint)."""
        self._check_same_dim(other)
        overlap = np.minimum(self.upper, other.upper) - np.maximum(self.lower, other.lower)
        if np.any(overlap <= 0):
            return 0.0
        return float(np.prod(overlap))

    def union_volume(self, other: "Region") -> float:
        """Volume of the union of the two regions (inclusion–exclusion)."""
        return self.volume() + other.volume() - self.intersection_volume(other)

    def iou(self, other: "Region") -> float:
        """Intersection over Union (Jaccard index, Eq. 10) with ``other``."""
        union = self.union_volume(other)
        if union <= 0:
            return 0.0
        # intersection_volume multiplies overlap extents while volume()
        # multiplies side lengths — different float op orders, so the ratio
        # can land a few ulp above 1 for (near-)identical tiny regions.
        return min(1.0, self.intersection_volume(other) / union)

    def clipped(self, lower: Sequence[float], upper: Sequence[float], min_half_length: float = 1e-9) -> "Region":
        """Return a copy clipped to the bounding box ``[lower, upper]``.

        Degenerate dimensions (where clipping removes all extent) are kept at a
        tiny ``min_half_length`` so downstream volume computations stay defined.
        """
        lower = check_array(lower, name="lower", ndim=1)
        upper = check_array(upper, name="upper", ndim=1)
        new_low = np.clip(self.lower, lower, upper)
        new_up = np.clip(self.upper, lower, upper)
        half = np.maximum((new_up - new_low) / 2.0, min_half_length)
        center = (new_low + new_up) / 2.0
        return Region(center, half)

    def expanded(self, factor: float) -> "Region":
        """Return a copy with half lengths multiplied by ``factor`` (> 0)."""
        if factor <= 0:
            raise ValidationError(f"factor must be > 0, got {factor}")
        return Region(self.center.copy(), self.half_lengths * factor)

    def translated(self, offset: Sequence[float]) -> "Region":
        """Return a copy with the centre moved by ``offset``."""
        offset = check_array(offset, name="offset", ndim=1)
        if offset.shape[0] != self.dim:
            raise DimensionMismatchError("offset dimensionality does not match region")
        return Region(self.center + offset, self.half_lengths.copy())

    def _check_same_dim(self, other: "Region") -> None:
        if self.dim != other.dim:
            raise DimensionMismatchError(
                f"regions have different dimensionalities: {self.dim} vs {other.dim}"
            )

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        center = np.array2string(self.center, precision=3)
        half = np.array2string(self.half_lengths, precision=3)
        return f"Region(center={center}, half_lengths={half})"


def iou(first: Region, second: Region) -> float:
    """Module-level convenience wrapper for :meth:`Region.iou`."""
    return first.iou(second)


def rectangle_intersection_volume(first: Region, second: Region) -> float:
    """Volume of the overlap of two regions."""
    return first.intersection_volume(second)


def rectangle_union_volume(first: Region, second: Region) -> float:
    """Volume of the union of two regions."""
    return first.union_volume(second)


def bounding_region(points: np.ndarray, padding: float = 0.0) -> Region:
    """Smallest axis-aligned region containing every row of ``points``.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    padding:
        Fractional padding added to each side (e.g. ``0.05`` adds 5 % of the
        extent on both sides) so boundary points end up strictly inside.
    """
    points = check_array(points, name="points", ndim=2)
    lower = points.min(axis=0)
    upper = points.max(axis=0)
    extent = np.maximum(upper - lower, 1e-12)
    # A tiny padding floor keeps boundary points inside despite the centre/half-length
    # round trip losing one ulp of precision.
    padding = max(float(padding), 1e-9)
    lower = lower - padding * extent
    upper = upper + padding * extent
    # Guard against zero-extent dimensions (constant columns).
    flat = upper <= lower
    upper = np.where(flat, lower + 1e-6, upper)
    return Region.from_bounds(lower, upper)


def random_region(
    rng: np.random.Generator,
    bounds: Region,
    min_fraction: float = 0.01,
    max_fraction: float = 0.15,
) -> Region:
    """Sample a random region inside ``bounds``.

    Mirrors how the paper generates past region evaluations: centres are
    uniform over the data bounding box and "side lengths are set to cover
    1 %–15 % of the data domain".  The fraction is interpreted as the share of
    the domain *volume* the region covers (so the protocol scales with
    dimensionality); per-dimension side lengths are drawn with random
    log-proportions so regions are not forced to be cubes.
    """
    if not 0 < min_fraction <= max_fraction:
        raise ValidationError("fractions must satisfy 0 < min_fraction <= max_fraction")
    if max_fraction > 1:
        raise ValidationError("max_fraction must not exceed 1 (the whole domain)")
    extent = bounds.upper - bounds.lower
    center = rng.uniform(bounds.lower, bounds.upper)
    volume_fraction = rng.uniform(min_fraction, max_fraction)
    # Split log(volume_fraction) across dimensions: prod_i (side_i / extent_i) == volume_fraction.
    proportions = rng.dirichlet(np.ones(bounds.dim))
    sides = extent * volume_fraction**proportions
    half = np.maximum(sides / 2.0, 1e-9)
    return Region(center, half)
