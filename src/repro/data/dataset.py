"""Columnar in-memory dataset used as the library's storage substrate.

The paper assumes an opaque "back-end data/analytics system" that can answer
region statistics.  :class:`Dataset` is the storage half of that system: a
named, columnar, numpy-backed table with a known bounding box.  The query half
lives in :mod:`repro.data.engine`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.data.regions import Region, bounding_region
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_array


class Dataset:
    """An immutable columnar table of ``N`` data vectors in ``R^d``.

    Parameters
    ----------
    values:
        Array of shape ``(N, d)`` holding the data vectors.
    column_names:
        Optional names for the ``d`` columns; defaults to ``a1 .. ad`` as in the paper.
    """

    def __init__(self, values: np.ndarray, column_names: Optional[Sequence[str]] = None):
        values = check_array(values, name="values", ndim=2)
        if column_names is None:
            column_names = [f"a{i + 1}" for i in range(values.shape[1])]
        column_names = [str(name) for name in column_names]
        if len(column_names) != values.shape[1]:
            raise ValidationError(
                f"expected {values.shape[1]} column names, got {len(column_names)}"
            )
        if len(set(column_names)) != len(column_names):
            raise ValidationError("column names must be unique")
        self._values = values
        self._values.setflags(write=False)
        self._column_names = list(column_names)
        self._column_index: Dict[str, int] = {name: i for i, name in enumerate(column_names)}

    # ------------------------------------------------------------------ basic accessors
    @property
    def values(self) -> np.ndarray:
        """The underlying read-only ``(N, d)`` array."""
        return self._values

    @property
    def column_names(self) -> List[str]:
        """Names of the ``d`` columns."""
        return list(self._column_names)

    @property
    def num_rows(self) -> int:
        """Number of data vectors ``N``."""
        return self._values.shape[0]

    @property
    def num_columns(self) -> int:
        """Dimensionality ``d`` of the data vectors."""
        return self._values.shape[1]

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name_or_index) -> np.ndarray:
        """Return a single column by name or positional index."""
        index = self.column_position(name_or_index)
        return self._values[:, index]

    def column_position(self, name_or_index) -> int:
        """Resolve a column name or index into a positional index."""
        if isinstance(name_or_index, str):
            if name_or_index not in self._column_index:
                raise ValidationError(
                    f"unknown column {name_or_index!r}; available: {self._column_names}"
                )
            return self._column_index[name_or_index]
        index = int(name_or_index)
        if not 0 <= index < self.num_columns:
            raise ValidationError(
                f"column index {index} out of range for {self.num_columns} columns"
            )
        return index

    # ------------------------------------------------------------------ derived datasets
    def select_columns(self, names: Sequence) -> "Dataset":
        """Project the dataset onto a subset of columns (in the given order)."""
        positions = [self.column_position(name) for name in names]
        return Dataset(
            self._values[:, positions].copy(),
            [self._column_names[pos] for pos in positions],
        )

    def sample(self, size: int, random_state=None, replace: bool = False) -> "Dataset":
        """Return a uniformly sampled subset of ``size`` rows."""
        if size <= 0:
            raise ValidationError(f"sample size must be positive, got {size}")
        if not replace and size > self.num_rows:
            raise ValidationError(
                f"cannot sample {size} rows without replacement from {self.num_rows}"
            )
        rng = ensure_rng(random_state)
        indices = rng.choice(self.num_rows, size=size, replace=replace)
        return Dataset(self._values[indices].copy(), self._column_names)

    def filter_region(self, region: Region, columns: Optional[Sequence] = None) -> "Dataset":
        """Return the subset ``D`` of rows falling inside ``region``.

        ``columns`` restricts which columns define the hyper-rectangle (used for
        the aggregate statistic, where the measured attribute is excluded from
        the region definition — see Definition 2).
        """
        mask = self.region_mask(region, columns=columns)
        return Dataset(self._values[mask].copy(), self._column_names)

    def region_mask(self, region: Region, columns: Optional[Sequence] = None) -> np.ndarray:
        """Boolean mask of the rows inside ``region`` over the selected columns."""
        if columns is None:
            positions = list(range(self.num_columns))
        else:
            positions = [self.column_position(name) for name in columns]
        if region.dim != len(positions):
            raise ValidationError(
                f"region has dimensionality {region.dim} but {len(positions)} columns were selected"
            )
        sub = self._values[:, positions]
        return np.all((sub >= region.lower) & (sub <= region.upper), axis=1)

    def bounding_box(self, columns: Optional[Sequence] = None, padding: float = 0.0) -> Region:
        """Smallest region enclosing all rows over the selected columns."""
        if columns is None:
            values = self._values
        else:
            positions = [self.column_position(name) for name in columns]
            values = self._values[:, positions]
        return bounding_region(values, padding=padding)

    # ------------------------------------------------------------------ conversion helpers
    def to_dict(self) -> Dict[str, np.ndarray]:
        """Return the dataset as a mapping ``column name -> column array``."""
        return {name: self.column(name).copy() for name in self._column_names}

    @classmethod
    def from_dict(cls, columns: Dict[str, Iterable[float]]) -> "Dataset":
        """Build a dataset from a mapping of column names to equal-length sequences."""
        if not columns:
            raise ValidationError("at least one column is required")
        names = list(columns.keys())
        arrays = [np.asarray(list(columns[name]), dtype=np.float64) for name in names]
        lengths = {len(arr) for arr in arrays}
        if len(lengths) != 1:
            raise ValidationError(f"columns have differing lengths: {sorted(lengths)}")
        return cls(np.column_stack(arrays), names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset(num_rows={self.num_rows}, columns={self._column_names})"
