"""Uniform grid spatial index over a dataset.

The paper treats evaluating ``f(x, l)`` against the back-end system as the
expensive step.  For the baselines that *do* access the data (Naive,
f+GlowWorm, PRIM), a simple multidimensional uniform grid index speeds up
point-in-region tests by pruning whole cells that lie outside the query
rectangle.  The index is exact: candidate rows coming from partially covered
cells are re-checked against the region.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.data.regions import Region
from repro.exceptions import ValidationError
from repro.utils.validation import check_array


class GridIndex:
    """Exact uniform-grid index over an ``(N, d)`` point set.

    Parameters
    ----------
    points:
        The data vectors to index, shape ``(N, d)``.
    cells_per_dim:
        Number of grid cells per dimension.  The total number of cells is
        ``cells_per_dim ** d``, so keep this modest for higher dimensions.
    """

    def __init__(self, points: np.ndarray, cells_per_dim: int = 16):
        points = check_array(points, name="points", ndim=2)
        cells_per_dim = int(cells_per_dim)
        if cells_per_dim < 1:
            raise ValidationError(f"cells_per_dim must be >= 1, got {cells_per_dim}")
        self._points = points
        self._cells_per_dim = cells_per_dim
        self._dim = points.shape[1]
        self._lower = points.min(axis=0)
        upper = points.max(axis=0)
        extent = np.maximum(upper - self._lower, 1e-12)
        self._cell_size = extent / cells_per_dim
        # Assign every point to a flat cell id, then bucket row indices per cell.
        coords = self._cell_coords(points)
        flat = self._flatten(coords)
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]
        boundaries = np.flatnonzero(np.diff(sorted_flat)) + 1
        groups = np.split(order, boundaries)
        self._buckets = {int(flat[group[0]]): group for group in groups if group.size}

    # ------------------------------------------------------------------ internals
    def _cell_coords(self, points: np.ndarray) -> np.ndarray:
        coords = np.floor((points - self._lower) / self._cell_size).astype(np.int64)
        return np.clip(coords, 0, self._cells_per_dim - 1)

    def _flatten(self, coords: np.ndarray) -> np.ndarray:
        flat = np.zeros(coords.shape[0], dtype=np.int64)
        for axis in range(self._dim):
            flat = flat * self._cells_per_dim + coords[:, axis]
        return flat

    def _cell_box(self, lowers: np.ndarray, uppers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Clipped integer cell coordinates of the corner(s); works row-batched."""
        low = np.floor((lowers - self._lower) / self._cell_size).astype(np.int64)
        high = np.floor((uppers - self._lower) / self._cell_size).astype(np.int64)
        low = np.clip(low, 0, self._cells_per_dim - 1)
        high = np.clip(high, 0, self._cells_per_dim - 1)
        return low, high

    def _candidates_in_cell_box(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """Row indices bucketed in any cell of the box ``[low, high]`` (inclusive)."""
        ranges = [np.arange(low[axis], high[axis] + 1) for axis in range(self._dim)]
        # Enumerate the overlapped cells as a cartesian product of per-axis ranges.
        mesh = np.meshgrid(*ranges, indexing="ij")
        coords = np.stack([m.ravel() for m in mesh], axis=1)
        flat = self._flatten(coords)
        chunks = [self._buckets[key] for key in flat.tolist() if key in self._buckets]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    # ------------------------------------------------------------------ public API
    @property
    def num_points(self) -> int:
        """Number of indexed points."""
        return self._points.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self._dim

    def candidate_indices(self, region: Region) -> np.ndarray:
        """Row indices whose grid cell overlaps ``region`` (superset of the answer)."""
        if region.dim != self._dim:
            raise ValidationError(
                f"region has dimensionality {region.dim}, index has {self._dim}"
            )
        low, high = self._cell_box(region.lower, region.upper)
        return self._candidates_in_cell_box(low, high)

    def query_indices(self, region: Region) -> np.ndarray:
        """Row indices of points exactly inside ``region``."""
        candidates = self.candidate_indices(region)
        if candidates.size == 0:
            return candidates
        points = self._points[candidates]
        inside = np.all((points >= region.lower) & (points <= region.upper), axis=1)
        return candidates[inside]

    def query_many(self, lowers: np.ndarray, uppers: np.ndarray) -> List[np.ndarray]:
        """Row indices of points inside each of ``M`` regions given as corner matrices.

        Parameters
        ----------
        lowers / uppers:
            Region corners, both of shape ``(M, d)``.

        The per-region cell ranges are computed in one whole-batch operation;
        only the bucket gathering and the exact re-check remain per region.
        Results are identical to calling :meth:`query_indices` per region.
        """
        lowers = check_array(lowers, name="lowers", ndim=2)
        uppers = check_array(uppers, name="uppers", ndim=2)
        if lowers.shape != uppers.shape or lowers.shape[1] != self._dim:
            raise ValidationError(
                f"lowers/uppers must both have shape (M, {self._dim}), "
                f"got {lowers.shape} and {uppers.shape}"
            )
        low_cells, high_cells = self._cell_box(lowers, uppers)
        results: List[np.ndarray] = []
        for row in range(lowers.shape[0]):
            candidates = self._candidates_in_cell_box(low_cells[row], high_cells[row])
            if candidates.size == 0:
                results.append(candidates)
                continue
            points = self._points[candidates]
            inside = np.all((points >= lowers[row]) & (points <= uppers[row]), axis=1)
            results.append(candidates[inside])
        return results

    def count(self, region: Region) -> int:
        """Number of points inside ``region``."""
        return int(self.query_indices(region).size)

    def count_many(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        """Number of points inside each of ``M`` regions given as corner matrices."""
        return np.asarray([indices.size for indices in self.query_many(lowers, uppers)], dtype=np.int64)
