"""The back-end analytics engine that evaluates the true statistic ``f(x, l)``.

This is the component the paper identifies as the bottleneck: every exact
region evaluation is a scan (or an index lookup) over the ``N`` data vectors.
The engine also keeps a counter of how many evaluations it has served, which
the experiments use to report work done by data-driven methods.

Where the scan actually runs is pluggable (:mod:`repro.backends`): the engine
resolves the statistic's region/target columns once and delegates every mask,
count, gather and batched evaluation to a
:class:`~repro.backends.base.DataBackend` — in-memory NumPy (default,
bit-identical to the historical engine), memory-mapped chunks for data larger
than RAM, SQLite with region predicates compiled to range ``WHERE`` clauses,
or contiguous shards evaluated on a thread pool.  The public API (``evaluate``,
``evaluate_batch``, ``region_masks``, ``statistic_sample``, the evaluation
counter) is backend-independent.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

from repro.backends import DataBackend, make_backend
from repro.backends.base import MAX_MASK_ELEMENTS  # re-exported for compatibility
from repro.data.dataset import Dataset
from repro.data.index import GridIndex
from repro.data.regions import Region
from repro.data.statistics import StatisticSpec
from repro.exceptions import ValidationError


class DataEngine:
    """Evaluates region statistics exactly against a :class:`Dataset`.

    Parameters
    ----------
    dataset:
        The stored data vectors.
    statistic:
        The statistic ``f`` to evaluate for each region.
    use_index:
        Build a :class:`GridIndex` over the region columns to prune scans
        (``"numpy"`` backend only).  Pruning covers every statistic: counts
        come from the candidate sets directly, attribute statistics gather the
        target attribute over the sorted candidates — no full mask is built.
    cells_per_dim:
        Grid resolution for the optional index.
    backend:
        Which :mod:`repro.backends` engine runs the scans: a name from
        :data:`repro.backends.BACKEND_NAMES` (``"numpy"`` default,
        ``"chunked"``, ``"sqlite"``, ``"sharded"``) or a pre-built
        :class:`~repro.backends.base.DataBackend` instance (which must cover
        the dataset's rows — use this for data that already lives on disk).
    backend_options:
        Keyword options forwarded to the backend factory when ``backend`` is
        a name (e.g. ``{"num_shards": 4}`` for ``"sharded"``, or
        ``{"block_rows": 100_000}`` for ``"chunked"``).
    """

    def __init__(
        self,
        dataset: Dataset,
        statistic: StatisticSpec,
        use_index: bool = False,
        cells_per_dim: int = 16,
        backend: Union[str, DataBackend, None] = None,
        backend_options: Optional[dict] = None,
    ):
        self._dataset = dataset
        self._statistic = statistic
        self._region_columns = statistic.region_columns(dataset)
        if not self._region_columns:
            raise ValidationError("statistic leaves no columns to define regions over")
        self._region_positions = [dataset.column_position(c) for c in self._region_columns]
        self._evaluations = 0
        self._backend = self._resolve_backend(
            backend, backend_options, use_index, int(cells_per_dim)
        )

    def _resolve_backend(
        self,
        backend: Union[str, DataBackend, None],
        backend_options: Optional[dict],
        use_index: bool,
        cells_per_dim: int,
    ) -> DataBackend:
        if isinstance(backend, DataBackend):
            if backend_options:
                raise ValidationError("backend_options only apply when backend is a name")
            if use_index:
                raise ValidationError(
                    "use_index builds the engine's own NumpyBackend; attach an index "
                    "to the pre-built backend instead"
                )
            if backend.num_rows != self._dataset.num_rows:
                raise ValidationError(
                    f"backend holds {backend.num_rows} rows but the dataset has "
                    f"{self._dataset.num_rows}"
                )
            if backend.region_dim != len(self._region_columns):
                raise ValidationError(
                    f"backend has region_dim {backend.region_dim} but the statistic "
                    f"constrains {len(self._region_columns)} columns"
                )
            if not self._statistic.count_only and not backend.has_target:
                raise ValidationError(
                    f"statistic {self._statistic.name!r} needs a target column but the "
                    "backend stores none"
                )
            return backend
        kind = "numpy" if backend is None else str(backend)
        options = dict(backend_options or {})
        # Columns are materialised once here to build the backend's own
        # storage; for data already on disk, pass a pre-built backend instead.
        region_values = self._dataset.values[:, self._region_positions]
        target_position = self._statistic.target_position(self._dataset)
        target_values = None if target_position is None else self._dataset.values[:, target_position]
        if use_index:
            if kind != "numpy":
                raise ValidationError(
                    f"use_index is only supported by the 'numpy' backend, got {kind!r}"
                )
            options.setdefault("index", GridIndex(region_values, cells_per_dim=cells_per_dim))
        return make_backend(kind, region_values, target_values, **options)

    # ------------------------------------------------------------------ introspection
    @property
    def dataset(self) -> Dataset:
        """The underlying dataset."""
        return self._dataset

    @property
    def statistic(self) -> StatisticSpec:
        """The statistic specification evaluated by this engine."""
        return self._statistic

    @property
    def backend(self) -> DataBackend:
        """The :class:`~repro.backends.base.DataBackend` serving the scans."""
        return self._backend

    @property
    def region_columns(self) -> List[str]:
        """Columns constrained by region hyper-rectangles for this statistic."""
        return list(self._region_columns)

    @property
    def region_dim(self) -> int:
        """Dimensionality ``d`` of the region (and hence 2d of the solution space)."""
        return len(self._region_columns)

    @property
    def num_evaluations(self) -> int:
        """How many exact region evaluations this engine has served."""
        return self._evaluations

    def reset_evaluation_counter(self) -> None:
        """Reset the evaluation counter (used between experiment runs)."""
        self._evaluations = 0

    def region_bounds(self, padding: float = 0.0) -> Region:
        """Bounding box of the data over the region columns."""
        return self._dataset.bounding_box(columns=self._region_columns, padding=padding)

    def close(self) -> None:
        """Release backend resources (memory maps, database connections)."""
        self._backend.close()

    # ------------------------------------------------------------------ evaluation
    def region_mask(self, region: Region) -> np.ndarray:
        """Boolean mask of dataset rows inside ``region`` (over region columns)."""
        if region.dim != self.region_dim:
            raise ValidationError(
                f"region has dimensionality {region.dim}, engine expects {self.region_dim}"
            )
        return self.region_masks(region.lower[None, :], region.upper[None, :])[0]

    def region_masks(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        """Boolean ``(M, N)`` matrix of dataset rows inside each of ``M`` regions.

        ``lowers``/``uppers`` are ``(M, d)`` corner matrices over the region
        columns.  The masks come from the backend's exact scan
        (:meth:`~repro.backends.base.DataBackend.scan_masks`): one broadcast
        comparison per dimension for array-backed storage, candidate pruning
        for an indexed backend, a ``WHERE`` clause for SQL — in every case
        exactly the masks of :meth:`region_mask` row by row.
        """
        lowers = np.asarray(lowers, dtype=np.float64)
        uppers = np.asarray(uppers, dtype=np.float64)
        if lowers.ndim != 2 or lowers.shape != uppers.shape or lowers.shape[1] != self.region_dim:
            raise ValidationError(
                f"lowers/uppers must both have shape (M, {self.region_dim}), "
                f"got {lowers.shape} and {uppers.shape}"
            )
        return self._backend.scan_masks(lowers, uppers)

    def evaluate(self, region: Region) -> float:
        """Evaluate ``y = f(x, l)`` exactly for ``region``.

        Thin wrapper over :meth:`evaluate_batch` with a single-row batch.
        """
        if region.dim != self.region_dim:
            raise ValidationError(
                f"region has dimensionality {region.dim}, engine expects {self.region_dim}"
            )
        return float(self.evaluate_batch(region.to_vector()[None, :])[0])

    def evaluate_vector(self, vector: np.ndarray) -> float:
        """Evaluate a region encoded as the ``2d`` solution vector ``[x, l]``."""
        return self.evaluate(Region.from_vector(vector))

    def evaluate_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Evaluate ``M`` regions encoded as an ``(M, 2d)`` matrix of ``[x, l]`` vectors.

        This is the data layer's hot path: the region corners are handed to
        the backend's batched evaluation
        (:meth:`~repro.backends.base.DataBackend.evaluate`), which finds the
        selected rows however its storage dictates and reduces them with the
        statistic's own kernels.  For every row the scalar path accepts, the
        result is identical to :meth:`evaluate_vector` — on every backend —
        and the evaluation counter advances by ``M`` either way.  One
        deliberate divergence: rows whose half lengths are non-positive
        (which :class:`~repro.data.regions.Region` — and hence the scalar
        path — rejects with a ``ValidationError``) are accepted here as empty
        regions and yield the statistic's ``empty_value``.

        Peak memory is backend-bounded: the in-memory backend blocks mask
        matrices at ``MAX_MASK_ELEMENTS``, the chunked backend streams row
        blocks, SQL materialises no masks at all.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != 2 * self.region_dim:
            raise ValidationError(
                f"vectors must have shape (M, {2 * self.region_dim}), got {vectors.shape}"
            )
        num_regions = vectors.shape[0]
        if num_regions == 0:
            return np.empty(0, dtype=np.float64)
        self._evaluations += num_regions
        centers = vectors[:, : self.region_dim]
        half_lengths = vectors[:, self.region_dim :]
        # A zero half length makes lower == upper, which the corner-based mask
        # would treat as a degenerate slab that can still catch coinciding
        # points; the contract above says such rows are empty regions.
        degenerate = np.any(half_lengths <= 0, axis=1)
        values = np.full(num_regions, self._statistic.empty_value, dtype=np.float64)
        live = ~degenerate
        if live.any():
            lowers = centers[live] - half_lengths[live]
            uppers = centers[live] + half_lengths[live]
            values[live] = self._backend.evaluate(self._statistic, lowers, uppers)
        return values

    def evaluate_many(self, regions: Iterable[Region]) -> np.ndarray:
        """Evaluate a batch of regions, returning an array of statistics.

        Thin wrapper over :meth:`evaluate_batch`.
        """
        regions = list(regions)
        if not regions:
            return np.empty(0, dtype=np.float64)
        return self.evaluate_batch(np.stack([region.to_vector() for region in regions]))

    def support(self, region: Region) -> int:
        """Number of data points inside ``region`` regardless of the statistic."""
        if region.dim != self.region_dim:
            raise ValidationError(
                f"region has dimensionality {region.dim}, engine expects {self.region_dim}"
            )
        return int(self._backend.count(region.lower[None, :], region.upper[None, :])[0])

    # ------------------------------------------------------------------ sampling
    def sample_region_points(
        self, size: int, random_state=None, replace: bool = False
    ) -> np.ndarray:
        """Uniformly sampled data rows over the region columns, shape ``(size, d)``.

        Routed through the backend's random access
        (:meth:`~repro.backends.base.DataBackend.take`), so out-of-core and
        SQL-resident engines sample without loading the dataset; the index
        draw matches :meth:`Dataset.sample`, making the result bit-identical
        to ``dataset.sample(...).select_columns(region_columns).values`` for
        the same seed.
        """
        return self._backend.sample(size, random_state=random_state, replace=replace)

    # ------------------------------------------------------------------ statistic distribution
    def statistic_sample(
        self,
        num_regions: int,
        random_state=None,
        min_fraction: float = 0.01,
        max_fraction: float = 0.15,
    ) -> np.ndarray:
        """Sample the distribution of ``y`` over random regions.

        The paper uses the empirical CDF of this sample to pick meaningful
        thresholds (e.g. the third quartile ``Q3`` in the Crimes experiment) and
        to reason about the probability that a request is satisfiable (Eq. 5).
        The evaluations run through the backend's chunked scan path, so the
        sample never materialises a full ``L x N`` mask block — out-of-core
        backends stream it in bounded row blocks.
        """
        from repro.data.regions import random_region
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(random_state)
        bounds = self.region_bounds()
        # Regions are drawn first (same RNG order as evaluating one by one),
        # then evaluated through the batched path.
        regions = [
            random_region(rng, bounds, min_fraction, max_fraction) for _ in range(int(num_regions))
        ]
        return self.evaluate_many(regions)

    def empirical_cdf(self, sample: np.ndarray):
        """Return a callable empirical CDF ``F_Y`` built from ``sample``."""
        sample = np.sort(np.asarray(sample, dtype=np.float64))

        def cdf(value: float) -> float:
            return float(np.searchsorted(sample, value, side="right")) / sample.size

        return cdf
