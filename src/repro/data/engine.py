"""The back-end analytics engine that evaluates the true statistic ``f(x, l)``.

This is the component the paper identifies as the bottleneck: every exact
region evaluation is a scan (or an index lookup) over the ``N`` data vectors.
The engine also keeps a counter of how many evaluations it has served, which
the experiments use to report work done by data-driven methods.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.index import GridIndex
from repro.data.regions import Region
from repro.data.statistics import CountStatistic, StatisticSpec
from repro.exceptions import ValidationError


#: Cap on the number of boolean mask entries materialised at once by
#: :meth:`DataEngine.evaluate_batch` (16M entries = 16 MB); larger batches are
#: processed in row blocks of this size.
MAX_MASK_ELEMENTS = 16_777_216


class DataEngine:
    """Evaluates region statistics exactly against a :class:`Dataset`.

    Parameters
    ----------
    dataset:
        The stored data vectors.
    statistic:
        The statistic ``f`` to evaluate for each region.
    use_index:
        Build a :class:`GridIndex` over the region columns to prune scans.  The
        index is only used for pure count statistics where candidate pruning is
        a clear win; attribute statistics fall back to full masks.
    cells_per_dim:
        Grid resolution for the optional index.
    """

    def __init__(
        self,
        dataset: Dataset,
        statistic: StatisticSpec,
        use_index: bool = False,
        cells_per_dim: int = 16,
    ):
        self._dataset = dataset
        self._statistic = statistic
        self._region_columns = statistic.region_columns(dataset)
        if not self._region_columns:
            raise ValidationError("statistic leaves no columns to define regions over")
        self._region_positions = [dataset.column_position(c) for c in self._region_columns]
        self._region_values = dataset.values[:, self._region_positions]
        # Contiguous per-dimension columns for the batched mask kernel.
        self._region_column_values = [
            np.ascontiguousarray(self._region_values[:, k])
            for k in range(self._region_values.shape[1])
        ]
        self._evaluations = 0
        self._index: Optional[GridIndex] = None
        if use_index:
            self._index = GridIndex(self._region_values, cells_per_dim=cells_per_dim)

    # ------------------------------------------------------------------ introspection
    @property
    def dataset(self) -> Dataset:
        """The underlying dataset."""
        return self._dataset

    @property
    def statistic(self) -> StatisticSpec:
        """The statistic specification evaluated by this engine."""
        return self._statistic

    @property
    def region_columns(self) -> List[str]:
        """Columns constrained by region hyper-rectangles for this statistic."""
        return list(self._region_columns)

    @property
    def region_dim(self) -> int:
        """Dimensionality ``d`` of the region (and hence 2d of the solution space)."""
        return len(self._region_columns)

    @property
    def num_evaluations(self) -> int:
        """How many exact region evaluations this engine has served."""
        return self._evaluations

    def reset_evaluation_counter(self) -> None:
        """Reset the evaluation counter (used between experiment runs)."""
        self._evaluations = 0

    def region_bounds(self, padding: float = 0.0) -> Region:
        """Bounding box of the data over the region columns."""
        return self._dataset.bounding_box(columns=self._region_columns, padding=padding)

    # ------------------------------------------------------------------ evaluation
    def region_mask(self, region: Region) -> np.ndarray:
        """Boolean mask of dataset rows inside ``region`` (over region columns)."""
        if region.dim != self.region_dim:
            raise ValidationError(
                f"region has dimensionality {region.dim}, engine expects {self.region_dim}"
            )
        return self.region_masks(region.lower[None, :], region.upper[None, :])[0]

    def region_masks(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        """Boolean ``(M, N)`` matrix of dataset rows inside each of ``M`` regions.

        ``lowers``/``uppers`` are ``(M, d)`` corner matrices over the region
        columns.  Without an index the masks are computed by one broadcast
        comparison per dimension, blocked over regions so the working set stays
        cache resident; with a :class:`GridIndex` the candidate rows come from
        :meth:`GridIndex.query_many`.  Either way the masks are exactly those
        of :meth:`region_mask` row by row.
        """
        lowers = np.asarray(lowers, dtype=np.float64)
        uppers = np.asarray(uppers, dtype=np.float64)
        if lowers.ndim != 2 or lowers.shape != uppers.shape or lowers.shape[1] != self.region_dim:
            raise ValidationError(
                f"lowers/uppers must both have shape (M, {self.region_dim}), "
                f"got {lowers.shape} and {uppers.shape}"
            )
        num_regions = lowers.shape[0]
        num_rows = self._dataset.num_rows
        masks = np.empty((num_regions, num_rows), dtype=bool)
        if num_regions == 0:
            return masks
        if self._index is not None:
            masks[:] = False
            for row, indices in enumerate(self._index.query_many(lowers, uppers)):
                masks[row, indices] = True
            return masks
        columns = self._region_column_values
        # Block over regions so each (chunk, N) operand fits in L2 cache; the
        # scratch buffer is reused across chunks and dimensions.
        chunk = max(1, 262_144 // max(num_rows, 1))
        band = np.empty((min(chunk, num_regions), num_rows), dtype=bool)
        for start in range(0, num_regions, chunk):
            stop = min(start + chunk, num_regions)
            out = masks[start:stop]
            scratch = band[: stop - start]
            np.greater_equal(columns[0], lowers[start:stop, 0, None], out=out)
            np.less_equal(columns[0], uppers[start:stop, 0, None], out=scratch)
            np.logical_and(out, scratch, out=out)
            for axis in range(1, len(columns)):
                np.greater_equal(columns[axis], lowers[start:stop, axis, None], out=scratch)
                np.logical_and(out, scratch, out=out)
                np.less_equal(columns[axis], uppers[start:stop, axis, None], out=scratch)
                np.logical_and(out, scratch, out=out)
        return masks

    def evaluate(self, region: Region) -> float:
        """Evaluate ``y = f(x, l)`` exactly for ``region``.

        Thin wrapper over :meth:`evaluate_batch` with a single-row batch.
        """
        if region.dim != self.region_dim:
            raise ValidationError(
                f"region has dimensionality {region.dim}, engine expects {self.region_dim}"
            )
        return float(self.evaluate_batch(region.to_vector()[None, :])[0])

    def evaluate_vector(self, vector: np.ndarray) -> float:
        """Evaluate a region encoded as the ``2d`` solution vector ``[x, l]``."""
        return self.evaluate(Region.from_vector(vector))

    def evaluate_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Evaluate ``M`` regions encoded as an ``(M, 2d)`` matrix of ``[x, l]`` vectors.

        This is the data layer's hot path: all ``M`` region masks are computed
        by one broadcast per dimension (see :meth:`region_masks`) and the
        statistic is reduced per region by
        :meth:`~repro.data.statistics.StatisticSpec.compute_batch`.  For every
        row the scalar path accepts, the result is identical to
        :meth:`evaluate_vector`, and the evaluation counter advances by ``M``
        either way.  One deliberate divergence: rows whose half lengths are
        non-positive (which :class:`~repro.data.regions.Region` — and hence
        the scalar path — rejects with a ``ValidationError``) are accepted
        here as empty regions and yield the statistic's ``empty_value``.

        Mask matrices are produced and reduced in bounded-size row blocks, so
        peak memory stays O(block * N) regardless of ``M``.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != 2 * self.region_dim:
            raise ValidationError(
                f"vectors must have shape (M, {2 * self.region_dim}), got {vectors.shape}"
            )
        num_regions = vectors.shape[0]
        if num_regions == 0:
            return np.empty(0, dtype=np.float64)
        self._evaluations += num_regions
        centers = vectors[:, : self.region_dim]
        half_lengths = vectors[:, self.region_dim :]
        lowers = centers - half_lengths
        uppers = centers + half_lengths
        # A zero half length makes lower == upper, which the corner-based mask
        # would treat as a degenerate slab that can still catch coinciding
        # points; the contract above says such rows are empty regions.
        degenerate = np.any(half_lengths <= 0, axis=1)
        # Cap the materialised mask matrix (bools) at MAX_MASK_ELEMENTS.
        block = max(1, MAX_MASK_ELEMENTS // max(self._dataset.num_rows, 1))
        values = np.empty(num_regions, dtype=np.float64)
        for start in range(0, num_regions, block):
            stop = min(start + block, num_regions)
            masks = self.region_masks(lowers[start:stop], uppers[start:stop])
            if degenerate[start:stop].any():
                masks[degenerate[start:stop]] = False
            values[start:stop] = self._statistic.compute_batch(self._dataset, masks)
        return values

    def evaluate_many(self, regions: Iterable[Region]) -> np.ndarray:
        """Evaluate a batch of regions, returning an array of statistics.

        Thin wrapper over :meth:`evaluate_batch`.
        """
        regions = list(regions)
        if not regions:
            return np.empty(0, dtype=np.float64)
        return self.evaluate_batch(np.stack([region.to_vector() for region in regions]))

    def support(self, region: Region) -> int:
        """Number of data points inside ``region`` regardless of the statistic."""
        return int(np.count_nonzero(self.region_mask(region)))

    # ------------------------------------------------------------------ statistic distribution
    def statistic_sample(
        self,
        num_regions: int,
        random_state=None,
        min_fraction: float = 0.01,
        max_fraction: float = 0.15,
    ) -> np.ndarray:
        """Sample the distribution of ``y`` over random regions.

        The paper uses the empirical CDF of this sample to pick meaningful
        thresholds (e.g. the third quartile ``Q3`` in the Crimes experiment) and
        to reason about the probability that a request is satisfiable (Eq. 5).
        """
        from repro.data.regions import random_region
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(random_state)
        bounds = self.region_bounds()
        # Regions are drawn first (same RNG order as evaluating one by one),
        # then evaluated through the batched path.
        regions = [
            random_region(rng, bounds, min_fraction, max_fraction) for _ in range(int(num_regions))
        ]
        return self.evaluate_many(regions)

    def empirical_cdf(self, sample: np.ndarray):
        """Return a callable empirical CDF ``F_Y`` built from ``sample``."""
        sample = np.sort(np.asarray(sample, dtype=np.float64))

        def cdf(value: float) -> float:
            return float(np.searchsorted(sample, value, side="right")) / sample.size

        return cdf
