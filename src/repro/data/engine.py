"""The back-end analytics engine that evaluates the true statistic ``f(x, l)``.

This is the component the paper identifies as the bottleneck: every exact
region evaluation is a scan (or an index lookup) over the ``N`` data vectors.
The engine also keeps a counter of how many evaluations it has served, which
the experiments use to report work done by data-driven methods.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.index import GridIndex
from repro.data.regions import Region
from repro.data.statistics import CountStatistic, StatisticSpec
from repro.exceptions import ValidationError


class DataEngine:
    """Evaluates region statistics exactly against a :class:`Dataset`.

    Parameters
    ----------
    dataset:
        The stored data vectors.
    statistic:
        The statistic ``f`` to evaluate for each region.
    use_index:
        Build a :class:`GridIndex` over the region columns to prune scans.  The
        index is only used for pure count statistics where candidate pruning is
        a clear win; attribute statistics fall back to full masks.
    cells_per_dim:
        Grid resolution for the optional index.
    """

    def __init__(
        self,
        dataset: Dataset,
        statistic: StatisticSpec,
        use_index: bool = False,
        cells_per_dim: int = 16,
    ):
        self._dataset = dataset
        self._statistic = statistic
        self._region_columns = statistic.region_columns(dataset)
        if not self._region_columns:
            raise ValidationError("statistic leaves no columns to define regions over")
        self._region_positions = [dataset.column_position(c) for c in self._region_columns]
        self._region_values = dataset.values[:, self._region_positions]
        self._evaluations = 0
        self._index: Optional[GridIndex] = None
        if use_index:
            self._index = GridIndex(self._region_values, cells_per_dim=cells_per_dim)

    # ------------------------------------------------------------------ introspection
    @property
    def dataset(self) -> Dataset:
        """The underlying dataset."""
        return self._dataset

    @property
    def statistic(self) -> StatisticSpec:
        """The statistic specification evaluated by this engine."""
        return self._statistic

    @property
    def region_columns(self) -> List[str]:
        """Columns constrained by region hyper-rectangles for this statistic."""
        return list(self._region_columns)

    @property
    def region_dim(self) -> int:
        """Dimensionality ``d`` of the region (and hence 2d of the solution space)."""
        return len(self._region_columns)

    @property
    def num_evaluations(self) -> int:
        """How many exact region evaluations this engine has served."""
        return self._evaluations

    def reset_evaluation_counter(self) -> None:
        """Reset the evaluation counter (used between experiment runs)."""
        self._evaluations = 0

    def region_bounds(self, padding: float = 0.0) -> Region:
        """Bounding box of the data over the region columns."""
        return self._dataset.bounding_box(columns=self._region_columns, padding=padding)

    # ------------------------------------------------------------------ evaluation
    def region_mask(self, region: Region) -> np.ndarray:
        """Boolean mask of dataset rows inside ``region`` (over region columns)."""
        if region.dim != self.region_dim:
            raise ValidationError(
                f"region has dimensionality {region.dim}, engine expects {self.region_dim}"
            )
        if self._index is not None:
            mask = np.zeros(self._dataset.num_rows, dtype=bool)
            mask[self._index.query_indices(region)] = True
            return mask
        values = self._region_values
        return np.all((values >= region.lower) & (values <= region.upper), axis=1)

    def evaluate(self, region: Region) -> float:
        """Evaluate ``y = f(x, l)`` exactly for ``region``."""
        self._evaluations += 1
        mask = self.region_mask(region)
        return self._statistic.compute(self._dataset, mask)

    def evaluate_vector(self, vector: np.ndarray) -> float:
        """Evaluate a region encoded as the ``2d`` solution vector ``[x, l]``."""
        return self.evaluate(Region.from_vector(vector))

    def evaluate_many(self, regions: Iterable[Region]) -> np.ndarray:
        """Evaluate a batch of regions, returning an array of statistics."""
        return np.asarray([self.evaluate(region) for region in regions], dtype=np.float64)

    def support(self, region: Region) -> int:
        """Number of data points inside ``region`` regardless of the statistic."""
        return int(np.count_nonzero(self.region_mask(region)))

    # ------------------------------------------------------------------ statistic distribution
    def statistic_sample(
        self,
        num_regions: int,
        random_state=None,
        min_fraction: float = 0.01,
        max_fraction: float = 0.15,
    ) -> np.ndarray:
        """Sample the distribution of ``y`` over random regions.

        The paper uses the empirical CDF of this sample to pick meaningful
        thresholds (e.g. the third quartile ``Q3`` in the Crimes experiment) and
        to reason about the probability that a request is satisfiable (Eq. 5).
        """
        from repro.data.regions import random_region
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(random_state)
        bounds = self.region_bounds()
        values = [
            self.evaluate(random_region(rng, bounds, min_fraction, max_fraction))
            for _ in range(int(num_regions))
        ]
        return np.asarray(values, dtype=np.float64)

    def empirical_cdf(self, sample: np.ndarray):
        """Return a callable empirical CDF ``F_Y`` built from ``sample``."""
        sample = np.sort(np.asarray(sample, dtype=np.float64))

        def cdf(value: float) -> float:
            return float(np.searchsorted(sample, value, side="right")) / sample.size

        return cdf
