"""SuRF — SUrrogate Region Finder (ICDE 2020) reproduction.

The public API re-exports the pieces most users need:

* :class:`repro.SuRF` — the surrogate-model + glowworm-swarm region finder,
* :class:`repro.RegionQuery` / :class:`repro.Region` — queries and results,
* the **front door** (:mod:`repro.api`) — typed :class:`repro.FindRequest` /
  :class:`repro.FindResponse` envelopes served by a composable middleware
  kernel (:class:`repro.ServiceKernel`) with multi-tenant routing
  (:class:`repro.ModelRegistry`) and declarative plugin registries for
  statistics, backends, surrogate families and optimisers,
* :class:`repro.SuRFService` — the historical serving front-end, now a thin
  backward-compatible shim over the kernel,
* the online learning loop (:mod:`repro.online`) — :class:`repro.QueryLog`
  harvesting, :class:`repro.IncrementalTrainer` warm-start refreshes with a
  :class:`repro.DriftMonitor`-guarded full-refit fallback, and hot-swap
  serving via ``SuRFService.refresh`` / :class:`repro.RefreshPolicy`,
* the data substrate (:mod:`repro.data`) with pluggable scan backends
  (:mod:`repro.backends` — in-memory NumPy, out-of-core memory-mapped chunks,
  SQLite, sharded parallel evaluation), the surrogate layer
  (:mod:`repro.surrogate`), baselines (:mod:`repro.baselines`) and the
  experiment runners reproducing each table/figure (:mod:`repro.experiments`).

Quickstart::

    from repro import SuRF, RegionQuery
    from repro.data import DataEngine, CountStatistic, make_crimes_like

    crimes = make_crimes_like(num_points=20_000, random_state=0)
    engine = DataEngine(crimes, CountStatistic())
    finder = SuRF.from_engine(engine, num_evaluations=2_000, random_state=0)
    result = finder.find_regions(RegionQuery(threshold=500, direction="above"))
    for proposal in result.proposals:
        print(proposal.region, proposal.predicted_value)
"""

from repro.api import (
    FindRequest,
    FindResponse,
    ModelRegistry,
    ProposalPayload,
    ServiceKernel,
)
from repro.backends import (
    ChunkedBackend,
    DataBackend,
    NumpyBackend,
    ShardedBackend,
    SQLiteBackend,
    make_backend,
)
from repro.core.evaluation import average_iou, compliance_rate
from repro.core.finder import RegionSearchResult, SuRF
from repro.core.objective import LogObjective, RatioObjective
from repro.core.postprocess import RegionProposal
from repro.core.query import RegionQuery, SolutionSpace
from repro.core.satisfiability import SatisfiabilityModel
from repro.data.dataset import Dataset
from repro.data.engine import DataEngine
from repro.data.regions import Region
from repro.online import DriftMonitor, IncrementalTrainer, QueryLog, RefreshOutcome, RefreshPolicy
from repro.serve.service import ServiceResponse, ServiceStats, SuRFService
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import RegionWorkload, generate_workload

__version__ = "1.0.0"

__all__ = [
    "SuRF",
    "RegionSearchResult",
    "RegionQuery",
    "SolutionSpace",
    "SatisfiabilityModel",
    "RegionProposal",
    "Region",
    "Dataset",
    "DataEngine",
    "DataBackend",
    "NumpyBackend",
    "ChunkedBackend",
    "SQLiteBackend",
    "ShardedBackend",
    "make_backend",
    "RegionWorkload",
    "generate_workload",
    "SurrogateTrainer",
    "FindRequest",
    "FindResponse",
    "ProposalPayload",
    "ServiceKernel",
    "ModelRegistry",
    "SuRFService",
    "ServiceResponse",
    "ServiceStats",
    "QueryLog",
    "DriftMonitor",
    "IncrementalTrainer",
    "RefreshOutcome",
    "RefreshPolicy",
    "LogObjective",
    "RatioObjective",
    "average_iou",
    "compliance_rate",
    "__version__",
]
