"""Argument-validation helpers shared across the library.

The helpers raise :class:`repro.exceptions.ValidationError` with descriptive
messages; they are deliberately small so call sites stay readable.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, ValidationError


def check_array(
    values,
    *,
    name: str = "array",
    ndim: Optional[int] = None,
    dtype=np.float64,
    allow_empty: bool = False,
) -> np.ndarray:
    """Convert ``values`` to a numpy array and validate its shape.

    Parameters
    ----------
    values:
        Anything convertible to a numpy array of ``dtype``.
    name:
        Name used in error messages.
    ndim:
        Required number of dimensions, or ``None`` to accept any.
    allow_empty:
        Whether zero-size arrays are acceptable.
    """
    try:
        array = np.asarray(values, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} could not be converted to a numeric array: {exc}") from exc
    if ndim is not None and array.ndim != ndim:
        raise ValidationError(f"{name} must have {ndim} dimension(s), got shape {array.shape}")
    if not allow_empty and array.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if np.issubdtype(array.dtype, np.floating) and not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return array


def canonical_float(value, *, significant_digits: int = 12) -> float:
    """Round a scalar to ``significant_digits`` decimal digits of precision.

    Used wherever floats act as dictionary/cache keys: values that differ only
    by float noise (serialisation round trips, ``float32`` upcasts, summation
    order) map to one canonical representative.  The default 12 significant
    digits tolerate relative noise up to ~1e-13 while staying far below any
    statistically meaningful digit, and a 12-digit decimal survives the
    decimal→binary→decimal round trip exactly, so the mapping is idempotent:
    ``canonical_float(canonical_float(x)) == canonical_float(x)``.
    """
    if not 1 <= int(significant_digits) <= 17:
        raise ValidationError(
            f"significant_digits must be in [1, 17], got {significant_digits}"
        )
    value = float(value)
    if not np.isfinite(value):
        return value
    return float(f"{value:.{int(significant_digits)}g}")


def check_positive(value: float, *, name: str = "value", strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite scalar."""
    value = float(value)
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(
    value: float,
    low: float,
    high: float,
    *,
    name: str = "value",
    inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies within ``[low, high]`` (or ``(low, high)``)."""
    value = float(value)
    if inclusive:
        if not (low <= value <= high):
            raise ValidationError(f"{name} must be in [{low}, {high}], got {value}")
    else:
        if not (low < value < high):
            raise ValidationError(f"{name} must be in ({low}, {high}), got {value}")
    return value


def check_probability(value: float, *, name: str = "probability") -> float:
    """Validate that ``value`` is a probability in ``[0, 1]``."""
    return check_in_range(value, 0.0, 1.0, name=name)


def check_same_length(first: Sequence, second: Sequence, *, names: tuple[str, str] = ("first", "second")) -> None:
    """Validate that two sequences have the same length."""
    if len(first) != len(second):
        raise DimensionMismatchError(
            f"{names[0]} and {names[1]} must have the same length, got {len(first)} and {len(second)}"
        )


def check_dimensions_match(dim_a: int, dim_b: int, *, names: tuple[str, str] = ("a", "b")) -> None:
    """Validate that two dimensionalities are identical."""
    if int(dim_a) != int(dim_b):
        raise DimensionMismatchError(
            f"{names[0]} has dimensionality {dim_a} but {names[1]} has {dim_b}"
        )
