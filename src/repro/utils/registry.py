"""A tiny string-keyed plugin registry.

Several layers of the library are *families* of interchangeable
implementations selected by name: region statistics (``"count"``,
``"average"``, ...), scan backends (``"numpy"``, ``"sqlite"``, ...), surrogate
estimator families (``"boosting"``, ``"forest"``, ...) and swarm optimisers
(``"gso"``, ``"pso"``).  Each family keeps one :class:`Registry` instance next
to its built-in implementations, and :mod:`repro.api.registries` re-exports
them all, so engines, services and experiments are constructible from plain
config dicts — and third-party code can plug new implementations in without
editing the core::

    from repro.api.registries import BACKENDS

    BACKENDS.register("my-store", MyStoreBackend.from_arrays)
    engine = DataEngine(dataset, statistic, backend="my-store")

Registration is **idempotent**: re-registering the same factory under the same
name is a no-op, while binding a *different* factory to a taken name raises
:class:`~repro.exceptions.ValidationError` unless ``replace=True`` is passed —
so import-order races cannot silently shadow an implementation.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.exceptions import ValidationError


class Registry:
    """String-keyed factory registry for one family of implementations.

    Parameters
    ----------
    kind:
        Human-readable family name (``"backend"``, ``"statistic"``, ...);
        used in error messages: ``unknown backend 'parquet'; available: [...]``.
    """

    def __init__(self, kind: str):
        self._kind = str(kind)
        self._entries: Dict[str, Callable] = {}
        self._lock = threading.Lock()

    @property
    def kind(self) -> str:
        """The family name this registry holds implementations of."""
        return self._kind

    @staticmethod
    def _key(name: str) -> str:
        key = str(name).strip().lower()
        if not key:
            raise ValidationError("registry names must be non-empty strings")
        return key

    def register(
        self,
        name: str,
        factory: Optional[Callable] = None,
        *,
        replace: bool = False,
        aliases: Tuple[str, ...] = (),
    ) -> Callable:
        """Bind ``factory`` to ``name`` (and any ``aliases``).

        Usable directly or as a decorator (``@REGISTRY.register("name")``).
        Registering the exact same factory again is a no-op; a different
        factory under a taken name raises unless ``replace=True``.
        Returns the factory so decorator use keeps the symbol intact.
        """
        if factory is None:
            return lambda fn: self.register(name, fn, replace=replace, aliases=aliases)
        if not callable(factory):
            raise ValidationError(
                f"{self._kind} factory for {name!r} must be callable, got {type(factory)!r}"
            )
        with self._lock:
            for key in (self._key(name), *(self._key(alias) for alias in aliases)):
                existing = self._entries.get(key)
                if existing is not None and existing is not factory and not replace:
                    raise ValidationError(
                        f"{self._kind} {key!r} is already registered to a different "
                        f"factory; pass replace=True to override it"
                    )
                self._entries[key] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove a name (missing names raise, so typos surface)."""
        key = self._key(name)
        with self._lock:
            if key not in self._entries:
                raise ValidationError(
                    f"unknown {self._kind} {name!r}; available: {sorted(self._entries)}"
                )
            del self._entries[key]

    def resolve(self, name: str) -> Callable:
        """The factory registered under ``name`` (case-insensitive).

        An already-callable non-string argument passes through untouched, so
        config fields may hold either a name or a concrete factory.
        """
        if not isinstance(name, str) and callable(name):
            return name
        key = self._key(name)
        with self._lock:
            try:
                return self._entries[key]
            except KeyError:
                raise ValidationError(
                    f"unknown {self._kind} {name!r}; available: {sorted(self._entries)}"
                ) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Resolve ``name`` and call the factory with the given arguments."""
        return self.resolve(name)(*args, **kwargs)

    def names(self) -> Tuple[str, ...]:
        """All registered names (including aliases), sorted."""
        with self._lock:
            return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        try:
            key = self._key(name)  # type: ignore[arg-type]
        except (ValidationError, TypeError):
            return False
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry(kind={self._kind!r}, names={list(self.names())})"


__all__ = ["Registry"]
