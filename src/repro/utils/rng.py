"""Random-number-generator helpers.

Every stochastic component in the library accepts a ``random_state`` argument
that may be ``None``, an integer seed, or a :class:`numpy.random.Generator`.
These helpers normalise that argument so components never construct global
random state implicitly, keeping experiments reproducible.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RandomStateLike = Union[None, int, np.random.Generator]


def ensure_rng(random_state: RandomStateLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for non-deterministic behaviour, an ``int`` seed for a fresh
        deterministic generator, or an existing generator which is returned
        unchanged (so callers can share a stream).
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        f"random_state must be None, an int or a numpy Generator, got {type(random_state)!r}"
    )


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used when a parallel-looking computation (e.g. per-tree bootstraps in a
    random forest) must be reproducible regardless of evaluation order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def optional_seed(rng: np.random.Generator) -> int:
    """Draw an integer seed from ``rng`` suitable for seeding a child component."""
    return int(rng.integers(0, 2**31 - 1))
