"""Small shared utilities: random-number handling and argument validation."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.validation import (
    canonical_float,
    check_array,
    check_in_range,
    check_positive,
    check_probability,
    check_same_length,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "canonical_float",
    "check_array",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_same_length",
]
