"""The SuRF query service: cached, satisfiability-gated, multi-query serving.

The paper's headline claim (Table I) is that query latency is independent of
the dataset size because all data access happens offline.  This module turns
that property into a deployable front-end: a :class:`SuRFService` wraps one
fitted :class:`~repro.core.finder.SuRF` (typically loaded from an artifact
bundle) and serves threshold queries with three optimisations a raw finder
does not have:

1. **Eq. 5 satisfiability gate** — thresholds no past evaluation ever reached
   are rejected with one ``O(log W)`` binary search instead of burning a full
   GSO run that cannot find anything (the surrogate cannot extrapolate beyond
   its training range either, so such a run is doubly hopeless).
2. **Query normalisation + LRU result caching** — heavy analyst traffic
   repeats thresholds; a repeated query is answered from the cache without
   invoking the optimiser at all.
3. **Batched execution with request coalescing** — ``find_regions_batch``
   deduplicates identical queries inside one batch (each distinct query runs
   GSO once, every duplicate shares the result) and runs the distinct misses
   on a thread pool; the swarm kernels are NumPy-bound and release the GIL in
   their hot loops.  Seeded runs stay bit-identical to sequential
   ``find_regions`` calls because every run derives its RNG stream from the
   finder's configured seed, never from shared mutable state.  (A finder
   seeded with a caller-owned live ``numpy`` ``Generator`` — inherently
   non-reproducible and not thread-safe — is detected and executed on a
   single worker.)
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.finder import RegionSearchResult, SuRF
from repro.core.query import RegionQuery
from repro.exceptions import NotFittedError, ValidationError


@dataclass
class ServiceStats:
    """Counters of everything the service did since construction (or ``reset``).

    ``cache_misses`` counts queries that needed a result not in the cache when
    they arrived; of those, ``coalesced`` were answered by sharing an identical
    in-flight run inside the same batch, so ``gso_runs`` — actual optimiser
    executions — equals ``cache_misses - coalesced``.
    """

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    coalesced: int = 0
    rejected: int = 0
    gso_runs: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of queries answered from the cache."""
        return self.cache_hits / self.queries if self.queries else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for logs and benchmark tables."""
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "gso_runs": self.gso_runs,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class ServiceResponse:
    """One answered query.

    Attributes
    ----------
    query:
        The normalised query that was served.
    status:
        ``"served"`` (a fresh GSO run — possibly shared with identical queries
        of the same batch), ``"cached"`` (answered from the LRU cache) or
        ``"rejected"`` (Eq. 5 satisfiability at or below the service's gate;
        no optimiser run).
    satisfiability:
        The Eq. 5 probability estimated for the query.
    result:
        The full :class:`~repro.core.finder.RegionSearchResult`, or ``None``
        when the query was rejected.
    elapsed_seconds:
        Wall-clock time the service spent producing this response (for a
        coalesced batch member, the shared run's time).
    """

    query: RegionQuery
    status: str
    satisfiability: float
    result: Optional[RegionSearchResult]
    elapsed_seconds: float

    @property
    def proposals(self) -> List:
        """The proposed regions (empty for rejected queries)."""
        return self.result.proposals if self.result is not None else []


class SuRFService:
    """Serving front-end over one fitted :class:`~repro.core.finder.SuRF`.

    Parameters
    ----------
    finder:
        A fitted finder; typically ``SuRF.load(bundle_path)``.
    cache_size:
        Maximum number of query results kept in the LRU cache (0 disables
        caching; duplicate queries inside one batch are still coalesced).
    min_satisfiability:
        Queries whose Eq. 5 probability is **at or below** this value are
        rejected without running the optimiser.  The default 0.0 rejects
        exactly the thresholds that no past evaluation ever satisfied.
    max_proposals:
        Forwarded to every ``find_regions`` call.
    max_workers:
        Default thread-pool width for :meth:`find_regions_batch` (``None``
        picks ``min(num distinct queries, cpu count)`` per batch).
    """

    def __init__(
        self,
        finder: SuRF,
        cache_size: int = 128,
        min_satisfiability: float = 0.0,
        max_proposals: Optional[int] = None,
        max_workers: Optional[int] = None,
    ):
        if not isinstance(finder, SuRF):
            raise ValidationError(f"finder must be a SuRF instance, got {type(finder)!r}")
        if finder.surrogate_ is None or finder.solution_space_ is None:
            raise NotFittedError("SuRFService requires a fitted SuRF finder")
        if finder.satisfiability_ is None:
            raise NotFittedError("SuRFService requires a finder with a satisfiability model")
        if cache_size < 0:
            raise ValidationError(f"cache_size must be >= 0, got {cache_size}")
        if not 0.0 <= min_satisfiability < 1.0:
            raise ValidationError(
                f"min_satisfiability must be in [0, 1), got {min_satisfiability}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        self.finder = finder
        self.cache_size = int(cache_size)
        self.min_satisfiability = float(min_satisfiability)
        self.max_proposals = max_proposals
        self.max_workers = max_workers
        self._cache: "OrderedDict[RegionQuery, RegionSearchResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = ServiceStats()

    @classmethod
    def from_bundle(cls, path, **kwargs) -> "SuRFService":
        """Build a service straight from an artifact bundle on disk."""
        return cls(SuRF.load(path), **kwargs)

    # ------------------------------------------------------------------ normalisation
    @staticmethod
    def normalize_query(query: RegionQuery) -> RegionQuery:
        """Canonical form of a query, used as the cache key.

        Numeric fields are coerced to plain Python floats so that e.g. a
        ``numpy.float64`` threshold and its float twin hit the same cache
        entry; :class:`RegionQuery` re-validates on construction.
        """
        if not isinstance(query, RegionQuery):
            raise ValidationError(f"expected a RegionQuery, got {type(query)!r}")
        return RegionQuery(
            threshold=float(query.threshold),
            direction=query.direction,
            size_penalty=float(query.size_penalty),
        )

    # ------------------------------------------------------------------ cache internals
    def _cache_get(self, key: RegionQuery) -> Optional[RegionSearchResult]:
        """LRU lookup; caller must hold the lock."""
        result = self._cache.get(key)
        if result is not None:
            self._cache.move_to_end(key)
        return result

    def _cache_put(self, key: RegionQuery, result: RegionSearchResult) -> None:
        """LRU insert with eviction; caller must hold the lock."""
        if self.cache_size == 0:
            return
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def clear_cache(self) -> None:
        """Drop every cached result (stats are kept)."""
        with self._lock:
            self._cache.clear()

    @property
    def cached_queries(self) -> int:
        """Number of results currently held in the cache."""
        with self._lock:
            return len(self._cache)

    @property
    def stats(self) -> ServiceStats:
        """A snapshot copy of the service counters."""
        with self._lock:
            return replace(self._stats)

    def reset_stats(self) -> None:
        """Zero all counters (the cache is untouched)."""
        with self._lock:
            self._stats = ServiceStats()

    def _uses_shared_generator(self) -> bool:
        """Whether the finder draws from a caller-owned live ``Generator``.

        ``random_state`` may be a live :class:`numpy.random.Generator`
        (:func:`repro.utils.rng.ensure_rng`); such a stream is shared, mutable
        and not thread-safe, so batch execution must fall back to one worker.
        """
        parameters = self.finder.gso_parameters
        return isinstance(self.finder.random_state, np.random.Generator) or (
            parameters is not None and isinstance(parameters.random_state, np.random.Generator)
        )

    # ------------------------------------------------------------------ serving
    def _run_query(self, query: RegionQuery) -> RegionSearchResult:
        """One real GSO run (the only code path that invokes the optimiser)."""
        result = self.finder.find_regions(query, max_proposals=self.max_proposals)
        with self._lock:
            self._stats.gso_runs += 1
        return result

    def find_regions(self, query: RegionQuery) -> ServiceResponse:
        """Serve a single query: gate on Eq. 5, then cache, then GSO.

        Concurrent callers racing on the *same* uncached query may each run the
        optimiser (the results are identical); use :meth:`find_regions_batch`
        to coalesce known-duplicate requests.
        """
        start = time.perf_counter()
        query = self.normalize_query(query)
        probability = self.finder.satisfiability(query)
        with self._lock:
            self._stats.queries += 1
            if probability <= self.min_satisfiability:
                self._stats.rejected += 1
                status, result = "rejected", None
            else:
                result = self._cache_get(query)
                if result is not None:
                    self._stats.cache_hits += 1
                    status = "cached"
                else:
                    self._stats.cache_misses += 1
                    status = "served"
        if status == "served":
            result = self._run_query(query)
            with self._lock:
                self._cache_put(query, result)
        return ServiceResponse(
            query=query,
            status=status,
            satisfiability=probability,
            result=result,
            elapsed_seconds=time.perf_counter() - start,
        )

    def find_regions_batch(
        self,
        queries: Sequence[RegionQuery],
        max_workers: Optional[int] = None,
    ) -> List[ServiceResponse]:
        """Serve many queries at once, sharing work across them.

        Every query is normalised and classified under one lock acquisition:
        rejected (Eq. 5), answered from cache, or a miss.  Identical misses are
        coalesced — each distinct query runs GSO exactly once and all of its
        duplicates share the result — and the distinct runs execute on a
        thread pool.  Responses come back in input order and are bit-identical
        to what sequential :meth:`find_regions` calls would have produced,
        because each run's RNG stream depends only on the finder's seed.  A
        finder seeded with a live ``Generator`` instead of an integer falls
        back to one worker (the stream is shared, mutable and not
        thread-safe).
        """
        start = time.perf_counter()
        normalized = [self.normalize_query(query) for query in queries]
        probabilities = [self.finder.satisfiability(query) for query in normalized]

        statuses: List[str] = [""] * len(normalized)
        results: List[Optional[RegionSearchResult]] = [None] * len(normalized)
        elapsed: List[float] = [0.0] * len(normalized)
        pending: "OrderedDict[RegionQuery, List[int]]" = OrderedDict()
        with self._lock:
            for index, (query, probability) in enumerate(zip(normalized, probabilities)):
                self._stats.queries += 1
                if probability <= self.min_satisfiability:
                    self._stats.rejected += 1
                    statuses[index] = "rejected"
                    continue
                cached = self._cache_get(query)
                if cached is not None:
                    self._stats.cache_hits += 1
                    statuses[index] = "cached"
                    results[index] = cached
                    continue
                self._stats.cache_misses += 1
                statuses[index] = "served"
                if query in pending:
                    self._stats.coalesced += 1
                pending.setdefault(query, []).append(index)
        # Rejected/cached responses cost one classification-loop share each,
        # not the whole loop's wall clock.
        per_query_seconds = (time.perf_counter() - start) / max(len(normalized), 1)
        for index, status in enumerate(statuses):
            if status in ("rejected", "cached"):
                elapsed[index] = per_query_seconds

        if pending:
            distinct = list(pending.items())
            workers = max_workers if max_workers is not None else self.max_workers
            if workers is None:
                workers = min(len(distinct), os.cpu_count() or 1)
            if self._uses_shared_generator():
                # A shared live Generator is mutated by every run and is not
                # thread-safe; concurrent draws could corrupt its state.
                workers = 1

            def run_timed(item: Tuple[RegionQuery, List[int]]):
                run_start = time.perf_counter()
                result = self._run_query(item[0])
                return result, time.perf_counter() - run_start

            if workers <= 1 or len(distinct) == 1:
                outcomes = [run_timed(item) for item in distinct]
            else:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    outcomes = list(pool.map(run_timed, distinct))
            with self._lock:
                for (query, indices), (result, seconds) in zip(distinct, outcomes):
                    self._cache_put(query, result)
                    for index in indices:
                        results[index] = result
                        elapsed[index] = seconds

        return [
            ServiceResponse(
                query=query,
                status=status,
                satisfiability=probability,
                result=result,
                elapsed_seconds=seconds,
            )
            for query, status, probability, result, seconds in zip(
                normalized, statuses, probabilities, results, elapsed
            )
        ]
