"""Backward-compatible serving front-end over the :mod:`repro.api` kernel.

.. deprecated::
    ``SuRFService`` is the pre-PR 5 entry point, kept as a **thin shim** so
    existing deployments, tests and examples keep working unchanged.  New code
    should go through the front door instead — :class:`repro.api.ServiceKernel`
    for one model, :class:`repro.api.ModelRegistry` for many — which speak
    typed :class:`~repro.api.envelopes.FindRequest` /
    :class:`~repro.api.envelopes.FindResponse` envelopes and accept custom
    middleware.  The shim will stay for the foreseeable future (it is a ~100
    line adapter), but it will not grow new features.

Everything this class historically did — query normalisation, the Eq. 5
satisfiability gate, LRU result caching with generation-tagged inserts,
in-batch request coalescing, thread-pool execution with the shared-generator
fallback, query-log harvesting and refresh/hot-swap — now lives in the
composable middleware chain (``Normalize → SatisfiabilityGate → Cache →
Coalesce → Execute → Harvest``) run by the kernel.  The shim merely translates
:class:`~repro.core.query.RegionQuery` in and :class:`ServiceResponse` out;
its results are bit-identical to the PR 4 monolith (asserted against a frozen
copy of it by ``tests/property/test_property_api.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from time import perf_counter

from repro.api.envelopes import FindRequest, FindResponse
from repro.api.kernel import ServiceKernel, ServiceStats, check_service_options
from repro.api.middleware import BatchContext, normalize_query
from repro.core.finder import RegionSearchResult, SuRF
from repro.core.query import RegionQuery

__all__ = ["SuRFService", "ServiceResponse", "ServiceStats"]

#: Options ``SuRFService`` accepts besides the finder (kept in the historical
#: positional order; ``middleware`` is the kernel passthrough added in PR 5).
SERVICE_OPTIONS = (
    "cache_size",
    "min_satisfiability",
    "max_proposals",
    "max_workers",
    "query_log",
    "incremental_trainer",
    "exact_engine",
    "middleware",
)


@dataclass(frozen=True)
class ServiceResponse:
    """One answered query (the historical response shape).

    ``status`` is ``"served"``, ``"cached"`` or ``"rejected"``; ``result``
    carries the full :class:`~repro.core.finder.RegionSearchResult` (``None``
    when rejected).  New code should prefer the serialisable
    :class:`~repro.api.envelopes.FindResponse` envelope.
    """

    query: RegionQuery
    status: str
    satisfiability: float
    result: Optional[RegionSearchResult]
    elapsed_seconds: float

    @property
    def proposals(self) -> List:
        """The proposed regions (empty for rejected queries)."""
        return self.result.proposals if self.result is not None else []

    @classmethod
    def from_envelope(cls, response: FindResponse, query: RegionQuery) -> "ServiceResponse":
        """The legacy view of a typed :class:`FindResponse`."""
        return cls(
            query=query,
            status=response.status,
            satisfiability=response.satisfiability,
            result=response.result,
            elapsed_seconds=response.elapsed_seconds,
        )


class SuRFService:
    """Serving front-end over one fitted :class:`~repro.core.finder.SuRF`.

    A thin backward-compatibility adapter over
    :class:`repro.api.ServiceKernel`; see that class for the full parameter
    documentation (``cache_size``, ``min_satisfiability``, ``max_proposals``,
    ``max_workers``, ``query_log``, ``incremental_trainer``, ``exact_engine``
    all behave exactly as they did in the monolith).  ``middleware`` forwards
    a custom chain to the kernel.
    """

    def __init__(
        self,
        finder: SuRF,
        cache_size: int = 128,
        min_satisfiability: float = 0.0,
        max_proposals: Optional[int] = None,
        max_workers: Optional[int] = None,
        query_log=None,
        incremental_trainer=None,
        exact_engine=None,
        middleware=None,
    ):
        kernel_options = dict(
            cache_size=cache_size,
            min_satisfiability=min_satisfiability,
            max_proposals=max_proposals,
            max_workers=max_workers,
            query_log=query_log,
            incremental_trainer=incremental_trainer,
            exact_engine=exact_engine,
        )
        if middleware is not None:
            kernel_options["middleware"] = middleware
        self._kernel = ServiceKernel(finder, **kernel_options)
        # Interned query -> envelope map: repeated queries (the traffic shape
        # the cache exists for) reuse one frozen FindRequest, whose normalised
        # form the Normalize middleware also memoises.  Benign races only.
        self._envelopes: dict = {}

    @classmethod
    def from_bundle(cls, path, **kwargs) -> "SuRFService":
        """Build a service straight from an artifact bundle on disk.

        Unknown options raise :class:`~repro.exceptions.ValidationError`
        naming the bad key *before* the bundle is loaded (historically this
        surfaced only as a ``TypeError`` after the expensive load).
        """
        check_service_options(kwargs, allowed=SERVICE_OPTIONS, where="SuRFService.from_bundle")
        return cls(SuRF.load(path), **kwargs)

    # ------------------------------------------------------------------ passthrough views
    @property
    def kernel(self) -> ServiceKernel:
        """The underlying :class:`repro.api.ServiceKernel` (the real service)."""
        return self._kernel

    @property
    def finder(self) -> SuRF:
        """The finder currently being served (a new object after each swap)."""
        return self._kernel.finder

    @property
    def query_log(self):
        """The wired :class:`~repro.online.QueryLog` (``None`` when offline-only)."""
        return self._kernel.query_log

    @property
    def generation(self) -> int:
        """How many model swaps this service has performed (0 = as constructed)."""
        return self._kernel.generation

    @property
    def cache_size(self) -> int:
        return self._kernel.cache_size

    @property
    def min_satisfiability(self) -> float:
        return self._kernel.min_satisfiability

    @property
    def max_proposals(self) -> Optional[int]:
        return self._kernel.max_proposals

    @property
    def max_workers(self) -> Optional[int]:
        return self._kernel.max_workers

    @property
    def cached_queries(self) -> int:
        """Number of results currently held in the cache."""
        return self._kernel.cached_queries

    @property
    def stats(self) -> ServiceStats:
        """A snapshot copy of the service counters."""
        return self._kernel.stats

    @property
    def pending_log_entries(self) -> int:
        """Logged pairs not yet folded into the surrogate by a refresh."""
        return self._kernel.pending_log_entries

    normalize_query = staticmethod(normalize_query)

    def clear_cache(self) -> None:
        """Drop every cached result (stats are kept)."""
        self._kernel.clear_cache()

    def reset_stats(self) -> None:
        """Zero all counters (the cache is untouched)."""
        self._kernel.reset_stats()

    def _uses_shared_generator(self, finder: Optional[SuRF] = None) -> bool:
        return self._kernel._uses_shared_generator(finder)

    # ------------------------------------------------------------------ serving
    def find_regions(self, query: RegionQuery) -> ServiceResponse:
        """Serve a single query: gate on Eq. 5, then cache, then GSO.

        Runs the kernel's middleware chain directly on a one-request context
        and reads the legacy response off the request state — the serialisable
        :class:`~repro.api.envelopes.FindResponse` materialisation is skipped,
        keeping cached hits at monolith latency (``benchmarks/test_bench_api.py``
        holds the overhead to <= 10%).
        """
        start = perf_counter()
        ctx = BatchContext(self._kernel, (self._request(query),))
        self._kernel.serve(ctx)
        state = ctx.states[0]
        return ServiceResponse(
            query=state.query,
            status=state.status,
            satisfiability=float(state.satisfiability),
            result=state.result,
            elapsed_seconds=perf_counter() - start,
        )

    def find_regions_batch(
        self,
        queries: Sequence[RegionQuery],
        max_workers: Optional[int] = None,
    ) -> List[ServiceResponse]:
        """Serve many queries at once, sharing work across them.

        Identical misses are coalesced and distinct runs execute on a thread
        pool; responses come back in input order, bit-identical to sequential
        :meth:`find_regions` calls under a fixed seed.
        """
        ctx = BatchContext(
            self._kernel,
            [self._request(query) for query in queries],
            max_workers=max_workers,
        )
        self._kernel.serve(ctx)
        return [
            ServiceResponse(
                query=state.query,
                status=state.status,
                satisfiability=float(state.satisfiability),
                result=state.result,
                elapsed_seconds=state.elapsed_seconds,
            )
            for state in ctx.states
        ]

    def _request(self, query: RegionQuery) -> FindRequest:
        try:
            request = self._envelopes.get(query)
        except TypeError:  # unhashable input: let the isinstance check report it
            request = None
        if request is None:
            if not isinstance(query, RegionQuery):
                from repro.exceptions import ValidationError

                raise ValidationError(f"expected a RegionQuery, got {type(query)!r}")
            # The query is already validated and the kernel validated its own
            # name, so the envelope is built without re-checking either.
            request = FindRequest._bare(query, self._kernel.name)
            if len(self._envelopes) >= 4096:
                self._envelopes.clear()
            self._envelopes[query] = request
        return request

    # ------------------------------------------------------------------ online learning
    def observe(self, region, value: float) -> None:
        """Record one externally observed exact evaluation into the query log."""
        self._kernel.observe(region, value)

    def observe_many(self, evaluations) -> None:
        """Record a batch of externally observed exact evaluations."""
        self._kernel.observe_many(evaluations)

    def refresh(self, force_full: bool = False):
        """Fold freshly logged pairs into the surrogate and hot-swap the models.

        Delegates to :meth:`repro.api.ServiceKernel.refresh`; see there for the
        swap/generation semantics (unchanged from the monolith).
        """
        return self._kernel.refresh(force_full=force_full)
