"""Query-serving layer: artifact bundles in, high-throughput region mining out.

``repro.serve`` is the deployment face of the library: a fitted
:class:`~repro.core.finder.SuRF` is saved once to an artifact bundle
(``SuRF.save``), shipped to the serving host, and wrapped in a
:class:`SuRFService` that answers analyst queries with Eq. 5 satisfiability
gating, LRU result caching and coalesced multi-query batches.
"""

from repro.serve.service import ServiceResponse, ServiceStats, SuRFService

__all__ = [
    "SuRFService",
    "ServiceResponse",
    "ServiceStats",
]
