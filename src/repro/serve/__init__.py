"""Query-serving layer (backward-compatible shim over :mod:`repro.api`).

``repro.serve`` was the deployment face of the library through PR 4; the
serving machinery now lives behind the :mod:`repro.api` front door —
:class:`repro.api.ServiceKernel` (one model behind a composable middleware
chain) and :class:`repro.api.ModelRegistry` (multi-tenant routing).  The
:class:`SuRFService` exported here is a thin adapter over the kernel kept so
existing code keeps working bit-identically; prefer ``repro.api`` for new
deployments.
"""

from repro.serve.service import ServiceResponse, ServiceStats, SuRFService

__all__ = [
    "SuRFService",
    "ServiceResponse",
    "ServiceStats",
]
