"""Saving and loading workloads and trained surrogate models.

Surrogates are meant to be trained once (possibly on a beefier machine) and
then shipped to analysts, so the library provides a small persistence layer:

* workloads (past region evaluations) are stored as ``.npz`` archives holding
  the feature matrix and target vector — portable and inspectable;
* trained :class:`~repro.surrogate.model.SurrogateModel` objects are stored
  with :mod:`pickle`, which is sufficient because every estimator in
  :mod:`repro.ml` is a plain Python object.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Union

import numpy as np

from repro.data.regions import Region
from repro.exceptions import ValidationError
from repro.surrogate.model import SurrogateModel
from repro.surrogate.workload import RegionEvaluation, RegionWorkload

PathLike = Union[str, Path]


def save_workload(workload: RegionWorkload, path: PathLike) -> Path:
    """Write a workload to ``path`` as a ``.npz`` archive and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, features=workload.features, targets=workload.targets)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_workload(path: PathLike) -> RegionWorkload:
    """Load a workload previously written by :func:`save_workload`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        if "features" not in archive or "targets" not in archive:
            raise ValidationError(f"{path} is not a workload archive (missing features/targets)")
        features = archive["features"]
        targets = archive["targets"]
    if features.ndim != 2 or features.shape[1] % 2 != 0:
        raise ValidationError(f"workload archive has malformed features of shape {features.shape}")
    if targets.shape[0] != features.shape[0]:
        raise ValidationError("workload archive features and targets have different lengths")
    dim = features.shape[1] // 2
    evaluations = [
        RegionEvaluation(Region(vector[:dim], vector[dim:]), float(target))
        for vector, target in zip(features, targets)
    ]
    return RegionWorkload(evaluations)


def save_surrogate(surrogate: SurrogateModel, path: PathLike) -> Path:
    """Serialise a trained surrogate model to ``path`` with pickle."""
    if not isinstance(surrogate, SurrogateModel):
        raise ValidationError(f"expected a SurrogateModel, got {type(surrogate)!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        pickle.dump(surrogate, handle)
    return path


def load_surrogate(path: PathLike) -> SurrogateModel:
    """Load a surrogate model previously written by :func:`save_surrogate`."""
    with open(path, "rb") as handle:
        surrogate = pickle.load(handle)
    if not isinstance(surrogate, SurrogateModel):
        raise ValidationError(f"{path} does not contain a SurrogateModel")
    return surrogate
