"""Saving and loading workloads, trained surrogates and whole finder bundles.

Surrogates are meant to be trained once (possibly on a beefier machine) and
then shipped to analysts, so the library provides a small persistence layer:

* workloads (past region evaluations) are stored as ``.npz`` archives holding
  the feature matrix and target vector — portable and inspectable;
* trained :class:`~repro.surrogate.model.SurrogateModel` objects are stored
  with :mod:`pickle`, which is sufficient because every estimator in
  :mod:`repro.ml` is a plain Python object;
* a whole fitted :class:`~repro.core.finder.SuRF` round-trips to a single
  *artifact bundle* (:func:`save_bundle` / :func:`load_bundle`) carrying the
  surrogate, solution space, density model, satisfiability model, workload
  features and configuration — everything query serving needs, nothing the
  raw data ever touches.  Bundles are versioned pickles with a format header
  so loads fail loudly on foreign or future files.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.data.regions import Region
from repro.exceptions import NotFittedError, ValidationError
from repro.ml.compiled import CompiledPredictor
from repro.surrogate.model import SurrogateModel
from repro.surrogate.workload import RegionEvaluation, RegionWorkload

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.core.finder import SuRF

PathLike = Union[str, Path]

#: Header values identifying a SuRF artifact bundle on disk.
BUNDLE_FORMAT = "surf-bundle"
#: Version 2 adds the workload targets, which the online learning loop needs
#: to reconstruct its cumulative training workload; version-1 bundles load
#: with targets absent (``workload_targets_ is None`` — serving works, but
#: any online refresh, incremental or full, refuses with ``NotFittedError``).
#: Version 3 ships the surrogate's compiled SoA node tables inside the pickled
#: estimator (:mod:`repro.ml.compiled`), so a loaded bundle serves queries
#: through the vectorised kernel without paying recompilation; versions 1–2
#: still load (the estimator simply recompiles lazily on first use).
BUNDLE_VERSION = 3


def save_workload(workload: RegionWorkload, path: PathLike) -> Path:
    """Write a workload to ``path`` as a ``.npz`` archive and return the written path.

    ``numpy.savez_compressed`` appends ``.npz`` to any filename that does not
    already end in it; the returned path is the file that actually exists on
    disk (not a suffix-mangled guess), so it can be handed straight to
    :func:`load_workload` or shipped elsewhere.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, features=workload.features, targets=workload.targets)
    return path if path.name.endswith(".npz") else path.with_name(path.name + ".npz")


def load_workload(path: PathLike) -> RegionWorkload:
    """Load a workload previously written by :func:`save_workload`."""
    path = Path(path)
    if not path.exists() and path.with_name(path.name + ".npz").exists():
        path = path.with_name(path.name + ".npz")
    with np.load(path) as archive:
        if "features" not in archive or "targets" not in archive:
            raise ValidationError(f"{path} is not a workload archive (missing features/targets)")
        features = archive["features"]
        targets = archive["targets"]
    if features.ndim != 2 or features.shape[1] % 2 != 0:
        raise ValidationError(f"workload archive has malformed features of shape {features.shape}")
    if targets.shape[0] != features.shape[0]:
        raise ValidationError("workload archive features and targets have different lengths")
    dim = features.shape[1] // 2
    evaluations = [
        RegionEvaluation(Region(vector[:dim], vector[dim:]), float(target))
        for vector, target in zip(features, targets)
    ]
    return RegionWorkload(evaluations)


def save_surrogate(surrogate: SurrogateModel, path: PathLike) -> Path:
    """Serialise a trained surrogate model to ``path`` with pickle."""
    if not isinstance(surrogate, SurrogateModel):
        raise ValidationError(f"expected a SurrogateModel, got {type(surrogate)!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        pickle.dump(surrogate, handle)
    return path


def load_surrogate(path: PathLike) -> SurrogateModel:
    """Load a surrogate model previously written by :func:`save_surrogate`."""
    with open(path, "rb") as handle:
        surrogate = pickle.load(handle)
    if not isinstance(surrogate, SurrogateModel):
        raise ValidationError(f"{path} does not contain a SurrogateModel")
    return surrogate


# --------------------------------------------------------------------------- bundles
def save_bundle(finder: "SuRF", path: PathLike) -> Path:
    """Write a fitted :class:`~repro.core.finder.SuRF` to a single bundle file.

    The bundle is self-contained: fitted state (surrogate, solution space,
    density model, satisfiability model, workload features) plus every
    constructor setting, so :func:`load_bundle` rebuilds a finder whose seeded
    ``find_regions`` calls are bit-identical to the original's.  Train once,
    ship the file to analysts.
    """
    from repro.core.finder import SuRF

    if not isinstance(finder, SuRF):
        raise ValidationError(f"expected a SuRF finder, got {type(finder)!r}")
    if finder.surrogate_ is None or finder.solution_space_ is None:
        raise NotFittedError("only a fitted SuRF can be saved to a bundle")
    # Ship the compiled SoA tables inside the bundle: compiling is cheap at
    # save time and free at load time, so served models never recompile.
    estimator = getattr(finder.surrogate_, "estimator", None)
    if estimator is not None and CompiledPredictor.compilable(estimator):
        estimator.compile()
    payload = {
        "format": BUNDLE_FORMAT,
        "version": BUNDLE_VERSION,
        "config": {
            "objective": finder.objective_kind,
            "use_density_guidance": finder.use_density_guidance,
            "density_method": finder.density_method,
            "min_half_fraction": finder.min_half_fraction,
            "max_half_fraction": finder.max_half_fraction,
            "overlap_threshold": finder.overlap_threshold,
            "warm_start_fraction": finder.warm_start_fraction,
            "random_state": finder.random_state,
        },
        "trainer": finder.trainer,
        "gso_parameters": finder.gso_parameters,
        "surrogate": finder.surrogate_,
        "solution_space": finder.solution_space_,
        "density": finder.density_,
        "satisfiability": finder.satisfiability_,
        "workload_features": finder.workload_features_,
        "workload_targets": finder.workload_targets_,
        "workload_size": finder.workload_size_,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        pickle.dump(payload, handle)
    return path


def load_bundle(path: PathLike, finder_cls: type = None) -> "SuRF":
    """Load a fitted :class:`~repro.core.finder.SuRF` from a bundle file.

    ``finder_cls`` lets :class:`SuRF` subclasses reconstruct themselves
    (``MySuRF.load(path)`` threads the subclass through); it must accept the
    same constructor arguments as :class:`SuRF`.
    """
    from repro.core.finder import SuRF

    if finder_cls is None:
        finder_cls = SuRF
    elif not (isinstance(finder_cls, type) and issubclass(finder_cls, SuRF)):
        raise ValidationError(f"finder_cls must be SuRF or a subclass, got {finder_cls!r}")
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    if not isinstance(payload, dict) or payload.get("format") != BUNDLE_FORMAT:
        raise ValidationError(f"{path} is not a SuRF artifact bundle")
    version = payload.get("version")
    if not isinstance(version, int) or not 1 <= version <= BUNDLE_VERSION:
        raise ValidationError(
            f"{path} is a version-{version} bundle; this build reads versions 1..{BUNDLE_VERSION}"
        )
    config = payload["config"]
    finder = finder_cls(
        trainer=payload["trainer"],
        objective=config["objective"],
        use_density_guidance=config["use_density_guidance"],
        density_method=config["density_method"],
        gso_parameters=payload["gso_parameters"],
        min_half_fraction=config["min_half_fraction"],
        max_half_fraction=config["max_half_fraction"],
        overlap_threshold=config["overlap_threshold"],
        warm_start_fraction=config["warm_start_fraction"],
        random_state=config["random_state"],
    )
    finder.surrogate_ = payload["surrogate"]
    finder.solution_space_ = payload["solution_space"]
    finder.density_ = payload["density"]
    finder.satisfiability_ = payload["satisfiability"]
    finder.workload_features_ = payload["workload_features"]
    finder.workload_targets_ = payload.get("workload_targets")
    finder.workload_size_ = payload["workload_size"]
    return finder
