"""Training surrogate models from past region evaluations.

Reproduces the paper's training protocol: a gradient-boosted model (the
XGBoost stand-in) optionally hyper-tuned with grid-search K-fold CV over
``learning_rate``, ``max_depth``, ``n_estimators`` and ``reg_lambda``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseEstimator, clone
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.metrics import root_mean_squared_error
from repro.ml.model_selection import GridSearchCV, train_test_split
from repro.surrogate.model import SurrogateModel
from repro.surrogate.workload import RegionWorkload


def default_estimator(random_state=None) -> GradientBoostingRegressor:
    """The default surrogate family: gradient-boosted trees with XGBoost-like knobs."""
    return GradientBoostingRegressor(
        n_estimators=150,
        learning_rate=0.1,
        max_depth=5,
        reg_lambda=1.0,
        early_stopping_rounds=10,
        random_state=random_state,
    )


def _estimator_from_name(name: str, options: Dict[str, object], random_state) -> BaseEstimator:
    """Build an estimator from a :data:`repro.ml.SURROGATES` family name.

    The trainer's seed is threaded into families that accept ``random_state``
    (kNN and the linear models do not) unless the options already pin one.
    """
    from repro.ml import SURROGATES

    family = SURROGATES.resolve(name)
    if "random_state" not in options and random_state is not None:
        try:
            return family(**options, random_state=random_state)
        except TypeError:
            pass
    return family(**options)


def _compile_if_possible(estimator: BaseEstimator) -> None:
    """Eagerly compile a freshly fitted tree ensemble into SoA tables.

    Called at the end of :meth:`SurrogateTrainer.train` and
    :meth:`SurrogateTrainer.train_incremental` so surrogates come out of the
    trainer query-ready: the GSO loop (and any serving layer) predicts through
    the compiled kernel from the first call, and warm-start refreshes hand back
    a recompiled ensemble rather than a stale one (``fit`` invalidates the
    cache; this rebuilds it).  Families without a compiled form (kNN, linear)
    pass through untouched.
    """
    from repro.ml.compiled import CompiledPredictor

    if CompiledPredictor.compilable(estimator):
        estimator.compile()


def default_param_grid(small: bool = True) -> Dict[str, Sequence]:
    """Hyper-parameter grid mirroring the paper's GridSearch ranges.

    The paper's full grid has 144 combinations (`3×4×3×4`); the ``small``
    variant keeps the same parameters with fewer values so hyper-tuning remains
    tractable in CI while exercising the identical code path.
    """
    if small:
        return {
            "learning_rate": [0.1, 0.01],
            "max_depth": [3, 5],
            "n_estimators": [50, 100],
            "reg_lambda": [1.0, 0.1],
        }
    return {
        "learning_rate": [0.1, 0.01, 0.001],
        "max_depth": [3, 5, 7, 9],
        "n_estimators": [100, 200, 300],
        "reg_lambda": [1.0, 0.1, 0.01, 0.001],
    }


@dataclass
class TrainingReport:
    """Bookkeeping of one surrogate training run (feeds Figs. 6, 11 and 12)."""

    num_training_examples: int
    training_seconds: float
    hypertuned: bool
    best_params: Optional[Dict[str, object]]
    train_rmse: float
    test_rmse: Optional[float]
    cv_results: list = field(default_factory=list, repr=False)


class SurrogateTrainer:
    """Trains a :class:`SurrogateModel` from a :class:`RegionWorkload`.

    Parameters
    ----------
    estimator:
        Prototype regressor; the default gradient-boosted model is used when
        omitted.  A string names a family in the :data:`repro.ml.SURROGATES`
        registry (``"boosting"``, ``"forest"``, ``"knn"``, ``"ridge"``, ...)
        and may come with ``estimator_options`` — this is what makes trainers
        constructible from plain config dicts.
    estimator_options:
        Keyword arguments for the named estimator family (ignored unless
        ``estimator`` is a string; ``random_state`` is filled in from the
        trainer's seed when the family accepts one and none is given).
    hypertune:
        Whether to run grid-search CV before the final fit.
    param_grid:
        Grid used when ``hypertune`` is enabled (defaults to :func:`default_param_grid`).
    cv:
        Number of cross-validation folds for hyper-tuning.
    holdout_fraction:
        Fraction of the workload held out to report an out-of-sample RMSE;
        0 disables the holdout (all evaluations are used for training).
    augment_features:
        Append the engineered features of
        :func:`repro.surrogate.features.augment_region_vectors` (region corners
        and log-volume) before training.  The fitted :class:`SurrogateModel`
        applies the same map transparently at prediction time.
    random_state:
        Seed for the holdout split and CV shuffling.
    """

    def __init__(
        self,
        estimator=None,
        hypertune: bool = False,
        param_grid: Optional[Dict[str, Sequence]] = None,
        cv: int = 3,
        holdout_fraction: float = 0.2,
        augment_features: bool = True,
        random_state=None,
        estimator_options: Optional[Dict[str, object]] = None,
    ):
        if not 0 <= holdout_fraction < 1:
            raise ValidationError(f"holdout_fraction must be in [0, 1), got {holdout_fraction}")
        if isinstance(estimator, str):
            estimator = _estimator_from_name(
                estimator, dict(estimator_options or {}), random_state
            )
        elif estimator_options:
            raise ValidationError(
                "estimator_options only apply when estimator is a family name"
            )
        self.estimator = estimator if estimator is not None else default_estimator(random_state)
        self.hypertune = bool(hypertune)
        self.param_grid = dict(param_grid) if param_grid is not None else default_param_grid()
        self.cv = int(cv)
        self.holdout_fraction = float(holdout_fraction)
        self.augment_features = bool(augment_features)
        self.random_state = random_state

        self.last_report_: Optional[TrainingReport] = None

    def train_from_engine(
        self,
        engine,
        num_evaluations: int,
        min_fraction: float = 0.01,
        max_fraction: float = 0.5,
        random_state=None,
    ) -> SurrogateModel:
        """Generate a workload against ``engine`` and train on it in one step.

        Workload generation goes through the engine's batched evaluation path
        (:meth:`repro.data.engine.DataEngine.evaluate_batch`), so producing the
        training set costs one broadcast over the data instead of
        ``num_evaluations`` scalar scans.
        """
        from repro.surrogate.workload import generate_workload

        workload = generate_workload(
            engine,
            num_evaluations,
            min_fraction=min_fraction,
            max_fraction=max_fraction,
            random_state=random_state if random_state is not None else self.random_state,
        )
        return self.train(workload)

    def train(self, workload: RegionWorkload) -> SurrogateModel:
        """Train a surrogate on ``workload`` and record a :class:`TrainingReport`."""
        features = workload.features
        targets = workload.targets
        if self.augment_features:
            from repro.surrogate.features import augment_region_vectors

            features = augment_region_vectors(features)

        if self.holdout_fraction > 0 and len(workload) >= 10:
            features_train, features_test, targets_train, targets_test = train_test_split(
                features, targets, test_size=self.holdout_fraction, random_state=self.random_state
            )
        else:
            features_train, targets_train = features, targets
            features_test = targets_test = None

        start = time.perf_counter()
        best_params: Optional[Dict[str, object]] = None
        cv_results: list = []
        if self.hypertune:
            search = GridSearchCV(
                clone(self.estimator),
                self.param_grid,
                cv=self.cv,
                scoring=root_mean_squared_error,
                greater_is_better=False,
                refit=True,
                random_state=self.random_state,
            )
            search.fit(features_train, targets_train)
            fitted = search.best_estimator_
            best_params = search.best_params_
            cv_results = search.results_
        else:
            fitted = clone(self.estimator)
            fitted.fit(features_train, targets_train)
        elapsed = time.perf_counter() - start

        train_rmse = root_mean_squared_error(targets_train, fitted.predict(features_train))
        test_rmse = None
        if features_test is not None:
            test_rmse = root_mean_squared_error(targets_test, fitted.predict(features_test))

        self.last_report_ = TrainingReport(
            num_training_examples=features_train.shape[0],
            training_seconds=elapsed,
            hypertuned=self.hypertune,
            best_params=best_params,
            train_rmse=train_rmse,
            test_rmse=test_rmse,
            cv_results=cv_results,
        )
        _compile_if_possible(fitted)
        return SurrogateModel(fitted, workload.region_dim, augment_features=self.augment_features)

    def train_incremental(
        self,
        surrogate: SurrogateModel,
        workload: RegionWorkload,
        extra_rounds: int = 25,
    ) -> SurrogateModel:
        """Fold ``workload`` into a trained surrogate with warm-start boosting.

        Instead of refitting the whole ensemble, the fitted estimator is
        deep-copied (the surrogate being served is never touched — a serving
        layer can keep answering from it while this runs) and boosted for
        ``extra_rounds`` additional trees on ``workload`` — typically the
        original training evaluations merged with freshly harvested pairs.
        The new rounds fit the *residuals* of the existing model on the
        enlarged data, which is what makes incremental refresh ~``n_estimators
        / extra_rounds`` times cheaper than a full retrain.

        The estimator must support the scikit-learn ``warm_start`` idiom
        (``warm_start`` constructor parameter plus continuation on refit), as
        :class:`~repro.ml.boosting.GradientBoostingRegressor` does.
        """
        import pickle

        if not isinstance(surrogate, SurrogateModel):
            raise ValidationError(f"expected a SurrogateModel, got {type(surrogate)!r}")
        if extra_rounds < 1:
            raise ValidationError(f"extra_rounds must be >= 1, got {extra_rounds}")
        if surrogate.region_dim != workload.region_dim:
            raise ValidationError(
                f"surrogate expects {surrogate.region_dim}-dimensional regions, "
                f"workload holds {workload.region_dim}-dimensional ones"
            )
        # A pickle round trip clones the fitted ensemble ~3x faster than
        # copy.deepcopy (the estimators are plain data objects) and keeps the
        # served surrogate untouched while the copy is boosted further.
        estimator = pickle.loads(pickle.dumps(surrogate.estimator))
        if "warm_start" not in estimator.get_params():
            raise ValidationError(
                f"{type(estimator).__name__} does not support warm_start; "
                "incremental training requires a warm-startable estimator"
            )
        current_rounds = getattr(estimator, "num_trees_", None)
        if current_rounds is None:
            current_rounds = int(estimator.get_params().get("n_estimators", 0))
        estimator.set_params(warm_start=True, n_estimators=int(current_rounds) + int(extra_rounds))

        features = workload.features
        targets = workload.targets
        if surrogate.augments_features:
            from repro.surrogate.features import augment_region_vectors

            features = augment_region_vectors(features)

        start = time.perf_counter()
        estimator.fit(features, targets)
        elapsed = time.perf_counter() - start

        # The boosting loop already tracks per-round training RMSE; reuse the
        # final entry instead of re-running the whole ensemble over the data.
        train_scores = getattr(estimator, "train_scores_", None)
        if train_scores:
            train_rmse = float(train_scores[-1])
        else:
            train_rmse = root_mean_squared_error(targets, estimator.predict(features))
        self.last_report_ = TrainingReport(
            num_training_examples=features.shape[0],
            training_seconds=elapsed,
            hypertuned=False,
            best_params=None,
            train_rmse=train_rmse,
            test_rmse=None,
        )
        _compile_if_possible(estimator)
        return SurrogateModel(
            estimator, workload.region_dim, augment_features=surrogate.augments_features
        )
