"""Surrogate-model layer: workload generation, training and the fitted wrapper.

SuRF trains a regression model on *past region evaluations* — pairs of a
region vector ``[x, l]`` and the statistic ``y`` the back-end returned for it —
and afterwards answers region statistics without touching the data at all.
"""

from repro.surrogate.features import augment_region_vectors, augmented_feature_dim
from repro.surrogate.model import SurrogateModel
from repro.surrogate.training import SurrogateTrainer, TrainingReport, default_param_grid
from repro.surrogate.workload import RegionEvaluation, RegionWorkload, generate_workload

__all__ = [
    "SurrogateModel",
    "SurrogateTrainer",
    "TrainingReport",
    "default_param_grid",
    "RegionEvaluation",
    "RegionWorkload",
    "generate_workload",
    "augment_region_vectors",
    "augmented_feature_dim",
]
