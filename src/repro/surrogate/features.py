"""Feature engineering for surrogate models.

The paper trains surrogates directly on the ``[x, l]`` region vector.  Tree
ensembles, however, struggle to represent the multiplicative structure of many
region statistics (e.g. a count is roughly *local density × volume*) from
axis-aligned splits on centres and half lengths alone.  Appending the region's
corners and its log-volume — quantities that are pure functions of ``[x, l]``,
so no extra information is required from the analyst — markedly reduces the
surrogate's RMSE and is enabled by default (see DESIGN.md for the ablation).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def augment_region_vectors(vectors: np.ndarray) -> np.ndarray:
    """Append derived features to raw ``[x, l]`` region vectors.

    For input of shape ``(n, 2d)`` the output has shape ``(n, 4d + 1)``:
    the original vector, the lower corner ``x - l``, the upper corner ``x + l``
    and the log-volume ``Σ_i log(2 l_i)``.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2 or vectors.shape[1] % 2 != 0:
        raise ValidationError(f"vectors must have shape (n, 2d), got {vectors.shape}")
    dim = vectors.shape[1] // 2
    centers = vectors[:, :dim]
    halves = vectors[:, dim:]
    if np.any(halves <= 0):
        halves = np.maximum(halves, 1e-12)
    log_volume = np.sum(np.log(2.0 * halves), axis=1, keepdims=True)
    return np.hstack([vectors, centers - halves, centers + halves, log_volume])


def augmented_feature_dim(region_dim: int) -> int:
    """Number of columns produced by :func:`augment_region_vectors` for ``d`` dimensions."""
    return 4 * int(region_dim) + 1
