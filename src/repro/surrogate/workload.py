"""Past region evaluations — the surrogate's training data.

The paper trains surrogates on "a set of past function evaluations executed
across the data space with centers selected uniformly at random and region
side lengths set to cover 1%–15% of the data domain".  :func:`generate_workload`
reproduces that protocol against a :class:`repro.data.DataEngine`; in a live
deployment the same pairs would simply be harvested from the query log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.engine import DataEngine
from repro.data.regions import Region, random_region
from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class RegionEvaluation:
    """A single past evaluation: the region queried and the statistic returned."""

    region: Region
    value: float

    @property
    def vector(self) -> np.ndarray:
        """The ``[x, l]`` feature vector of the evaluation."""
        return self.region.to_vector()


class RegionWorkload:
    """A collection of past region evaluations, exposed as a regression dataset."""

    def __init__(self, evaluations: Sequence[RegionEvaluation]):
        evaluations = list(evaluations)
        if not evaluations:
            raise ValidationError("a workload requires at least one evaluation")
        dims = {evaluation.region.dim for evaluation in evaluations}
        if len(dims) != 1:
            raise ValidationError(f"all evaluations must share a dimensionality, got {sorted(dims)}")
        self._evaluations = evaluations
        self._dim = dims.pop()
        self._features: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ container protocol
    def __len__(self) -> int:
        return len(self._evaluations)

    def __iter__(self):
        return iter(self._evaluations)

    def __getitem__(self, index: int) -> RegionEvaluation:
        return self._evaluations[index]

    # ------------------------------------------------------------------ views
    @property
    def region_dim(self) -> int:
        """Dimensionality ``d`` of the evaluated regions (features have ``2d`` columns)."""
        return self._dim

    @property
    def features(self) -> np.ndarray:
        """Feature matrix of shape ``(M, 2d)`` — one ``[x, l]`` vector per evaluation.

        Built once and cached; training code can access it repeatedly without
        paying the per-region stacking cost again.
        """
        if self._features is None:
            self._features = np.stack([evaluation.vector for evaluation in self._evaluations])
        return self._features

    @property
    def targets(self) -> np.ndarray:
        """Target vector of shape ``(M,)`` — the statistic each evaluation returned.

        Built once and cached, like :attr:`features`.
        """
        if self._targets is None:
            self._targets = np.asarray([evaluation.value for evaluation in self._evaluations])
        return self._targets

    @property
    def regions(self) -> List[Region]:
        """The evaluated regions."""
        return [evaluation.region for evaluation in self._evaluations]

    def subset(self, size: int, random_state=None) -> "RegionWorkload":
        """A uniformly sampled sub-workload of ``size`` evaluations."""
        if size <= 0 or size > len(self):
            raise ValidationError(f"size must be in [1, {len(self)}], got {size}")
        rng = ensure_rng(random_state)
        indices = rng.choice(len(self), size=size, replace=False)
        return RegionWorkload([self._evaluations[i] for i in indices])

    def split(self, test_fraction: float = 0.2, random_state=None) -> Tuple["RegionWorkload", "RegionWorkload"]:
        """Split into train / test workloads."""
        if not 0 < test_fraction < 1:
            raise ValidationError(f"test_fraction must be in (0, 1), got {test_fraction}")
        rng = ensure_rng(random_state)
        indices = rng.permutation(len(self))
        num_test = max(1, int(round(test_fraction * len(self))))
        if num_test >= len(self):
            raise ValidationError("test_fraction leaves no training evaluations")
        test = [self._evaluations[i] for i in indices[:num_test]]
        train = [self._evaluations[i] for i in indices[num_test:]]
        return RegionWorkload(train), RegionWorkload(test)

    def merged_with(self, other: "RegionWorkload") -> "RegionWorkload":
        """Concatenate two workloads of the same dimensionality."""
        return RegionWorkload(list(self._evaluations) + list(other._evaluations))


def generate_workload(
    engine: DataEngine,
    num_evaluations: int,
    min_fraction: float = 0.01,
    max_fraction: float = 0.5,
    random_state=None,
) -> RegionWorkload:
    """Generate past evaluations against the true back-end (the paper's protocol).

    Parameters
    ----------
    engine:
        The back-end system that evaluates the true statistic.  Any
        :mod:`repro.backends` backend works here unchanged (evaluation goes
        through ``engine.evaluate_many``), and all backends return
        bit-identical workloads — so surrogates can be trained against data
        that lives out of core, in SQLite or across shards.
    num_evaluations:
        How many region → statistic pairs to produce.
    min_fraction / max_fraction:
        Evaluated regions cover a uniform fraction of the data domain volume in
        this range.  The paper quotes 1 %–15 %; the default upper bound here is
        raised to 50 % so the surrogate also covers the larger regions the
        optimiser may propose (tree models cannot extrapolate beyond the sizes
        they were trained on — see DESIGN.md).
    """
    if num_evaluations < 1:
        raise ValidationError(f"num_evaluations must be >= 1, got {num_evaluations}")
    rng = ensure_rng(random_state)
    bounds = engine.region_bounds()
    # Draw every region first (identical RNG order to evaluating one by one),
    # then evaluate the whole batch against the engine in one call instead of
    # paying per-region Python overhead M times.
    regions = [
        random_region(rng, bounds, min_fraction, max_fraction) for _ in range(int(num_evaluations))
    ]
    values = engine.evaluate_many(regions)
    return RegionWorkload(
        [RegionEvaluation(region, float(value)) for region, value in zip(regions, values)]
    )


def recommended_workload_size(region_dim: int) -> int:
    """Heuristic for how many past evaluations to train on.

    The paper varies 300–300k with dimensionality and observes that ≈1 000
    examples already saturate RMSE at low dimensionality; this grows the
    budget geometrically with the region dimensionality.
    """
    region_dim = max(1, int(region_dim))
    return int(min(300_000, 1_000 * 3 ** (region_dim - 1)))
