"""The fitted surrogate model ``f̂`` that replaces the back-end system."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.data.regions import Region
from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import BaseEstimator
from repro.ml.metrics import root_mean_squared_error


class SurrogateModel:
    """Wraps a fitted regressor so callers can query statistics per region.

    The wrapper remembers the region dimensionality it was trained for and
    exposes both vector-level (``predict``) and region-level
    (``predict_region``) interfaces; the optimiser uses the former, analysts
    the latter.  Prediction never mutates the wrapper or the estimator, so one
    fitted surrogate can be shared across the serving layer's concurrent GSO
    runs (:mod:`repro.serve`) without locking.  When ``augment_features`` is
    set, the same feature map used at
    training time (:func:`repro.surrogate.features.augment_region_vectors`) is
    applied before every prediction — callers always pass plain ``[x, l]``
    vectors either way.
    """

    def __init__(self, estimator: BaseEstimator, region_dim: int, augment_features: bool = False):
        if region_dim < 1:
            raise ValidationError(f"region_dim must be >= 1, got {region_dim}")
        self._estimator = estimator
        self._region_dim = int(region_dim)
        self._augment_features = bool(augment_features)

    # ------------------------------------------------------------------ introspection
    @property
    def estimator(self) -> BaseEstimator:
        """The underlying fitted regressor."""
        return self._estimator

    @property
    def region_dim(self) -> int:
        """Dimensionality ``d`` of the regions this surrogate understands."""
        return self._region_dim

    @property
    def feature_dim(self) -> int:
        """Dimensionality of the feature vectors (``2 d``)."""
        return 2 * self._region_dim

    @property
    def augments_features(self) -> bool:
        """Whether the engineered feature map is applied before prediction."""
        return self._augment_features

    # ------------------------------------------------------------------ prediction
    def predict(self, vectors: np.ndarray) -> np.ndarray:
        """Predict statistics for a batch of ``[x, l]`` vectors, shape ``(n, 2d)``."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        if vectors.shape[1] != self.feature_dim:
            raise ValidationError(
                f"expected vectors with {self.feature_dim} columns, got {vectors.shape[1]}"
            )
        if self._augment_features:
            from repro.surrogate.features import augment_region_vectors

            vectors = augment_region_vectors(vectors)
        return self._estimator.predict(vectors)

    def predict_vector(self, vector: np.ndarray) -> float:
        """Predict the statistic of a single ``[x, l]`` vector."""
        return float(self.predict(np.asarray(vector, dtype=np.float64).reshape(1, -1))[0])

    def predict_region(self, region: Region) -> float:
        """Predict the statistic of a :class:`Region`."""
        if region.dim != self._region_dim:
            raise ValidationError(
                f"region has dimensionality {region.dim}, surrogate expects {self._region_dim}"
            )
        return self.predict_vector(region.to_vector())

    def predict_regions(self, regions: Iterable[Region]) -> np.ndarray:
        """Predict statistics for an iterable of regions."""
        vectors = np.stack([region.to_vector() for region in regions])
        return self.predict(vectors)

    # ------------------------------------------------------------------ evaluation
    def rmse(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Out-of-sample RMSE of the surrogate on held-out evaluations."""
        return root_mean_squared_error(targets, self.predict(features))
