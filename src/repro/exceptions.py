"""Exception hierarchy for the SuRF reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class when integrating the library.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, sign, range or type)."""


class NotFittedError(ReproError, RuntimeError):
    """An estimator or finder was used before ``fit`` was called."""


class DimensionMismatchError(ValidationError):
    """Two objects that must share dimensionality do not."""


class EmptyRegionError(ReproError, ValueError):
    """A statistic that needs at least one data point was asked of an empty region."""


class TimeoutExceededError(ReproError, RuntimeError):
    """A baseline algorithm exceeded its configured time budget."""

    def __init__(self, message: str, fraction_done: float = 0.0):
        super().__init__(message)
        #: Fraction of planned work finished before the timeout (Table I reports this).
        self.fraction_done = float(fraction_done)
