"""Observability: metrics registry, request tracing and profiling hooks.

Opt in per kernel — ``ServiceKernel(finder, observability=True)`` or
``production_chain(observability=...)`` — and scrape ``GET /metrics`` /
``GET /trace/{id}`` on the front door.  Everything is off by default and the
uninstrumented serving path is unchanged; see the "Observability" section of
``docs/architecture.md`` for the metric name/label table and overhead policy.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.obs.runtime import (
    GSORunProfile,
    Observability,
    Trace,
    accepts_profile_hook,
    instrument_chain,
    register_kernel,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    TraceRecord,
    Tracer,
    current_span,
    span,
    use_span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "parse_prometheus_text",
    "Observability",
    "Trace",
    "GSORunProfile",
    "accepts_profile_hook",
    "instrument_chain",
    "register_kernel",
    "Span",
    "NULL_SPAN",
    "TraceRecord",
    "Tracer",
    "current_span",
    "span",
    "use_span",
]
