"""Request tracing: span trees, a capped in-memory ring and a JSONL exporter.

A **span** is one timed operation; spans nest into a tree that shows where a
request's wall clock went — middleware stage by middleware stage, down to the
individual GSO runs the execute stage launched.  The
:class:`~repro.obs.runtime.Trace` middleware builds one tree per batch (every
stage of the kernel's chain pushes a child span; generation retries simply
re-enter the inner stages, so their spans appear twice under the gate) and
registers one :class:`TraceRecord` per request keyed by its envelope trace
id, so ``GET /trace/{id}`` on the front door can replay exactly what happened
to any recent request.

Records land in a :class:`Tracer`: a thread-safe, capacity-capped ring
(oldest records evicted first — tracing must never grow without bound) plus
an optional append-only JSONL file, one record per line, for offline
analysis.  The :func:`span` context manager lets any code attach a custom
child span to the active tree via a :class:`contextvars.ContextVar`; when no
trace is active it yields a shared no-op span, so instrumented code costs one
context-variable read when observability is off.
"""

from __future__ import annotations

import contextvars
import json
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ValidationError


class Span:
    """One timed node of a trace tree.

    ``start``/``end`` are :func:`time.perf_counter` readings; exported times
    are offsets from the tree's root, so they are meaningful across processes
    and restarts (absolute wall-clock epochs are deliberately not recorded —
    the tree describes *where time went*, not *when*).
    """

    __slots__ = ("name", "start", "end", "attributes", "events", "children")

    def __init__(self, name: str, start: Optional[float] = None, **attributes):
        self.name = name
        self.start = perf_counter() if start is None else start
        self.end: Optional[float] = None
        self.attributes: Optional[Dict[str, Any]] = dict(attributes) if attributes else None
        self.events: Optional[List[Tuple[str, float, Optional[dict]]]] = None
        self.children: Optional[List["Span"]] = None

    def child(self, name: str, start: Optional[float] = None, **attributes) -> "Span":
        node = Span(name, start=start, **attributes)
        if self.children is None:
            self.children = []
        self.children.append(node)
        return node

    def event(self, name: str, **attributes) -> None:
        if self.events is None:
            self.events = []
        self.events.append((name, perf_counter(), attributes or None))

    def set_attribute(self, key: str, value: Any) -> None:
        if self.attributes is None:
            self.attributes = {}
        self.attributes[key] = value

    def finish(self, end: Optional[float] = None) -> None:
        if self.end is None:
            self.end = perf_counter() if end is None else end

    @property
    def duration_seconds(self) -> float:
        end = self.end if self.end is not None else perf_counter()
        return max(0.0, end - self.start)

    def to_dict(self, origin: Optional[float] = None) -> Dict[str, Any]:
        """JSON-safe tree view with times as offsets from ``origin``."""
        if origin is None:
            origin = self.start
        node: Dict[str, Any] = {
            "name": self.name,
            "offset_seconds": max(0.0, self.start - origin),
            "duration_seconds": self.duration_seconds,
        }
        if self.attributes:
            node["attributes"] = dict(self.attributes)
        if self.events:
            node["events"] = [
                {"name": name, "offset_seconds": max(0.0, at - origin), "attributes": attrs}
                for name, at, attrs in self.events
            ]
        if self.children:
            node["children"] = [child.to_dict(origin) for child in self.children]
        return node

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, duration={self.duration_seconds:.6f}s)"


class _NullSpan:
    """Shared do-nothing span yielded when no trace is active."""

    __slots__ = ()

    def child(self, name, start=None, **attributes):
        return self

    def event(self, name, **attributes):
        pass

    def set_attribute(self, key, value):
        pass

    def finish(self, end=None):
        pass

    duration_seconds = 0.0


NULL_SPAN = _NullSpan()

_CURRENT_SPAN: contextvars.ContextVar[Optional[Span]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> Optional[Span]:
    """The span the calling context is inside, or ``None``."""
    return _CURRENT_SPAN.get()


@contextmanager
def use_span(span: Span) -> Iterator[Span]:
    """Make ``span`` the active parent for :func:`span` calls in this context."""
    token = _CURRENT_SPAN.set(span)
    try:
        yield span
    finally:
        _CURRENT_SPAN.reset(token)


@contextmanager
def span(name: str, **attributes) -> Iterator[Span]:
    """Attach a timed child span to the active trace (no-op when none).

    Usage::

        with span("load-shapefile", path=str(path)):
            ...

    The child is finished on exit even if the body raises; the exception type
    is recorded as an attribute before propagating.
    """
    parent = _CURRENT_SPAN.get()
    if parent is None:
        yield NULL_SPAN
        return
    node = parent.child(name, **attributes)
    token = _CURRENT_SPAN.set(node)
    try:
        yield node
    except BaseException as exc:
        node.set_attribute("exception", type(exc).__name__)
        raise
    finally:
        _CURRENT_SPAN.reset(token)
        node.finish()


class TraceRecord:
    """One request's finished trace: identity, verdict and its span tree."""

    __slots__ = ("trace_id", "model", "status", "root", "events")

    def __init__(
        self,
        trace_id: str,
        model: str,
        status: str,
        root: Span,
        events: Optional[List[Tuple[str, float, Optional[dict]]]] = None,
    ):
        self.trace_id = trace_id
        self.model = model
        self.status = status
        self.root = root
        self.events = events

    def to_dict(self) -> Dict[str, Any]:
        origin = self.root.start
        payload: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "model": self.model,
            "status": self.status,
            "spans": self.root.to_dict(origin),
        }
        if self.events:
            payload["events"] = [
                {"name": name, "offset_seconds": max(0.0, at - origin), "attributes": attrs}
                for name, at, attrs in self.events
            ]
        return payload


class Tracer:
    """Capped ring of recent :class:`TraceRecord` plus an optional JSONL sink.

    Parameters
    ----------
    capacity:
        Maximum records held in memory; the oldest is evicted when a new one
        arrives at capacity.  Lookup by trace id is O(1).
    jsonl_path:
        When given, every record is also appended to this file as one JSON
        line at record time (the in-memory ring caps retention; the file does
        not).  The file handle is opened lazily and closed by :meth:`close`.
    """

    def __init__(self, capacity: int = 512, jsonl_path=None):
        if int(capacity) < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.jsonl_path = jsonl_path
        #: trace id -> TraceRecord | row tuple; the dict's insertion order IS
        #: the eviction order, so no separate ring bookkeeping is needed.
        self._records: Dict[str, object] = {}
        self._sink = None
        self._lock = threading.Lock()

    def record(self, record: TraceRecord) -> None:
        self.record_many((record,))

    def record_many(self, records: Sequence[TraceRecord]) -> None:
        """Register a batch of finished records under one lock acquisition.

        JSONL serialization (when a sink is configured) happens before the
        lock; ring maintenance is O(1) per record."""
        lines = None
        if self.jsonl_path is not None:
            lines = [json.dumps(record.to_dict()) for record in records]
        with self._lock:
            held = self._records
            for record in records:
                trace_id = record.trace_id
                if trace_id in held:  # move duplicates to the fresh end
                    del held[trace_id]
                held[trace_id] = record
            while len(held) > self.capacity:
                del held[next(iter(held))]
            if lines:
                if self._sink is None:
                    self._sink = open(self.jsonl_path, "a", encoding="utf-8")
                self._sink.write("\n".join(lines) + "\n")
                self._sink.flush()

    def record_rows(self, rows: Sequence[tuple]) -> None:
        """Register ``(trace_id, model, status, root, events)`` rows.

        The request hot path stores plain tuples; :meth:`get` materialises a
        :class:`TraceRecord` only when someone actually asks for the trace.
        With a JSONL sink configured every record is serialized at record
        time anyway, so the lazy form buys nothing and the rows are promoted
        eagerly."""
        if self.jsonl_path is not None:
            self.record_many([TraceRecord(*row) for row in rows])
            return
        with self._lock:
            held = self._records
            for row in rows:
                trace_id = row[0]
                if trace_id in held:
                    del held[trace_id]
                held[trace_id] = row
            while len(held) > self.capacity:
                del held[next(iter(held))]

    def get(self, trace_id: str) -> Optional[TraceRecord]:
        with self._lock:
            entry = self._records.get(trace_id)
            if entry is None:
                return None
            if type(entry) is tuple:  # promote a lazy row in place
                entry = TraceRecord(*entry)
                self._records[trace_id] = entry
            return entry

    def ids(self) -> List[str]:
        """Trace ids currently retained, oldest first."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def close(self) -> None:
        with self._lock:
            sink, self._sink = self._sink, None
        if sink is not None:
            sink.close()


__all__ = [
    "Span",
    "NULL_SPAN",
    "TraceRecord",
    "Tracer",
    "current_span",
    "span",
    "use_span",
]
