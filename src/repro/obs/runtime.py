"""Wiring between the serving kernel and the metrics/tracing primitives.

:class:`Observability` bundles one :class:`~repro.obs.metrics.MetricsRegistry`
and one :class:`~repro.obs.tracing.Tracer` and pre-declares every metric
family the serving layer emits (see the name/label table in
``docs/architecture.md``).  It is enabled per kernel —
``ServiceKernel(finder, observability=True)`` or
``production_chain(observability=...)`` — and may be **shared** across the
kernels of a :class:`~repro.api.tenancy.ModelRegistry`: tenant labels keep the
series apart while ``/metrics`` scrapes one registry.

The moving parts, in chain order:

* :class:`Trace` — the outermost middleware stage: assigns a trace id to every
  request that arrived without one, installs a :class:`BatchRecorder` in
  ``ctx.extras``, and on the way out converts the recorded span tree into one
  :class:`~repro.obs.tracing.TraceRecord` per request plus the per-request
  counters (requests by verdict, cache hit/miss, total latency).
* :func:`instrument_chain` — wraps every other stage of a kernel's chain in a
  :class:`InstrumentedStage` that times it into the per-stage latency
  histogram and pushes a span; the kernel composes the wrapped chain only when
  observability is configured, so the uninstrumented path is bit-identical to
  an observability-less build.
* :class:`GSORunProfile` — the per-iteration profiling hook the execute stage
  hands to :meth:`SuRF.find_regions <repro.core.finder.SuRF.find_regions>`:
  iterations, surrogate-eval counts and the swarm's mean decision-radius
  trajectory, at the cost of one ``is not None`` check per swarm iteration
  when disabled.
* :func:`register_kernel` — a pull-time collector over one kernel: serving
  counters, generation, cache occupancy, query-log watermark, drift gauges
  and backend scan counters are *read* at scrape time, never written per
  request.

Everything here is duck-typed against the middleware contract — this module
imports nothing from :mod:`repro.api`, so the api layer can lazily import it
without a cycle.
"""

from __future__ import annotations

import inspect
import itertools
import os
import weakref
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.tracing import Span, Tracer


# --------------------------------------------------------------------------- GSO profiling
class GSORunProfile:
    """Per-iteration profile of one optimiser run (the ``profile_hook``).

    :meth:`on_iteration` is called once per swarm iteration with the running
    evaluation count, the decision radii and the fitness vector; the summary
    carries the radius/feasibility trajectories so a trace can show *how* the
    swarm converged, not just that it did.
    """

    __slots__ = ("iterations", "evaluations", "radius_trajectory", "feasible_trajectory")

    def __init__(self):
        self.iterations = 0
        self.evaluations = 0
        self.radius_trajectory: List[float] = []
        self.feasible_trajectory: List[float] = []

    def on_iteration(self, iteration: int, evaluations: int, radii, fitness) -> None:
        self.iterations = int(iteration)
        self.evaluations = int(evaluations)
        self.radius_trajectory.append(float(np.mean(radii)))
        self.feasible_trajectory.append(float(np.mean(np.isfinite(fitness))))

    def summary(self) -> Dict[str, Any]:
        return {
            "iterations": self.iterations,
            "surrogate_evals": self.evaluations,
            "radius_trajectory": list(self.radius_trajectory),
            "feasible_trajectory": list(self.feasible_trajectory),
        }


#: ``type -> bool``: whether its ``find_regions`` accepts ``profile_hook``.
#: Cached so the executor pays one signature inspection per finder class, not
#: per run; test doubles with the pre-observability signature keep working.
_PROFILE_HOOK_OK: Dict[type, bool] = {}


def accepts_profile_hook(finder) -> bool:
    kind = type(finder)
    ok = _PROFILE_HOOK_OK.get(kind)
    if ok is None:
        try:
            parameters = inspect.signature(kind.find_regions).parameters
            ok = "profile_hook" in parameters or any(
                parameter.kind is inspect.Parameter.VAR_KEYWORD
                for parameter in parameters.values()
            )
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            ok = False
        _PROFILE_HOOK_OK[kind] = ok
    return ok


# --------------------------------------------------------------------------- metric families
def gso_run_families(metrics: MetricsRegistry):
    """The optimiser-run counter families (shared with worker-side deltas)."""
    return (
        metrics.counter("repro_gso_runs_total", "Optimiser runs executed.", ("model",)),
        metrics.counter(
            "repro_gso_surrogate_evals_total",
            "Surrogate objective evaluations consumed by optimiser runs.",
            ("model",),
        ),
        metrics.counter(
            "repro_gso_iterations_total", "Swarm iterations executed.", ("model",)
        ),
    )


def record_gso_run_into(metrics: MetricsRegistry, model: str, result, profile=None) -> None:
    """Count one finished optimiser run into ``metrics``.

    ``result`` is a :class:`~repro.core.finder.RegionSearchResult`; its
    ``optimization`` summary already carries exact evaluation and iteration
    counts, so run accounting works even when per-iteration profiling is off
    (or unsupported by a test-double finder).
    """
    runs, evals, iterations = gso_run_families(metrics)
    runs.labels(model).inc()
    optimization = getattr(result, "optimization", None)
    if optimization is not None:
        evals.labels(model).inc(float(optimization.function_evaluations))
        iterations.labels(model).inc(float(optimization.num_iterations))
    elif profile is not None:
        evals.labels(model).inc(float(profile.get("surrogate_evals", 0)))
        iterations.labels(model).inc(float(profile.get("iterations", 0)))


def worker_run_delta(finder, query, max_proposals, model: str, profile_on: bool):
    """One observed optimiser run inside a :class:`ProcessExecute` worker.

    Records into a private, collector-less registry and returns
    ``(result, extra)`` where ``extra`` carries the registry snapshot (merged
    into the parent's registry when the future is collected — counters add,
    so no increment is lost crossing the process boundary) plus the profile
    summary for the run's span.
    """
    hook = GSORunProfile() if profile_on and accepts_profile_hook(finder) else None
    if hook is not None:
        result = finder.find_regions(query, max_proposals=max_proposals, profile_hook=hook)
    else:
        result = finder.find_regions(query, max_proposals=max_proposals)
    metrics = MetricsRegistry()
    summary = hook.summary() if hook is not None else None
    record_gso_run_into(metrics, model, result, summary)
    return result, {
        "metrics": metrics.snapshot(run_collectors=False),
        "profile": summary,
    }


# --------------------------------------------------------------------------- the bundle
class Observability:
    """Shared metrics + tracing configuration for one or many kernels.

    Parameters
    ----------
    metrics / tracer:
        Pre-built registry/tracer to record into (defaults are created).
    trace_capacity / trace_jsonl:
        Forwarded to the default :class:`Tracer` (in-memory ring size and the
        optional JSONL export path).
    gso_profile:
        Attach a :class:`GSORunProfile` to every optimiser run (per-iteration
        radius/eval trajectories on the run spans).  Off leaves the optimiser
        loop's hook at ``None`` — its zero-overhead state.
    timing_breakdown:
        Attach the per-stage timing dict to every
        :class:`~repro.api.envelopes.FindResponse` (the opt-in ``timing``
        field; stage durations are inclusive of their nested stages).
    latency_buckets:
        Histogram bucket bounds for the per-stage latency families.
    """

    def __init__(
        self,
        *,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        trace_capacity: int = 512,
        trace_jsonl=None,
        gso_profile: bool = True,
        timing_breakdown: bool = False,
        latency_buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(capacity=trace_capacity, jsonl_path=trace_jsonl)
        )
        self.gso_profile = bool(gso_profile)
        self.timing_breakdown = bool(timing_breakdown)
        self._seq = itertools.count(1)
        self._id_prefix = f"t-{os.getpid():x}{id(self) & 0xFFFF:04x}"

        m = self.metrics
        self.requests_total = m.counter(
            "repro_requests_total", "Requests answered, by tenant and verdict.",
            ("model", "verdict"),
        )
        self.stage_seconds = m.histogram(
            "repro_request_latency_seconds",
            "Middleware-stage latency (stage='total' is the whole request).",
            ("model", "stage"),
            buckets=latency_buckets,
        )
        self.cache_outcomes = m.counter(
            "repro_cache_requests_total", "Result-cache lookups, by outcome.",
            ("model", "outcome"),
        )
        self.cache_evictions = m.counter(
            "repro_cache_generation_evictions_total",
            "Cached results dropped because a hot swap superseded their generation.",
            ("model",),
        )
        self.coalesced_total = m.counter(
            "repro_coalesced_total", "Requests answered by sharing an in-batch run.",
            ("model",),
        )
        self.generation_retries = m.counter(
            "repro_generation_retries_total",
            "Batches re-classified because a hot swap raced the Eq. 5 probe.",
            ("model",),
        )
        self.shed_total = m.counter(
            "repro_shed_total", "Runs shed by admission control, by reason.",
            ("model", "reason"),
        )
        self.admission_inflight = m.gauge(
            "repro_admission_inflight", "Distinct optimiser runs currently admitted.",
            ("model",),
        )
        self.gso_runs, self.gso_evals, self.gso_iterations = gso_run_families(m)

    @classmethod
    def coerce(cls, value) -> "Observability":
        """``True`` → a fresh default bundle; an instance passes through."""
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        raise ValidationError(
            f"observability must be True or an Observability instance, got {value!r}"
        )

    def next_trace_id(self) -> str:
        """A cheap unique id for requests that arrived without one."""
        return f"{self._id_prefix}-{next(self._seq):x}"

    def run_profiler(self, finder) -> Optional[GSORunProfile]:
        """A fresh per-run profile hook, or ``None`` when profiling is off
        (or the finder's ``find_regions`` predates the hook parameter)."""
        if self.gso_profile and accepts_profile_hook(finder):
            return GSORunProfile()
        return None

    def record_gso_run(self, model: str, result, profile=None) -> None:
        record_gso_run_into(self.metrics, model, result, profile)


# --------------------------------------------------------------------------- batch recording
#: Verdicts that consulted the cache and missed (timeouts/errors were
#: classified as misses before their run failed — mirrors ``ServiceStats``).
_MISS_STATUSES = frozenset({"served", "timeout", "error"})


class BatchRecorder:
    """Per-batch span-tree builder installed in ``ctx.extras["obs_trace"]``.

    All mutation happens on the batch's driving thread (stages run nested;
    the execute stage collects worker futures on the same thread), so no
    locking is needed; the shared registries it writes into at
    :meth:`finalize` carry their own locks.
    """

    __slots__ = ("obs", "root", "_stack", "_events")

    def __init__(self, obs: Observability, ctx):
        self.obs = obs
        self.root = Span(
            "request" if len(ctx.states) == 1 else "batch",
            start=ctx.batch_start,
            model=ctx.kernel.name,
            batch_size=len(ctx.states),
        )
        self._stack: List[Span] = [self.root]
        self._events: Dict[int, list] = {}

    # ------------------------------------------------------------------ spans
    def push_stage(self, name: str, start: Optional[float] = None) -> Span:
        node = self._stack[-1].child(name, start=start)
        self._stack.append(node)
        return node

    def pop_stage(self, node: Span, end: Optional[float] = None) -> None:
        node.finish(end)
        if self._stack and self._stack[-1] is node:
            self._stack.pop()

    def run_span(self, indices, seconds: float, result, profile=None) -> None:
        """A completed optimiser run, attached under the current stage span."""
        end = perf_counter()
        node = self._stack[-1].child("gso-run", start=end - seconds)
        node.set_attribute("requests", len(indices))
        optimization = getattr(result, "optimization", None)
        if optimization is not None:
            node.set_attribute("iterations", int(optimization.num_iterations))
            node.set_attribute("surrogate_evals", int(optimization.function_evaluations))
        if profile is not None:
            node.set_attribute("radius_trajectory", profile.get("radius_trajectory"))
            node.set_attribute("feasible_trajectory", profile.get("feasible_trajectory"))
        node.finish(end)

    # ------------------------------------------------------------------ events
    def event(self, index: int, name: str, **attributes) -> None:
        """An event scoped to one request of the batch (by position)."""
        self._events.setdefault(index, []).append(
            (name, perf_counter(), attributes or None)
        )

    def batch_event(self, name: str, **attributes) -> None:
        self.root.event(name, **attributes)

    def generation_retry(self, ctx, generation: int) -> None:
        self.batch_event("generation-retry", stale_generation=generation)
        self.obs.generation_retries.labels(ctx.kernel.name).inc()

    def note_coalesced(self, ctx) -> None:
        """Record leader/follower linkage for every coalesced group."""
        states = ctx.states
        for indices in ctx.pending.values():
            if len(indices) < 2:
                continue
            leader = indices[0]
            leader_trace = states[leader].trace_id
            follower_traces = [states[index].trace_id for index in indices[1:]]
            self.event(leader, "coalesce-leader", followers=follower_traces)
            for index, trace in zip(indices[1:], follower_traces):
                del trace
                self.event(index, "coalesced-into", leader=leader_trace)
            self.obs.coalesced_total.labels(ctx.kernel.name).inc(len(indices) - 1)

    # ------------------------------------------------------------------ finalize
    def finalize(self, ctx) -> None:
        """Close the tree, emit per-request counters and register the records."""
        self.root.finish()
        obs = self.obs
        kernel_name = ctx.kernel.name
        total_seconds = self.root.duration_seconds
        timing: Optional[Dict[str, float]] = None
        if obs.timing_breakdown:
            timing = {}
            _collect_stage_timing(self.root, timing)
            timing["total"] = total_seconds
        # Aggregate per (model, verdict) first so a 16-request cached burst
        # costs a handful of lock acquisitions, not a handful per request;
        # cache outcomes derive from the verdicts, outside the loop.
        verdicts: Dict[tuple, int] = {}
        rows = []
        events = self._events
        root = self.root
        for index, state in enumerate(ctx.states):
            model = state.request.model
            status = state.status or "unknown"
            key = (model, status)
            verdicts[key] = verdicts.get(key, 0) + 1
            if timing is not None:
                state.timing = dict(timing)
            rows.append(
                (state.trace_id, model, status, root,
                 events.get(index) if events else None)
            )
        for (model, status), count in verdicts.items():
            obs.requests_total.labels(model, status).inc(count)
            if status == "cached":
                obs.cache_outcomes.labels(model, "hit").inc(count)
            elif status in _MISS_STATUSES:
                obs.cache_outcomes.labels(model, "miss").inc(count)
        obs.stage_seconds.labels(kernel_name, "total").observe_many(
            total_seconds, len(ctx.states)
        )
        obs.tracer.record_rows(rows)


def _collect_stage_timing(node: Span, out: Dict[str, float]) -> None:
    for child in node.children or ():
        out[child.name] = out.get(child.name, 0.0) + child.duration_seconds
        _collect_stage_timing(child, out)


# --------------------------------------------------------------------------- middleware
class Trace:
    """The tracing middleware stage — install outermost.

    ``ServiceKernel(finder, observability=...)`` prepends one automatically;
    :func:`repro.api.admission.production_chain` accepts
    ``observability=True`` to do the same for hand-built chains.
    """

    name = "trace"
    #: Marker the kernel uses to find this stage without importing this module.
    obs_trace_stage = True

    def __init__(self, observability=True):
        self.observability = Observability.coerce(observability)

    def __call__(self, ctx, next):
        obs = self.observability
        extras = ctx.extras
        extras["obs"] = obs
        recorder = BatchRecorder(obs, ctx)
        extras["obs_trace"] = recorder
        for state in ctx.states:
            if state.trace_id is None:
                state.trace_id = obs.next_trace_id()
        try:
            return next(ctx)
        finally:
            recorder.finalize(ctx)

    def close(self) -> None:
        """Flush and close the tracer's JSONL sink (reopened on next record)."""
        self.observability.tracer.close()


class InstrumentedStage:
    """A middleware stage wrapped with span + per-stage latency recording.

    Only installed into the *composed* handler of an observability-enabled
    kernel — ``kernel.middleware`` still exposes the bare stages, and a kernel
    without observability composes them directly, unchanged.
    """

    __slots__ = ("stage", "obs", "name", "_child", "_child_model")

    def __init__(self, stage, obs: Observability):
        self.stage = stage
        self.obs = obs
        self.name = getattr(stage, "name", type(stage).__name__)
        # The histogram child is cached per kernel name: a wrapper lives in
        # exactly one kernel's composed chain, so the lookup hits every batch.
        self._child = None
        self._child_model = None

    def __call__(self, ctx, next):
        extras = ctx._extras
        recorder = extras.get("obs_trace") if extras is not None else None
        if recorder is None:
            return self.stage(ctx, next)
        model = ctx.kernel.name
        child = self._child
        if child is None or self._child_model != model:
            child = self.obs.stage_seconds.labels(model, self.name)
            self._child = child
            self._child_model = model
        start = perf_counter()
        node = recorder.push_stage(self.name, start)
        try:
            return self.stage(ctx, next)
        finally:
            end = perf_counter()
            recorder.pop_stage(node, end)
            child.observe(end - start)


def instrument_chain(chain: Sequence, obs: Observability) -> List:
    """Wrap every non-Trace stage for span/latency recording."""
    return [
        stage
        if getattr(stage, "obs_trace_stage", False)
        else InstrumentedStage(stage, obs)
        for stage in chain
    ]


# --------------------------------------------------------------------------- kernel collector
def register_kernel(obs: Observability, kernel) -> None:
    """Register pull-time gauges over one kernel's state.

    Reads — never writes — the kernel's counters, cache, generation, log
    watermark, drift monitor and exact-engine backend counters when the
    registry is scraped or snapshotted.  Holds only a weak reference, so a
    shared :class:`Observability` never keeps a discarded kernel alive.
    """
    metrics = obs.metrics
    service_stats = metrics.gauge(
        "repro_service_stats", "ServiceKernel lifetime counters, by name.",
        ("model", "counter"),
    )
    generation = metrics.gauge(
        "repro_generation", "Model generation currently served (hot-swap count).",
        ("model",),
    )
    cache_entries = metrics.gauge(
        "repro_cache_entries", "Results currently held in the LRU cache.", ("model",)
    )
    pending_log = metrics.gauge(
        "repro_pending_log_entries",
        "Logged exact evaluations not yet folded in by a refresh.",
        ("model",),
    )
    drift_rmse = metrics.gauge(
        "repro_drift_rolling_rmse", "DriftMonitor rolling residual RMSE.", ("model",)
    )
    drift_baseline = metrics.gauge(
        "repro_drift_baseline_rmse", "DriftMonitor baseline RMSE.", ("model",)
    )
    drift_score = metrics.gauge(
        "repro_drift_score", "DriftMonitor drift score (rolling / baseline).", ("model",)
    )
    backend_scans = metrics.counter(
        "repro_backend_scans_total", "Backend scan/count primitive calls.",
        ("model", "backend"),
    )
    backend_gathers = metrics.counter(
        "repro_backend_gathers_total", "Backend gather primitive calls.",
        ("model", "backend"),
    )
    backend_regions = metrics.counter(
        "repro_backend_regions_scanned_total", "Regions evaluated by backend scans.",
        ("model", "backend"),
    )
    backend_rows = metrics.counter(
        "repro_backend_rows_scanned_total", "Rows covered by backend scans.",
        ("model", "backend"),
    )
    kernel_ref = weakref.ref(kernel)

    def collect(_registry) -> None:
        live = kernel_ref()
        if live is None:
            return
        name = live.name
        for counter_name, value in live.stats.as_dict().items():
            if isinstance(value, (int, float)):
                service_stats.labels(name, counter_name).set(value)
        generation.labels(name).set(live.generation)
        cache_entries.labels(name).set(live.cached_queries)
        pending_log.labels(name).set(live.pending_log_entries)
        monitor = getattr(live._incremental_trainer, "drift_monitor", None)
        if monitor is not None:
            if monitor.rolling_rmse is not None:
                drift_rmse.labels(name).set(monitor.rolling_rmse)
            if monitor.baseline_rmse is not None:
                drift_baseline.labels(name).set(monitor.baseline_rmse)
            drift_score.labels(name).set(monitor.drift_score)
        engine = live._exact_engine
        backend = getattr(engine, "backend", None)
        if backend is not None:
            counters = backend.counters
            backend_scans.labels(name, backend.name).set_total(counters.scan_calls)
            backend_gathers.labels(name, backend.name).set_total(counters.gather_calls)
            backend_regions.labels(name, backend.name).set_total(counters.regions_scanned)
            backend_rows.labels(name, backend.name).set_total(counters.rows_scanned)

    metrics.register_collector(collect)


__all__ = [
    "Observability",
    "Trace",
    "BatchRecorder",
    "InstrumentedStage",
    "GSORunProfile",
    "accepts_profile_hook",
    "gso_run_families",
    "record_gso_run_into",
    "worker_run_delta",
    "instrument_chain",
    "register_kernel",
]
