"""A thread-safe, process-aware metrics registry with Prometheus exposition.

The serving layer's counters (:class:`~repro.api.kernel.ServiceStats`) are a
coarse per-kernel summary; operating the ROADMAP's front door needs labelled
time series — requests by tenant and verdict, latency histograms by stage,
GSO surrogate-eval counts, backend rows scanned.  This module provides the
storage for those series with three deliberate properties:

* **thread-safe**: every family keeps one lock; increments from the kernel's
  worker threads, the admission stage and the ASGI scrape path never race;
* **process-aware**: :meth:`MetricsRegistry.snapshot` produces a plain,
  picklable dict and :meth:`MetricsRegistry.merge` folds such a snapshot into
  a live registry — a :class:`~repro.api.execution.ProcessExecute` worker
  records into a private registry and ships the delta back with its result,
  so counts survive the process boundary without shared memory;
* **pull-based gauges**: callbacks registered via
  :meth:`MetricsRegistry.register_collector` run at snapshot/render time, so
  state that already exists elsewhere (cache occupancy, generation, drift
  RMSE, backend counters) costs nothing per request and is simply *read* when
  ``/metrics`` is scraped.

Exposition follows the Prometheus text format (``# HELP`` / ``# TYPE``,
``_bucket{le="..."}`` / ``_sum`` / ``_count`` for histograms), which every
Prometheus-compatible scraper parses.  No third-party client library is used
or required.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ValidationError

#: Fixed log-spaced latency buckets (seconds): 1 µs to 100 s, two per decade.
#: Shared by every latency histogram so per-stage series are comparable and
#: worker-snapshot merges never face mismatched bucket layouts.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 2.0), 12) for exponent in range(-12, 5)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValidationError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing count (one labelled child of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError(f"counters only increase, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def set_total(self, value: float) -> None:
        """Overwrite the running total — for collectors mirroring an external
        monotonic count (e.g. backend row counters) and for snapshot merges.
        Regular instrumentation must use :meth:`inc`."""
        with self._lock:
            self._value = float(value)


class Gauge:
    """A value that can go up and down (one labelled child of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution (one labelled child of a family).

    Buckets are cumulative at exposition time but stored as per-bucket counts
    so merges are element-wise adds.  ``observe`` is the hot path: one bisect
    over the (shared, immutable) upper-bound tuple plus three adds under the
    family lock.
    """

    __slots__ = ("_lock", "_bounds", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock, bounds: Tuple[float, ...]):
        self._lock = lock
        self._bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        slot = bisect_left(self._bounds, value)
        with self._lock:
            self.counts[slot] += 1
            self.sum += value
            self.count += 1

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` identical observations under one lock acquisition
        (a batch's requests all share one total-latency reading)."""
        count = int(count)
        if count <= 0:
            return
        value = float(value)
        slot = bisect_left(self._bounds, value)
        with self._lock:
            self.counts[slot] += count
            self.sum += value * count
            self.count += count


_KINDS = ("counter", "gauge", "histogram")
_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one metric name, keyed by their label-value tuple."""

    __slots__ = ("name", "help", "kind", "label_names", "buckets", "_children", "_lock")

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        _check_name(name)
        if kind not in _KINDS:
            raise ValidationError(f"kind must be one of {_KINDS}, got {kind!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValidationError(f"invalid label name {label!r} for metric {name!r}")
        if kind == "histogram":
            buckets = tuple(float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS))
            if list(buckets) != sorted(set(buckets)):
                raise ValidationError(f"histogram buckets must be strictly increasing, got {buckets}")
        elif buckets is not None:
            raise ValidationError(f"buckets only apply to histograms, not {kind!r}")
        self.name = name
        self.help = str(help)
        self.kind = kind
        self.label_names = tuple(label_names)
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, *values: str):
        """The child for one label-value combination (created on first use)."""
        if len(values) != len(self.label_names):
            raise ValidationError(
                f"metric {self.name!r} takes labels {self.label_names}, got {values!r}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if self.kind == "histogram":
                        child = Histogram(self._lock, self.buckets)
                    else:
                        child = _CHILD_TYPES[self.kind](self._lock)
                    self._children[key] = child
        return child

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Stable-ordered ``(label_values, child)`` pairs."""
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Named metric families plus pull-time collector callbacks.

    Families are created idempotently: asking for an existing name with the
    same kind and labels returns the same family (so many kernels can share
    one registry); a conflicting re-declaration raises.
    """

    def __init__(self):
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ declaration
    def _family(
        self,
        name: str,
        help: str,
        kind: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != tuple(labels):
                    raise ValidationError(
                        f"metric {name!r} already declared as {family.kind} with labels "
                        f"{family.label_names}, cannot redeclare as {kind} with {tuple(labels)}"
                    )
                return family
            family = MetricFamily(
                name, help, kind, tuple(labels),
                tuple(buckets) if buckets is not None else None,
            )
            self._families[name] = family
            return family

    def counter(self, name: str, help: str, labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help, "counter", labels)

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help, "gauge", labels)

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        return self._family(name, help, "histogram", labels, buckets or DEFAULT_LATENCY_BUCKETS)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------ collectors
    def register_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run before every snapshot/render.

        Collectors *read* existing state (cache sizes, drift monitors, backend
        counters) into gauges at scrape time, so tracked subsystems pay
        nothing per request.
        """
        if not callable(collector):
            raise ValidationError(f"collector must be callable, got {collector!r}")
        with self._lock:
            self._collectors.append(collector)

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector(self)

    # ------------------------------------------------------------------ snapshot / merge
    def snapshot(self, run_collectors: bool = True) -> Dict[str, dict]:
        """A plain, picklable view of every family — the unit of merging.

        Worker processes call this (with their collector-less private
        registries) and ship the result back with their run results;
        aggregation layers call it to merge many registries into one.
        """
        if run_collectors:
            self._run_collectors()
        out: Dict[str, dict] = {}
        for family in self.families():
            series: Dict[Tuple[str, ...], object] = {}
            for key, child in family.series():
                if family.kind == "histogram":
                    with family._lock:
                        series[key] = {
                            "counts": list(child.counts),
                            "sum": child.sum,
                            "count": child.count,
                        }
                else:
                    series[key] = child.value
            out[family.name] = {
                "help": family.help,
                "kind": family.kind,
                "labels": family.label_names,
                "buckets": family.buckets,
                "series": series,
            }
        return out

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms *add* (no increment is ever lost when many
        worker deltas merge); gauges take the snapshot's value (last writer
        wins — gauges describe current state, not accumulation).
        """
        for name, payload in snapshot.items():
            family = self._family(
                name, payload["help"], payload["kind"],
                payload["labels"], payload.get("buckets"),
            )
            for key, value in payload["series"].items():
                child = family.labels(*key)
                if family.kind == "counter":
                    with family._lock:
                        child._value += float(value)
                elif family.kind == "gauge":
                    child.set(float(value))
                else:
                    counts = value["counts"]
                    if len(counts) != len(child.counts):
                        raise ValidationError(
                            f"histogram {name!r} snapshot has {len(counts)} buckets, "
                            f"registry has {len(child.counts)}"
                        )
                    with family._lock:
                        for slot, delta in enumerate(counts):
                            child.counts[slot] += delta
                        child.sum += value["sum"]
                        child.count += value["count"]

    # ------------------------------------------------------------------ exposition
    def render(self) -> str:
        """Prometheus text exposition (runs collectors first)."""
        self._run_collectors()
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.series():
                labels = _render_labels(family.label_names, key)
                if family.kind == "histogram":
                    with family._lock:
                        counts = list(child.counts)
                        total, count = child.sum, child.count
                    cumulative = 0
                    for bound, bucket_count in zip(family.buckets, counts):
                        cumulative += bucket_count
                        bucket_labels = _render_labels(
                            family.label_names + ("le",), key + (_format_value(bound),)
                        )
                        lines.append(f"{family.name}_bucket{bucket_labels} {cumulative}")
                    cumulative += counts[-1]
                    inf_labels = _render_labels(family.label_names + ("le",), key + ("+Inf",))
                    lines.append(f"{family.name}_bucket{inf_labels} {cumulative}")
                    lines.append(f"{family.name}_sum{labels} {_format_value(total)}")
                    lines.append(f"{family.name}_count{labels} {count}")
                else:
                    lines.append(f"{family.name}{labels} {_format_value(child.value)}")
        return "\n".join(lines) + "\n"


def _render_labels(names: Iterable[str], values: Iterable[str]) -> str:
    pairs = [
        f'{name}="{_escape_label_value(str(value))}"' for name, value in zip(names, values)
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, float]]:
    """Parse Prometheus text exposition into ``{series_name: {labelset: value}}``.

    A deliberately small validating parser used by the smoke example and the
    tests to assert the exposition format is well formed: every non-comment
    line must be ``name{labels} value`` with a parseable float value.
    """
    series: Dict[str, Dict[str, float]] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$", line)
        if match is None:
            raise ValidationError(f"unparseable exposition line {line_number}: {line!r}")
        name, labels, raw_value = match.groups()
        value = float(raw_value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        series.setdefault(name, {})[labels or ""] = value
    return series


__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "parse_prometheus_text",
]
