"""In-memory NumPy backend — the default and bit-exact reference.

This is the scan code extracted verbatim from the pre-backend
``DataEngine`` internals: the blocked broadcast mask kernel, the
``MAX_MASK_ELEMENTS`` region blocking of batched evaluation, and the optional
:class:`~repro.data.index.GridIndex`.  The refactor's contract is that
``DataEngine(dataset, statistic)`` routed through this backend returns
bit-identical values to the pre-refactor engine, which the seeded equivalence
suite (``tests/property/test_property_backends.py``) asserts.

With an index attached, evaluation *prunes first*: candidate rows come from
the grid cells overlapping the region and only those are counted or gathered.
This now covers attribute statistics too (the historical count-only
restriction is lifted): pruned candidate indices are sorted back into row
order before the target gather, so float reductions see exactly the array the
unindexed path reduces.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.backends.base import MAX_MASK_ELEMENTS, DataBackend, block_mask_kernel
from repro.exceptions import ValidationError


class NumpyBackend(DataBackend):
    """Exact scans over in-memory arrays (optionally pruned by a grid index).

    Parameters
    ----------
    region_values:
        ``(N, d)`` matrix of the region columns.
    target_values:
        Optional ``(N,)`` measured-attribute column for attribute statistics.
    index:
        Optional :class:`~repro.data.index.GridIndex` built over
        ``region_values``; when present, scans prune to candidate cells first.
    """

    name = "numpy"

    def __init__(
        self,
        region_values: np.ndarray,
        target_values: Optional[np.ndarray] = None,
        index=None,
    ):
        region_values = np.asarray(region_values, dtype=np.float64)
        if region_values.ndim != 2 or region_values.shape[0] == 0:
            raise ValidationError(
                f"region_values must be a non-empty (N, d) matrix, got shape {region_values.shape}"
            )
        self._region_values = region_values
        # Contiguous per-dimension columns for the batched mask kernel.
        self._columns = [
            np.ascontiguousarray(region_values[:, k]) for k in range(region_values.shape[1])
        ]
        self._target = None
        if target_values is not None:
            target_values = np.asarray(target_values, dtype=np.float64)
            if target_values.shape != (region_values.shape[0],):
                raise ValidationError(
                    f"target_values must have shape ({region_values.shape[0]},), "
                    f"got {target_values.shape}"
                )
            self._target = target_values
        if index is not None and getattr(index, "num_points", None) != region_values.shape[0]:
            raise ValidationError(
                "index does not cover the backend's rows: "
                f"{getattr(index, 'num_points', None)} indexed vs {region_values.shape[0]} stored"
            )
        self._index = index

    # ------------------------------------------------------------------ introspection
    @property
    def num_rows(self) -> int:
        return self._region_values.shape[0]

    @property
    def region_dim(self) -> int:
        return self._region_values.shape[1]

    @property
    def has_target(self) -> bool:
        return self._target is not None

    @property
    def index(self):
        """The attached :class:`~repro.data.index.GridIndex`, or ``None``."""
        return self._index

    @property
    def region_values(self) -> np.ndarray:
        """The stored ``(N, d)`` region-column matrix."""
        return self._region_values

    @property
    def target_values(self) -> Optional[np.ndarray]:
        """The stored target column, or ``None``."""
        return self._target

    # ------------------------------------------------------------------ primitives
    def scan_masks(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        lowers, uppers = self._check_corners(lowers, uppers)
        # Full mask width even with an index: the (M, N) matrix covers N rows.
        self.counters.note_scan(lowers.shape[0], lowers.shape[0] * self.num_rows)
        return self._scan_block(lowers, uppers)

    def count(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        lowers, uppers = self._check_corners(lowers, uppers)
        if lowers.shape[0] == 0:
            self.counters.note_scan(0, 0)
            return np.empty(0, dtype=np.int64)
        if self._index is not None:
            counts = np.asarray(
                [indices.size for indices in self._index.query_many(lowers, uppers)],
                dtype=np.int64,
            )
            self.counters.note_scan(lowers.shape[0], int(counts.sum()))
            return counts
        self.counters.note_scan(lowers.shape[0], lowers.shape[0] * self.num_rows)
        counts = np.empty(lowers.shape[0], dtype=np.int64)
        for start, stop, masks in self._iter_mask_blocks(lowers, uppers):
            counts[start:stop] = masks.sum(axis=1, dtype=np.int64)
        return counts

    def gather(self, lowers: np.ndarray, uppers: np.ndarray) -> List[np.ndarray]:
        lowers, uppers = self._check_corners(lowers, uppers)
        self._require_target_column()
        if lowers.shape[0] == 0:
            self.counters.note_gather(0, 0)
            return []
        if self._index is not None:
            values = [
                self._target[np.sort(indices)]
                for indices in self._index.query_many(lowers, uppers)
            ]
            self.counters.note_gather(
                lowers.shape[0], sum(selected.size for selected in values)
            )
            return values
        self.counters.note_gather(lowers.shape[0], lowers.shape[0] * self.num_rows)
        values: List[np.ndarray] = []
        for _, _, masks in self._iter_mask_blocks(lowers, uppers):
            values.extend(self._target[mask] for mask in masks)
        return values

    def take(self, indices: np.ndarray) -> np.ndarray:
        return self._region_values[np.asarray(indices, dtype=np.int64)]

    # ------------------------------------------------------------------ evaluation
    def evaluate(self, statistic, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        """Batched statistic evaluation.

        * Unindexed: the pre-refactor engine path, verbatim — full masks in
          ``MAX_MASK_ELEMENTS`` region blocks reduced by the statistic's
          batch kernel (which vectorises count/ratio and loops the scalar
          reduction for order-sensitive float statistics).
        * Indexed: prune to candidates, then count or gather over the sorted
          candidate rows — no ``(M, N)`` mask is materialised for any
          statistic.
        """
        lowers, uppers = self._check_corners(lowers, uppers)
        if self._index is not None:
            if statistic.count_only:
                return statistic.compute_from_counts(self.count(lowers, uppers))
            self._require_target(statistic)
            return np.asarray(
                [statistic.compute_from_values(values) for values in self.gather(lowers, uppers)],
                dtype=np.float64,
            )
        if not statistic.count_only:
            self._require_target(statistic)
        note = self.counters.note_scan if statistic.count_only else self.counters.note_gather
        note(lowers.shape[0], lowers.shape[0] * self.num_rows)
        values = np.empty(lowers.shape[0], dtype=np.float64)
        for start, stop, masks in self._iter_mask_blocks(lowers, uppers):
            values[start:stop] = statistic.compute_batch_from_arrays(self._target, masks)
        return values

    # ------------------------------------------------------------------ internals
    def _scan_block(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        """Mask computation shared by :meth:`scan_masks` and the blocked
        iterators — no scan accounting, so a blocked caller counts once."""
        masks = np.empty((lowers.shape[0], self.num_rows), dtype=bool)
        if lowers.shape[0] == 0:
            return masks
        if self._index is not None:
            masks[:] = False
            for row, indices in enumerate(self._index.query_many(lowers, uppers)):
                masks[row, indices] = True
            return masks
        return block_mask_kernel(self._columns, lowers, uppers, masks)

    def _iter_mask_blocks(self, lowers: np.ndarray, uppers: np.ndarray):
        """Yield ``(start, stop, masks)`` with at most MAX_MASK_ELEMENTS bools each."""
        block = max(1, MAX_MASK_ELEMENTS // max(self.num_rows, 1))
        for start in range(0, lowers.shape[0], block):
            stop = min(start + block, lowers.shape[0])
            yield start, stop, self._scan_block(lowers[start:stop], uppers[start:stop])

    def _require_target_column(self) -> None:
        if self._target is None:
            raise ValidationError(
                f"backend {self.name!r} stores no target column; gather is unavailable"
            )
