"""Sharded parallel exact evaluation: range-partitioned rows, thread-pool scans.

:class:`ShardedBackend` splits the row range into contiguous shards, each held
by any other :class:`~repro.backends.base.DataBackend` (in-memory NumPy by
default; memory-mapped or SQLite shards compose freely), and evaluates every
scan on all shards concurrently.  The mask kernels and SQL scans release the
GIL, so on multi-core hosts a 4-shard scan approaches 4x single-backend
throughput (``benchmarks/test_bench_backends.py`` asserts the >= 2x floor).

Merging per-shard results back into exact statistics follows Definition 3's
decomposability distinction:

* **counts** are integer sums over shards — always exact;
* statistics whose ``decomposition`` is ``"exact"`` (``count``, ``ratio``)
  merge integer sufficient statistics — bit-identical to an unsharded scan;
* with ``merge="stats"``, ``"float"``-decomposable statistics (``sum``,
  ``average``, ``variance``) merge float sufficient statistics — the fast
  path that ships O(shards) numbers instead of the selected values, equal to
  the unsharded reduction up to summation-order rounding;
* everything else — including ``merge="exact"`` float statistics and
  non-decomposable ones (``median``) — **gathers**: shards return their
  selected target values, the merge concatenates them in shard order (= row
  order, because the partition is a contiguous range split) and reduces once
  with the statistic's own kernel, bit-identical to the in-memory reference.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.backends.base import DataBackend
from repro.exceptions import ValidationError

_MERGE_MODES = ("exact", "stats")


class ShardedBackend(DataBackend):
    """Fan scans out over contiguous row shards and merge the results.

    Parameters
    ----------
    shards:
        Sub-backends holding consecutive row ranges, in row order.  All must
        share the region dimensionality; either all or none store a target.
    max_workers:
        Thread-pool width (default ``min(num shards, cpu count)``); ``1``
        evaluates shards serially.
    merge:
        ``"exact"`` (default) keeps every statistic bit-identical to an
        unsharded scan; ``"stats"`` additionally merges float sufficient
        statistics (``sum``/``average``/``variance``) without gathering, at
        the cost of last-ulp drift.
    """

    name = "sharded"
    parallel = True

    def __init__(
        self,
        shards: Sequence[DataBackend],
        max_workers: Optional[int] = None,
        merge: str = "exact",
    ):
        shards = list(shards)
        if len(shards) < 1:
            raise ValidationError("ShardedBackend requires at least one shard")
        dims = {shard.region_dim for shard in shards}
        if len(dims) != 1:
            raise ValidationError(f"shards disagree on region_dim: {sorted(dims)}")
        targets = {shard.has_target for shard in shards}
        if len(targets) != 1:
            raise ValidationError("either every shard or no shard must store a target column")
        if merge not in _MERGE_MODES:
            raise ValidationError(f"merge must be one of {_MERGE_MODES}, got {merge!r}")
        if max_workers is not None and int(max_workers) < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        self._shards = shards
        self._offsets = np.cumsum([0] + [shard.num_rows for shard in shards])
        self.merge = merge
        self.max_workers = max_workers
        self.out_of_core = all(shard.out_of_core for shard in shards)

    @classmethod
    def from_arrays(
        cls,
        region_values: np.ndarray,
        target_values: Optional[np.ndarray] = None,
        num_shards: int = 4,
        shard_backend: str = "numpy",
        max_workers: Optional[int] = None,
        merge: str = "exact",
        **shard_options,
    ) -> "ShardedBackend":
        """Range-partition in-memory arrays across ``num_shards`` sub-backends."""
        from repro.backends import make_backend

        region_values = np.asarray(region_values, dtype=np.float64)
        if region_values.ndim != 2 or region_values.shape[0] == 0:
            raise ValidationError(
                f"region_values must be a non-empty (N, d) matrix, got shape {region_values.shape}"
            )
        num_shards = int(num_shards)
        if num_shards < 1:
            raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
        num_shards = min(num_shards, region_values.shape[0])
        boundaries = np.linspace(0, region_values.shape[0], num_shards + 1).astype(np.int64)
        shards = []
        for shard_id, (start, stop) in enumerate(zip(boundaries[:-1], boundaries[1:])):
            options = dict(shard_options)
            # Storage-location options must not be shared between shards: a
            # common sqlite path would have every shard drop and re-create the
            # same table, a common chunked directory would overwrite the same
            # .npy files — either way only the last shard's rows would survive.
            if "path" in options and options["path"] is not None:
                options["path"] = f"{options['path']}.shard{shard_id}"
            if "directory" in options and options["directory"] is not None:
                options["directory"] = os.path.join(
                    str(options["directory"]), f"shard-{shard_id}"
                )
            shards.append(
                make_backend(
                    shard_backend,
                    region_values[start:stop],
                    None if target_values is None else target_values[start:stop],
                    **options,
                )
            )
        return cls(shards, max_workers=max_workers, merge=merge)

    # ------------------------------------------------------------------ introspection
    @property
    def num_rows(self) -> int:
        return int(self._offsets[-1])

    @property
    def region_dim(self) -> int:
        return self._shards[0].region_dim

    @property
    def has_target(self) -> bool:
        return self._shards[0].has_target

    @property
    def num_shards(self) -> int:
        """Number of sub-backends."""
        return len(self._shards)

    @property
    def shards(self) -> List[DataBackend]:
        """The sub-backends, in row order."""
        return list(self._shards)

    # ------------------------------------------------------------------ fan-out core
    def _map(self, task: Callable[[DataBackend], object]) -> list:
        """Run ``task`` once per shard, concurrently when workers allow."""
        workers = self.max_workers
        if workers is None:
            workers = min(len(self._shards), os.cpu_count() or 1)
        if workers <= 1 or len(self._shards) == 1:
            return [task(shard) for shard in self._shards]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(task, self._shards))

    # ------------------------------------------------------------------ primitives
    def scan_masks(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        lowers, uppers = self._check_corners(lowers, uppers)
        # Logical scan accounting; each shard also counts its physical share.
        self.counters.note_scan(lowers.shape[0], lowers.shape[0] * self.num_rows)
        parts = self._map(lambda shard: shard.scan_masks(lowers, uppers))
        return np.concatenate(parts, axis=1)

    def count(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        lowers, uppers = self._check_corners(lowers, uppers)
        self.counters.note_scan(lowers.shape[0], lowers.shape[0] * self.num_rows)
        parts = self._map(lambda shard: shard.count(lowers, uppers))
        # Integer sums over disjoint shards are the unsharded counts exactly.
        return np.sum(parts, axis=0, dtype=np.int64)

    def gather(self, lowers: np.ndarray, uppers: np.ndarray) -> List[np.ndarray]:
        lowers, uppers = self._check_corners(lowers, uppers)
        if not self.has_target:
            raise ValidationError(
                f"backend {self.name!r} stores no target column; gather is unavailable"
            )
        self.counters.note_gather(lowers.shape[0], lowers.shape[0] * self.num_rows)
        parts = self._map(lambda shard: shard.gather(lowers, uppers))
        # Shard order is row order (contiguous range partition), so the
        # concatenation is exactly the unsharded row-order gather.
        return [
            np.concatenate([part[row] for part in parts]) for row in range(lowers.shape[0])
        ]

    def take(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_rows):
            raise ValidationError(
                f"row indices must be in [0, {self.num_rows}), "
                f"got range [{indices.min()}, {indices.max()}]"
            )
        out = np.empty((indices.size, self.region_dim), dtype=np.float64)
        shard_ids = np.searchsorted(self._offsets, indices, side="right") - 1
        for shard_id, shard in enumerate(self._shards):
            selected = shard_ids == shard_id
            if selected.any():
                out[selected] = shard.take(indices[selected] - self._offsets[shard_id])
        return out

    # ------------------------------------------------------------------ evaluation
    def evaluate(self, statistic, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        lowers, uppers = self._check_corners(lowers, uppers)
        if statistic.count_only:
            return statistic.compute_from_counts(self.count(lowers, uppers))
        self._require_target(statistic)
        decomposition = statistic.decomposition
        use_sufficient_stats = decomposition == "exact" or (
            decomposition == "float" and self.merge == "stats"
        )
        if use_sufficient_stats:
            # Sufficient-statistics merges never call self.gather, so the
            # logical gather is accounted here (shards count their own).
            self.counters.note_gather(lowers.shape[0], lowers.shape[0] * self.num_rows)
            # Shards reduce their own selections to sufficient statistics;
            # only O(num_shards) tuples per region cross the merge.
            parts = self._map(
                lambda shard: [
                    statistic.partial_stats(values)
                    for values in shard.gather(lowers, uppers)
                ]
            )
            return np.asarray(
                [
                    statistic.merge_stats([part[row] for part in parts])
                    for row in range(lowers.shape[0])
                ],
                dtype=np.float64,
            )
        return np.asarray(
            [statistic.compute_from_values(values) for values in self.gather(lowers, uppers)],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        for shard in self._shards:
            shard.close()
