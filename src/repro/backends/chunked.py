"""Out-of-core backend: memory-mapped ``.npy`` storage, streaming block scans.

Table I's contrast — SuRF flat in ``N`` while every data-backed method scans
the engine — only bites when ``N`` exceeds RAM.  :class:`ChunkedBackend`
makes that regime reachable: the region-column matrix (and optional target
column) live in ``.npy`` files opened with ``numpy``'s memory mapping, and
every scan streams over row blocks of at most ``block_rows`` rows, so peak
memory is ``O(M · block_rows)`` booleans plus one row block of data — never
``O(M · N)`` and never the full dataset.

Bit-identity with :class:`~repro.backends.numpy_backend.NumpyBackend` holds
because each block applies exactly the same broadcast comparisons to exactly
the same values, counts are integer sums, and per-region gathers concatenate
block slices in row order before the statistic's (single, final) reduction.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from typing import List, Optional

import numpy as np

from repro.backends.base import MAX_MASK_ELEMENTS, DataBackend, block_mask_kernel
from repro.exceptions import ValidationError


class ChunkedBackend(DataBackend):
    """Streaming scans over memory-mapped ``.npy`` files.

    Parameters
    ----------
    region_path:
        ``.npy`` file holding the ``(N, d)`` region-column matrix.
    target_path:
        Optional ``.npy`` file holding the ``(N,)`` target column.
    block_rows:
        Rows loaded per streamed block (the out-of-core working set).
    _cleanup_dir:
        Internal — directory deleted when the backend is closed (set by
        :meth:`from_arrays` for self-written temporaries).
    """

    name = "chunked"
    out_of_core = True

    def __init__(
        self,
        region_path,
        target_path=None,
        block_rows: int = 262_144,
        _cleanup_dir=None,
    ):
        if int(block_rows) < 1:
            raise ValidationError(f"block_rows must be >= 1, got {block_rows}")
        self._block_rows = int(block_rows)
        self._region = np.load(region_path, mmap_mode="r")
        if self._region.ndim != 2 or self._region.shape[0] == 0:
            raise ValidationError(
                f"region file must hold a non-empty (N, d) matrix, got shape {self._region.shape}"
            )
        self._target = None
        if target_path is not None:
            self._target = np.load(target_path, mmap_mode="r")
            if self._target.shape != (self._region.shape[0],):
                raise ValidationError(
                    f"target file must hold shape ({self._region.shape[0]},), "
                    f"got {self._target.shape}"
                )
        self._finalizer = None
        if _cleanup_dir is not None:
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, str(_cleanup_dir), ignore_errors=True
            )

    @classmethod
    def from_arrays(
        cls,
        region_values: np.ndarray,
        target_values: Optional[np.ndarray] = None,
        directory=None,
        block_rows: int = 262_144,
    ) -> "ChunkedBackend":
        """Spill in-memory arrays to ``.npy`` files and memory-map them back.

        With ``directory=None`` the files go to a fresh temporary directory
        that is deleted when the backend is closed (or garbage collected).
        For data that already lives on disk, construct the backend directly
        from the file paths instead — nothing is copied then.
        """
        region_values = np.ascontiguousarray(region_values, dtype=np.float64)
        cleanup = None
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-chunked-")
            cleanup = directory
        os.makedirs(directory, exist_ok=True)
        region_path = os.path.join(str(directory), "region_columns.npy")
        np.save(region_path, region_values)
        target_path = None
        if target_values is not None:
            target_path = os.path.join(str(directory), "target_column.npy")
            np.save(target_path, np.ascontiguousarray(target_values, dtype=np.float64))
        return cls(region_path, target_path, block_rows=block_rows, _cleanup_dir=cleanup)

    # ------------------------------------------------------------------ introspection
    @property
    def num_rows(self) -> int:
        return self._region.shape[0]

    @property
    def region_dim(self) -> int:
        return self._region.shape[1]

    @property
    def has_target(self) -> bool:
        return self._target is not None

    @property
    def block_rows(self) -> int:
        """Rows streamed per block."""
        return self._block_rows

    # ------------------------------------------------------------------ streaming core
    def _iter_row_blocks(self, lowers: np.ndarray, uppers: np.ndarray, with_target: bool):
        """Yield ``(row_start, masks, target_block)`` over streamed row blocks.

        Each block is copied out of the memory map once, split into contiguous
        per-dimension columns, and masked with the shared broadcast kernel —
        the same comparisons the in-memory backend runs, in the same order.
        """
        num_regions = lowers.shape[0]
        for row_start in range(0, self.num_rows, self._block_rows):
            row_stop = min(row_start + self._block_rows, self.num_rows)
            block = np.asarray(self._region[row_start:row_stop], dtype=np.float64)
            columns = [np.ascontiguousarray(block[:, k]) for k in range(block.shape[1])]
            masks = np.empty((num_regions, row_stop - row_start), dtype=bool)
            block_mask_kernel(columns, lowers, uppers, masks)
            target_block = None
            if with_target:
                target_block = np.asarray(self._target[row_start:row_stop], dtype=np.float64)
            yield row_start, masks, target_block

    # ------------------------------------------------------------------ primitives
    def scan_masks(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        lowers, uppers = self._check_corners(lowers, uppers)
        self.counters.note_scan(lowers.shape[0], lowers.shape[0] * self.num_rows)
        masks = np.empty((lowers.shape[0], self.num_rows), dtype=bool)
        if lowers.shape[0] == 0:
            return masks
        for row_start, block_masks, _ in self._iter_row_blocks(lowers, uppers, with_target=False):
            masks[:, row_start : row_start + block_masks.shape[1]] = block_masks
        return masks

    def count(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        lowers, uppers = self._check_corners(lowers, uppers)
        self.counters.note_scan(lowers.shape[0], lowers.shape[0] * self.num_rows)
        counts = np.zeros(lowers.shape[0], dtype=np.int64)
        for start, stop in self._region_blocks(lowers.shape[0]):
            for _, block_masks, _ in self._iter_row_blocks(
                lowers[start:stop], uppers[start:stop], with_target=False
            ):
                counts[start:stop] += block_masks.sum(axis=1, dtype=np.int64)
        return counts

    def gather(self, lowers: np.ndarray, uppers: np.ndarray) -> List[np.ndarray]:
        lowers, uppers = self._check_corners(lowers, uppers)
        if self._target is None:
            raise ValidationError(
                f"backend {self.name!r} stores no target column; gather is unavailable"
            )
        self.counters.note_gather(lowers.shape[0], lowers.shape[0] * self.num_rows)
        gathered: List[np.ndarray] = [None] * lowers.shape[0]  # type: ignore[list-item]
        for start, stop in self._region_blocks(lowers.shape[0]):
            pieces: List[List[np.ndarray]] = [[] for _ in range(stop - start)]
            for _, block_masks, target_block in self._iter_row_blocks(
                lowers[start:stop], uppers[start:stop], with_target=True
            ):
                for offset in range(stop - start):
                    pieces[offset].append(target_block[block_masks[offset]])
            for offset in range(stop - start):
                # Block slices concatenate in row order, so the final array is
                # exactly target[mask] of the in-memory path.
                gathered[start + offset] = (
                    np.concatenate(pieces[offset])
                    if len(pieces[offset]) > 1
                    else pieces[offset][0]
                )
        return gathered

    def take(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        return np.asarray(self._region[indices], dtype=np.float64)

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Drop the memory maps and delete self-written temporary files."""
        self._region = None
        self._target = None
        if self._finalizer is not None:
            self._finalizer()

    # ------------------------------------------------------------------ internals
    def _region_blocks(self, num_regions: int):
        """Region blocking that caps the per-step mask matrix at MAX_MASK_ELEMENTS."""
        block = max(1, MAX_MASK_ELEMENTS // max(self._block_rows, 1))
        for start in range(0, num_regions, block):
            yield start, min(start + block, num_regions)
