"""SQL backend: region predicates compiled to range ``WHERE`` clauses (stdlib sqlite3).

A hyper-rectangle is a conjunction of per-column range predicates, which maps
one-to-one onto SQL::

    SELECT COUNT(*) FROM data
    WHERE c0 >= ? AND c0 <= ? AND c1 >= ? AND c1 <= ?

so the scan runs inside the database engine and only counts (or the selected
target values) cross the boundary.  Count-only statistics are answered
entirely by ``COUNT(*)``; with ``exact_reductions=False``, ``sum`` and
``average`` statistics are answered by SQL ``SUM``/``AVG`` aggregates as well
(server-side, but the database's summation order may differ from NumPy's in
the last ulp).  The default keeps bit-identity with the in-memory reference:
float statistics fetch the matching target values ``ORDER BY rowid`` — i.e.
in row order — and reduce them with the statistic's own NumPy kernel.

SQLite stores ``REAL`` as IEEE-754 doubles and Python binds floats losslessly,
so the range comparisons decide every row exactly as NumPy does.  One
connection is shared across threads behind a lock (``sqlite3`` connections
are not concurrency-safe), which lets a served :class:`~repro.serve.service.SuRFService`
ground-truth proposals against a SQL-resident engine from its worker pool.
"""

from __future__ import annotations

import sqlite3
import threading
from typing import List, Optional

import numpy as np

from repro.backends.base import DataBackend
from repro.exceptions import ValidationError


class SQLiteBackend(DataBackend):
    """Exact region scans against a SQLite table.

    Parameters
    ----------
    region_values:
        ``(N, d)`` region-column matrix loaded into the table.
    target_values:
        Optional ``(N,)`` target column (stored as the ``target`` column).
    path:
        Database location; ``None`` uses a private in-memory database.  The
        backend owns the ``data`` table at that location: an existing one is
        dropped and reloaded from the given arrays.
    exact_reductions:
        When ``True`` (default), float statistics gather values and reduce in
        NumPy, bit-identical to the in-memory backend.  When ``False``,
        ``sum``/``average`` run as SQL aggregates — faster over large
        selections, equal up to summation-order rounding.
    """

    name = "sqlite"
    out_of_core = True

    _AGGREGATES = {"sum": "SUM(target)", "average": "AVG(target)"}

    def __init__(
        self,
        region_values: np.ndarray,
        target_values: Optional[np.ndarray] = None,
        path=None,
        exact_reductions: bool = True,
    ):
        region_values = np.asarray(region_values, dtype=np.float64)
        if region_values.ndim != 2 or region_values.shape[0] == 0:
            raise ValidationError(
                f"region_values must be a non-empty (N, d) matrix, got shape {region_values.shape}"
            )
        if target_values is not None:
            target_values = np.asarray(target_values, dtype=np.float64)
            if target_values.shape != (region_values.shape[0],):
                raise ValidationError(
                    f"target_values must have shape ({region_values.shape[0]},), "
                    f"got {target_values.shape}"
                )
        if not np.all(np.isfinite(region_values)) or (
            target_values is not None and not np.all(np.isfinite(target_values))
        ):
            # SQLite stores NaN as NULL, silently changing comparison results.
            raise ValidationError("SQLiteBackend requires finite data values")
        self._num_rows, self._dim = region_values.shape
        self._has_target = target_values is not None
        self.exact_reductions = bool(exact_reductions)
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(
            ":memory:" if path is None else str(path), check_same_thread=False
        )
        self._load(region_values, target_values)
        self._where = " AND ".join(f"c{k} >= ? AND c{k} <= ?" for k in range(self._dim))

    def _load(self, region_values: np.ndarray, target_values: Optional[np.ndarray]) -> None:
        columns = [f"c{k} REAL" for k in range(self._dim)]
        if self._has_target:
            columns.append("target REAL")
        placeholders = ", ".join("?" for _ in columns)
        with self._lock:
            self._connection.execute("DROP TABLE IF EXISTS data")
            self._connection.execute(f"CREATE TABLE data ({', '.join(columns)})")
            stacked = (
                np.column_stack([region_values, target_values])
                if self._has_target
                else region_values
            )
            self._connection.executemany(
                f"INSERT INTO data VALUES ({placeholders})",
                (tuple(map(float, row)) for row in stacked),
            )
            self._connection.commit()

    # ------------------------------------------------------------------ introspection
    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def region_dim(self) -> int:
        return self._dim

    @property
    def has_target(self) -> bool:
        return self._has_target

    # ------------------------------------------------------------------ SQL helpers
    def _params(self, lower: np.ndarray, upper: np.ndarray) -> tuple:
        params = []
        for k in range(self._dim):
            params.extend((float(lower[k]), float(upper[k])))
        return tuple(params)

    def _fetch(self, sql: str, params: tuple) -> list:
        with self._lock:
            return self._connection.execute(sql, params).fetchall()

    # ------------------------------------------------------------------ primitives
    def scan_masks(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        lowers, uppers = self._check_corners(lowers, uppers)
        self.counters.note_scan(lowers.shape[0], lowers.shape[0] * self._num_rows)
        masks = np.zeros((lowers.shape[0], self._num_rows), dtype=bool)
        sql = f"SELECT rowid FROM data WHERE {self._where}"
        for row in range(lowers.shape[0]):
            rows = self._fetch(sql, self._params(lowers[row], uppers[row]))
            if rows:
                # SQLite rowids are 1-based insertion order.
                masks[row, np.fromiter((r[0] - 1 for r in rows), dtype=np.int64)] = True
        return masks

    def count(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        lowers, uppers = self._check_corners(lowers, uppers)
        self.counters.note_scan(lowers.shape[0], lowers.shape[0] * self._num_rows)
        sql = f"SELECT COUNT(*) FROM data WHERE {self._where}"
        return np.asarray(
            [
                self._fetch(sql, self._params(lowers[row], uppers[row]))[0][0]
                for row in range(lowers.shape[0])
            ],
            dtype=np.int64,
        )

    def gather(self, lowers: np.ndarray, uppers: np.ndarray) -> List[np.ndarray]:
        lowers, uppers = self._check_corners(lowers, uppers)
        if not self._has_target:
            raise ValidationError(
                f"backend {self.name!r} stores no target column; gather is unavailable"
            )
        self.counters.note_gather(lowers.shape[0], lowers.shape[0] * self._num_rows)
        sql = f"SELECT target FROM data WHERE {self._where} ORDER BY rowid"
        return [
            np.asarray(
                [r[0] for r in self._fetch(sql, self._params(lowers[row], uppers[row]))],
                dtype=np.float64,
            )
            for row in range(lowers.shape[0])
        ]

    def take(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        names = ", ".join(f"c{k}" for k in range(self._dim))
        out = np.empty((indices.size, self._dim), dtype=np.float64)
        sql = f"SELECT {names} FROM data WHERE rowid = ?"
        for position, index in enumerate(indices):
            rows = self._fetch(sql, (int(index) + 1,))
            if not rows:
                raise ValidationError(f"row index {int(index)} out of range")
            out[position] = rows[0]
        return out

    # ------------------------------------------------------------------ evaluation
    def evaluate(self, statistic, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        lowers, uppers = self._check_corners(lowers, uppers)
        if statistic.count_only:
            return statistic.compute_from_counts(self.count(lowers, uppers))
        self._require_target(statistic)
        aggregate = self._AGGREGATES.get(statistic.name)
        if aggregate is not None and not self.exact_reductions:
            # Pushed-down aggregation never calls gather, so account here.
            self.counters.note_gather(lowers.shape[0], lowers.shape[0] * self._num_rows)
            sql = f"SELECT {aggregate}, COUNT(target) FROM data WHERE {self._where}"
            values = np.empty(lowers.shape[0], dtype=np.float64)
            for row in range(lowers.shape[0]):
                total, count = self._fetch(sql, self._params(lowers[row], uppers[row]))[0]
                values[row] = statistic.empty_value if count == 0 else float(total)
            return values
        return np.asarray(
            [statistic.compute_from_values(values) for values in self.gather(lowers, uppers)],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        with self._lock:
            try:
                self._connection.close()
            except sqlite3.ProgrammingError:  # pragma: no cover - already closed
                pass
