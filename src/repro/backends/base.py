"""The :class:`DataBackend` interface — where region scans actually run.

The paper treats the "back-end data/analytics system" as opaque: SuRF only
needs something that can evaluate ``f(x, l)`` exactly.  This module pins down
that contract so :class:`repro.data.engine.DataEngine` can delegate every scan
to interchangeable storage engines (in-memory NumPy, memory-mapped chunks,
SQLite, shards evaluated in parallel) while its public API — and, for the
default backend, its bit-exact results — stay unchanged.

A backend owns two things: the ``(N, d)`` matrix of *region columns* (the
columns the hyper-rectangles constrain) and, optionally, the measured
*target column* attribute statistics reduce.  Four primitives cover every
engine operation:

* :meth:`DataBackend.scan_masks` — exact boolean row masks (``(M, N)``),
* :meth:`DataBackend.count` — per-region row counts without materialising masks,
* :meth:`DataBackend.gather` — per-region target values **in row order**,
* :meth:`DataBackend.take` — random-access rows over the region columns.

:meth:`DataBackend.evaluate` composes them into batched statistic evaluation:
count-only statistics are answered from counts alone; everything else gathers
the selected target values in row order and reduces them with the statistic's
array kernel, which is what keeps every backend bit-identical to the
in-memory reference (see ``docs/architecture.md``).
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Dict, List

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng

#: Cap on the number of boolean mask entries materialised at once by a
#: backend's mask-based scan paths (16M entries = 16 MB); larger batches are
#: processed in region blocks of this size.
MAX_MASK_ELEMENTS = 16_777_216


class BackendCounters:
    """Monotonic scan accounting attached to every :class:`DataBackend`.

    ``scan_calls``/``gather_calls`` count primitive invocations
    (:meth:`~DataBackend.scan_masks` / :meth:`~DataBackend.count` vs
    :meth:`~DataBackend.gather`); ``regions_scanned`` counts the regions those
    calls covered and ``rows_scanned`` the rows each scan had to consider
    (``regions × N`` — every primitive is an exact full scan over the stored
    rows unless an index prunes it, in which case the backend reports the
    pruned row count).  A :class:`~repro.backends.sharded.ShardedBackend`
    counts at the top level *and* on each sub-shard — its own counters
    describe the logical scan, the shards' their physical share.

    Exposed as ``repro_backend_*_total`` counters on ``/metrics`` via the
    kernel collector; reading them never blocks a scan for more than a
    counter increment.
    """

    __slots__ = ("_lock", "scan_calls", "gather_calls", "regions_scanned", "rows_scanned")

    def __init__(self):
        self._lock = threading.Lock()
        self.scan_calls = 0
        self.gather_calls = 0
        self.regions_scanned = 0
        self.rows_scanned = 0

    def note_scan(self, regions: int, rows: int) -> None:
        with self._lock:
            self.scan_calls += 1
            self.regions_scanned += regions
            self.rows_scanned += rows

    def note_gather(self, regions: int, rows: int) -> None:
        with self._lock:
            self.gather_calls += 1
            self.regions_scanned += regions
            self.rows_scanned += rows

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "scan_calls": self.scan_calls,
                "gather_calls": self.gather_calls,
                "regions_scanned": self.regions_scanned,
                "rows_scanned": self.rows_scanned,
            }


class DataBackend(ABC):
    """Abstract storage/scan engine over ``N`` rows of ``d`` region columns.

    Subclasses declare their capabilities through three class attributes used
    by the docs' capability matrix and by validation:

    * ``name`` — registry identifier (``"numpy"``, ``"chunked"``, ...),
    * ``out_of_core`` — whether the data may exceed RAM,
    * ``parallel`` — whether scans run concurrently.
    """

    name: str = "abstract"
    out_of_core: bool = False
    parallel: bool = False

    @property
    def counters(self) -> BackendCounters:
        """Scan accounting for this backend (created on first access).

        Lazy because the ABC declares no ``__init__``; ``dict.setdefault`` is
        atomic under the GIL, so two threads racing the first access share one
        object.
        """
        counters = self.__dict__.get("_obs_counters")
        if counters is None:
            counters = self.__dict__.setdefault("_obs_counters", BackendCounters())
        return counters

    # ------------------------------------------------------------------ introspection
    @property
    @abstractmethod
    def num_rows(self) -> int:
        """Number of stored rows ``N``."""

    @property
    @abstractmethod
    def region_dim(self) -> int:
        """Number of region columns ``d``."""

    @property
    @abstractmethod
    def has_target(self) -> bool:
        """Whether a target column is stored (required for attribute statistics)."""

    # ------------------------------------------------------------------ primitives
    @abstractmethod
    def scan_masks(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        """Exact boolean ``(M, N)`` matrix of rows inside each region.

        ``lowers``/``uppers`` are validated ``(M, d)`` corner matrices.  Row
        ``i`` of the result is ``True`` exactly where every region column lies
        in ``[lowers[i], uppers[i]]`` (inclusive on both ends).
        """

    @abstractmethod
    def count(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        """Per-region row counts, shape ``(M,)`` int64, without full masks."""

    @abstractmethod
    def gather(self, lowers: np.ndarray, uppers: np.ndarray) -> List[np.ndarray]:
        """Per-region target values **in row order** (list of ``M`` float64 arrays).

        Row order is part of the contract: float reductions are
        summation-order dependent, so gathering in any other order would break
        bit-identity with the in-memory reference.
        """

    @abstractmethod
    def take(self, indices: np.ndarray) -> np.ndarray:
        """Rows of the region-column matrix at ``indices``, in the given order."""

    def close(self) -> None:
        """Release held resources (files, connections).  Idempotent."""

    # ------------------------------------------------------------------ derived operations
    def evaluate(self, statistic, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        """Batched exact statistic evaluation over ``M`` regions.

        Default template: counts for count-only statistics, gather + the
        statistic's value kernel otherwise.  Subclasses override it only to
        change *how* the rows are found (index pruning, SQL, shard merges) —
        never what the reduction computes.
        """
        if statistic.count_only:
            return statistic.compute_from_counts(self.count(lowers, uppers))
        self._require_target(statistic)
        return np.asarray(
            [statistic.compute_from_values(values) for values in self.gather(lowers, uppers)],
            dtype=np.float64,
        )

    def sample(self, size: int, random_state=None, replace: bool = False) -> np.ndarray:
        """Uniformly sampled region-column rows, shape ``(size, d)``.

        Draws indices exactly like :meth:`repro.data.dataset.Dataset.sample`
        (one ``rng.choice`` call), so a backend-routed sample consumes the
        same RNG stream as the in-memory path.
        """
        size = int(size)
        if size <= 0:
            raise ValidationError(f"sample size must be positive, got {size}")
        if not replace and size > self.num_rows:
            raise ValidationError(
                f"cannot sample {size} rows without replacement from {self.num_rows}"
            )
        rng = ensure_rng(random_state)
        indices = rng.choice(self.num_rows, size=size, replace=replace)
        return self.take(indices)

    # ------------------------------------------------------------------ helpers
    def _require_target(self, statistic) -> None:
        if not self.has_target:
            raise ValidationError(
                f"backend {self.name!r} stores no target column but statistic "
                f"{statistic.name!r} needs one"
            )

    def _check_corners(self, lowers: np.ndarray, uppers: np.ndarray) -> tuple:
        lowers = np.asarray(lowers, dtype=np.float64)
        uppers = np.asarray(uppers, dtype=np.float64)
        if lowers.ndim != 2 or lowers.shape != uppers.shape or lowers.shape[1] != self.region_dim:
            raise ValidationError(
                f"lowers/uppers must both have shape (M, {self.region_dim}), "
                f"got {lowers.shape} and {uppers.shape}"
            )
        return lowers, uppers

    def __enter__(self) -> "DataBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(num_rows={self.num_rows}, "
            f"region_dim={self.region_dim}, has_target={self.has_target})"
        )


def block_mask_kernel(
    columns: List[np.ndarray],
    lowers: np.ndarray,
    uppers: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Fill ``out`` with region masks via one broadcast comparison per dimension.

    ``columns`` are the per-dimension contiguous value arrays of length ``B``
    (a full column or one row block of it); ``lowers``/``uppers`` are the
    ``(M, d)`` corners; ``out`` is the ``(M, B)`` boolean output.  The loop
    order and comparison operators are exactly those of the pre-backend
    ``DataEngine.region_masks``, blocked over regions so each ``(chunk, B)``
    operand stays cache resident — every mask bit is identical to the scalar
    ``lower <= value <= upper`` test.
    """
    num_regions, num_rows = out.shape
    if num_regions == 0 or num_rows == 0:
        return out
    chunk = max(1, 262_144 // max(num_rows, 1))
    band = np.empty((min(chunk, num_regions), num_rows), dtype=bool)
    for start in range(0, num_regions, chunk):
        stop = min(start + chunk, num_regions)
        target = out[start:stop]
        scratch = band[: stop - start]
        np.greater_equal(columns[0], lowers[start:stop, 0, None], out=target)
        np.less_equal(columns[0], uppers[start:stop, 0, None], out=scratch)
        np.logical_and(target, scratch, out=target)
        for axis in range(1, len(columns)):
            np.greater_equal(columns[axis], lowers[start:stop, axis, None], out=scratch)
            np.logical_and(target, scratch, out=target)
            np.less_equal(columns[axis], uppers[start:stop, axis, None], out=scratch)
            np.logical_and(target, scratch, out=target)
    return out
