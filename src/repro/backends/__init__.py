"""Pluggable data-engine backends (the paper's "back-end analytics system").

The engine that answers ``f(x, l)`` exactly is swappable.  Every backend
implements the :class:`~repro.backends.base.DataBackend` contract — scan
masks, counts, row-order gathers, random access and batched statistic
evaluation — and all of them return **bit-identical** statistics and masks on
the same data (asserted by ``tests/property/test_property_backends.py``):

========== =========================== =========== ========== =====================
name       storage                     out-of-core parallel   statistic support
========== =========================== =========== ========== =====================
numpy      in-memory arrays            no          no         all (+ grid index)
chunked    memory-mapped ``.npy``      yes         no         all
sqlite     SQLite table (file/memory)  yes         no         all (SQL aggregates
                                                              for count/sum/avg)
sharded    any of the above, in shards inherits    yes        all (sufficient-stat
                                                              merges + gather)
========== =========================== =========== ========== =====================

Select one through :class:`repro.data.engine.DataEngine`'s ``backend=``
argument (string + ``backend_options`` dict, or a pre-built instance), or
build one directly with :func:`make_backend`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backends.base import MAX_MASK_ELEMENTS, DataBackend
from repro.backends.chunked import ChunkedBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.sharded import ShardedBackend
from repro.backends.sql import SQLiteBackend
from repro.utils.registry import Registry

#: Plugin registry of constructible backends.  Each factory takes
#: ``(region_values, target_values, **options)`` and returns a live
#: :class:`DataBackend`.  Third-party backends plug in via
#: ``BACKENDS.register(name, factory)`` (also re-exported through
#: :mod:`repro.api.registries`) and become selectable everywhere a backend
#: name is accepted — ``DataEngine(backend=...)``, experiment runners,
#: config-driven construction.
BACKENDS = Registry("backend")
BACKENDS.register("numpy", NumpyBackend)
BACKENDS.register("chunked", ChunkedBackend.from_arrays)
BACKENDS.register("sqlite", SQLiteBackend)
BACKENDS.register("sharded", ShardedBackend.from_arrays)

#: Built-in backend names (kept for backward compatibility; the live set —
#: including any plugins — is ``BACKENDS.names()``).
BACKEND_NAMES = ("numpy", "chunked", "sqlite", "sharded")


def make_backend(
    kind: str,
    region_values: np.ndarray,
    target_values: Optional[np.ndarray] = None,
    **options,
) -> DataBackend:
    """Build a backend by name over in-memory arrays.

    ``kind`` is resolved through the :data:`BACKENDS` registry, so registered
    third-party backends construct here (and through ``DataEngine``) exactly
    like the built-ins.  ``options`` are forwarded to the backend constructor:
    ``index`` (numpy), ``directory``/``block_rows`` (chunked),
    ``path``/``exact_reductions`` (sqlite),
    ``num_shards``/``shard_backend``/``max_workers``/``merge`` plus per-shard
    options (sharded; storage locations like ``path`` or ``directory`` are
    suffixed per shard so shards never collide).  For ``.npy`` data already on
    disk, construct ``ChunkedBackend(region_path, target_path)`` directly —
    nothing is materialised then.  Note that ``sqlite`` always (re)loads the
    given arrays: an existing ``data`` table at ``path`` is dropped and
    replaced.
    """
    return BACKENDS.create(kind, region_values, target_values, **options)


__all__ = [
    "DataBackend",
    "NumpyBackend",
    "ChunkedBackend",
    "SQLiteBackend",
    "ShardedBackend",
    "make_backend",
    "BACKENDS",
    "BACKEND_NAMES",
    "MAX_MASK_ELEMENTS",
]
