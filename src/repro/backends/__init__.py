"""Pluggable data-engine backends (the paper's "back-end analytics system").

The engine that answers ``f(x, l)`` exactly is swappable.  Every backend
implements the :class:`~repro.backends.base.DataBackend` contract — scan
masks, counts, row-order gathers, random access and batched statistic
evaluation — and all of them return **bit-identical** statistics and masks on
the same data (asserted by ``tests/property/test_property_backends.py``):

========== =========================== =========== ========== =====================
name       storage                     out-of-core parallel   statistic support
========== =========================== =========== ========== =====================
numpy      in-memory arrays            no          no         all (+ grid index)
chunked    memory-mapped ``.npy``      yes         no         all
sqlite     SQLite table (file/memory)  yes         no         all (SQL aggregates
                                                              for count/sum/avg)
sharded    any of the above, in shards inherits    yes        all (sufficient-stat
                                                              merges + gather)
========== =========================== =========== ========== =====================

Select one through :class:`repro.data.engine.DataEngine`'s ``backend=``
argument (string + ``backend_options`` dict, or a pre-built instance), or
build one directly with :func:`make_backend`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backends.base import MAX_MASK_ELEMENTS, DataBackend
from repro.backends.chunked import ChunkedBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.sharded import ShardedBackend
from repro.backends.sql import SQLiteBackend
from repro.exceptions import ValidationError

#: Registry of constructible backends, keyed by their ``name``.
BACKEND_NAMES = ("numpy", "chunked", "sqlite", "sharded")


def make_backend(
    kind: str,
    region_values: np.ndarray,
    target_values: Optional[np.ndarray] = None,
    **options,
) -> DataBackend:
    """Build a backend by name over in-memory arrays.

    ``options`` are forwarded to the backend constructor: ``index`` (numpy),
    ``directory``/``block_rows`` (chunked), ``path``/``exact_reductions``
    (sqlite), ``num_shards``/``shard_backend``/``max_workers``/``merge``
    plus per-shard options (sharded; storage locations like ``path`` or
    ``directory`` are suffixed per shard so shards never collide).  For
    ``.npy`` data already on disk, construct ``ChunkedBackend(region_path,
    target_path)`` directly — nothing is materialised then.  Note that
    ``sqlite`` always (re)loads the given arrays: an existing ``data`` table
    at ``path`` is dropped and replaced.
    """
    key = str(kind).lower()
    if key == "numpy":
        return NumpyBackend(region_values, target_values, **options)
    if key == "chunked":
        return ChunkedBackend.from_arrays(region_values, target_values, **options)
    if key == "sqlite":
        return SQLiteBackend(region_values, target_values, **options)
    if key == "sharded":
        return ShardedBackend.from_arrays(region_values, target_values, **options)
    raise ValidationError(f"unknown backend {kind!r}; available: {sorted(BACKEND_NAMES)}")


__all__ = [
    "DataBackend",
    "NumpyBackend",
    "ChunkedBackend",
    "SQLiteBackend",
    "ShardedBackend",
    "make_backend",
    "BACKEND_NAMES",
    "MAX_MASK_ELEMENTS",
]
