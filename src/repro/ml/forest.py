"""Random forest regressor — an alternative surrogate model family."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseEstimator
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.rng import ensure_rng, optional_seed


class RandomForestRegressor(BaseEstimator):
    """Bagged regression trees with per-node feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth:
        Maximum depth of each tree.
    max_features:
        Features considered at each split; ``None`` uses ``ceil(sqrt(p))``.
    bootstrap:
        Whether each tree is trained on a bootstrap resample of the rows.
    min_samples_leaf / min_samples_split / max_bins:
        Passed through to the underlying trees.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 12,
        max_features: Optional[int] = None,
        bootstrap: bool = True,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        max_bins: int = 64,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_bins = max_bins
        self.random_state = random_state

        self._trees: Optional[List[DecisionTreeRegressor]] = None
        self._num_features: Optional[int] = None

    def fit(self, features, targets) -> "RandomForestRegressor":
        features, targets = self._validate_fit_inputs(features, targets)
        if int(self.n_estimators) < 1:
            raise ValidationError(f"n_estimators must be >= 1, got {self.n_estimators}")
        self._invalidate_compiled()
        rng = ensure_rng(self.random_state)
        self._num_features = features.shape[1]
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(np.ceil(np.sqrt(features.shape[1]))))

        self._trees = []
        for _ in range(int(self.n_estimators)):
            tree = DecisionTreeRegressor(
                max_depth=int(self.max_depth),
                min_samples_split=int(self.min_samples_split),
                min_samples_leaf=int(self.min_samples_leaf),
                max_bins=int(self.max_bins),
                max_features=int(max_features),
                random_state=optional_seed(rng),
            )
            if self.bootstrap:
                rows = rng.integers(0, features.shape[0], size=features.shape[0])
                tree.fit(features[rows], targets[rows])
            else:
                tree.fit(features, targets)
            self._trees.append(tree)
        return self

    def predict(self, features) -> np.ndarray:
        self._check_fitted("_trees")
        features = self._validate_predict_inputs(features, self._num_features)
        stacked = np.stack([tree.predict(features) for tree in self._trees])
        return stacked.mean(axis=0)
