"""Model selection: data splitting, K-fold cross-validation and grid search.

The paper hyper-tunes its XGBoost surrogates with ``GridSearchCV`` over
``learning_rate``, ``max_depth``, ``n_estimators`` and ``reg_lambda`` using
K-fold cross-validation; this module provides the equivalent machinery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import BaseEstimator, clone
from repro.ml.metrics import root_mean_squared_error
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_array, check_in_range, check_same_length


def train_test_split(
    features,
    targets,
    test_size: float = 0.25,
    random_state=None,
    shuffle: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split features/targets into train and test subsets.

    Returns ``(features_train, features_test, targets_train, targets_test)``.
    """
    features = check_array(features, name="features", ndim=2)
    targets = check_array(targets, name="targets", ndim=1)
    check_same_length(features, targets, names=("features", "targets"))
    check_in_range(test_size, 0.0, 1.0, name="test_size", inclusive=False)

    num_samples = features.shape[0]
    num_test = max(1, int(round(test_size * num_samples)))
    if num_test >= num_samples:
        raise ValidationError("test_size leaves no training samples")

    indices = np.arange(num_samples)
    if shuffle:
        indices = ensure_rng(random_state).permutation(num_samples)
    test_idx = indices[:num_test]
    train_idx = indices[num_test:]
    return features[train_idx], features[test_idx], targets[train_idx], targets[test_idx]


class KFold:
    """Deterministic (optionally shuffled) K-fold splitter."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, random_state=None):
        if n_splits < 2:
            raise ValidationError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.random_state = random_state

    def split(self, features) -> Iterable[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs covering every sample once."""
        features = np.asarray(features)
        num_samples = features.shape[0]
        if num_samples < self.n_splits:
            raise ValidationError(
                f"cannot split {num_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(num_samples)
        if self.shuffle:
            indices = ensure_rng(self.random_state).permutation(num_samples)
        fold_sizes = np.full(self.n_splits, num_samples // self.n_splits, dtype=int)
        fold_sizes[: num_samples % self.n_splits] += 1
        start = 0
        for fold_size in fold_sizes:
            test_idx = indices[start : start + fold_size]
            train_idx = np.concatenate([indices[:start], indices[start + fold_size :]])
            yield train_idx, test_idx
            start += fold_size


def cross_val_score(
    estimator: BaseEstimator,
    features,
    targets,
    cv: int = 5,
    scoring: Callable[[np.ndarray, np.ndarray], float] = root_mean_squared_error,
    shuffle: bool = True,
    random_state=None,
) -> np.ndarray:
    """Cross-validated scores (lower-is-better metrics such as RMSE by default)."""
    features = check_array(features, name="features", ndim=2)
    targets = check_array(targets, name="targets", ndim=1)
    check_same_length(features, targets, names=("features", "targets"))

    folds = KFold(n_splits=cv, shuffle=shuffle, random_state=random_state)
    scores = []
    for train_idx, test_idx in folds.split(features):
        model = clone(estimator)
        model.fit(features[train_idx], targets[train_idx])
        predictions = model.predict(features[test_idx])
        scores.append(scoring(targets[test_idx], predictions))
    return np.asarray(scores, dtype=np.float64)


@dataclass
class GridSearchResult:
    """One evaluated hyper-parameter combination."""

    params: Dict[str, object]
    mean_score: float
    std_score: float
    fold_scores: np.ndarray = field(repr=False)


class GridSearchCV:
    """Exhaustive hyper-parameter search with K-fold cross-validation.

    Parameters
    ----------
    estimator:
        Prototype estimator; cloned for every parameter combination and fold.
    param_grid:
        Mapping from parameter name to the list of values to try.
    cv:
        Number of folds.
    scoring:
        Metric computed on each validation fold.  ``greater_is_better`` states
        whether higher values are preferred (default: RMSE, lower is better).
    refit:
        Whether to refit ``best_estimator_`` on the full data after the search.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid: Dict[str, Sequence],
        cv: int = 3,
        scoring: Callable[[np.ndarray, np.ndarray], float] = root_mean_squared_error,
        greater_is_better: bool = False,
        refit: bool = True,
        shuffle: bool = True,
        random_state=None,
    ):
        if not param_grid:
            raise ValidationError("param_grid must contain at least one parameter")
        self.estimator = estimator
        self.param_grid = dict(param_grid)
        self.cv = int(cv)
        self.scoring = scoring
        self.greater_is_better = bool(greater_is_better)
        self.refit = bool(refit)
        self.shuffle = bool(shuffle)
        self.random_state = random_state

        self.results_: List[GridSearchResult] = []
        self.best_params_: Optional[Dict[str, object]] = None
        self.best_score_: Optional[float] = None
        self.best_estimator_: Optional[BaseEstimator] = None

    def _parameter_combinations(self) -> Iterable[Dict[str, object]]:
        names = list(self.param_grid.keys())
        for values in itertools.product(*(self.param_grid[name] for name in names)):
            yield dict(zip(names, values))

    @property
    def num_combinations(self) -> int:
        """Number of hyper-parameter combinations the grid will evaluate."""
        total = 1
        for values in self.param_grid.values():
            total *= len(values)
        return total

    def fit(self, features, targets) -> "GridSearchCV":
        """Run the grid search and (optionally) refit the best model."""
        features = check_array(features, name="features", ndim=2)
        targets = check_array(targets, name="targets", ndim=1)
        check_same_length(features, targets, names=("features", "targets"))

        self.results_ = []
        best: Optional[GridSearchResult] = None
        for params in self._parameter_combinations():
            candidate = clone(self.estimator).set_params(**params)
            scores = cross_val_score(
                candidate,
                features,
                targets,
                cv=self.cv,
                scoring=self.scoring,
                shuffle=self.shuffle,
                random_state=self.random_state,
            )
            result = GridSearchResult(
                params=params,
                mean_score=float(scores.mean()),
                std_score=float(scores.std()),
                fold_scores=scores,
            )
            self.results_.append(result)
            if best is None or self._is_better(result.mean_score, best.mean_score):
                best = result

        assert best is not None  # param_grid is non-empty
        self.best_params_ = dict(best.params)
        self.best_score_ = best.mean_score
        self.best_estimator_ = clone(self.estimator).set_params(**best.params)
        if self.refit:
            self.best_estimator_.fit(features, targets)
        return self

    def _is_better(self, candidate: float, incumbent: float) -> bool:
        if self.greater_is_better:
            return candidate > incumbent
        return candidate < incumbent

    def predict(self, features) -> np.ndarray:
        """Predict with the refitted best estimator."""
        if self.best_estimator_ is None:
            raise NotFittedError("GridSearchCV must be fitted before predict()")
        if not self.refit:
            raise NotFittedError("GridSearchCV was configured with refit=False")
        return self.best_estimator_.predict(features)
