"""Estimator protocol shared by all regressors in :mod:`repro.ml`.

The interface intentionally mirrors the small subset of the scikit-learn API
the paper relies on (``fit``/``predict``/``get_params``/``set_params``), which
keeps the surrogate-training code agnostic to the model family.
"""

from __future__ import annotations

import copy
import inspect
from abc import ABC, abstractmethod
from typing import Any, Dict

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_array


class BaseEstimator(ABC):
    """Base class for regressors with scikit-learn-style parameter handling."""

    # ------------------------------------------------------------------ parameters
    @classmethod
    def _parameter_names(cls) -> list[str]:
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, parameter in signature.parameters.items()
            if name != "self" and parameter.kind != inspect.Parameter.VAR_KEYWORD
        ]

    def get_params(self) -> Dict[str, Any]:
        """Return the constructor parameters of this estimator."""
        return {name: getattr(self, name) for name in self._parameter_names()}

    def set_params(self, **params) -> "BaseEstimator":
        """Set constructor parameters in place and return ``self``."""
        valid = set(self._parameter_names())
        for name, value in params.items():
            if name not in valid:
                raise ValidationError(
                    f"{type(self).__name__} has no parameter {name!r}; valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    # ------------------------------------------------------------------ fitting protocol
    @abstractmethod
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "BaseEstimator":
        """Fit the estimator on ``features`` (``(n, p)``) and ``targets`` (``(n,)``)."""

    @abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (``(n, p)``), returning shape ``(n,)``."""

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination R² on the given data."""
        from repro.ml.metrics import r2_score

        return r2_score(targets, self.predict(features))

    # ------------------------------------------------------------------ shared validation
    def _validate_fit_inputs(self, features, targets) -> tuple[np.ndarray, np.ndarray]:
        features = check_array(features, name="features", ndim=2)
        targets = check_array(targets, name="targets", ndim=1)
        if features.shape[0] != targets.shape[0]:
            raise ValidationError(
                f"features has {features.shape[0]} rows but targets has {targets.shape[0]}"
            )
        return features, targets

    def _validate_predict_inputs(self, features, expected_features: int) -> np.ndarray:
        features = check_array(features, name="features", ndim=2)
        if features.shape[1] != expected_features:
            raise ValidationError(
                f"estimator was fitted with {expected_features} features, got {features.shape[1]}"
            )
        return features

    def _check_fitted(self, attribute: str) -> None:
        if not hasattr(self, attribute) or getattr(self, attribute) is None:
            raise NotFittedError(f"{type(self).__name__} must be fitted before calling predict()")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of ``estimator`` with identical parameters."""
    return type(estimator)(**copy.deepcopy(estimator.get_params()))
