"""Estimator protocol shared by all regressors in :mod:`repro.ml`.

The interface intentionally mirrors the small subset of the scikit-learn API
the paper relies on (``fit``/``predict``/``get_params``/``set_params``), which
keeps the surrogate-training code agnostic to the model family.
"""

from __future__ import annotations

import copy
import inspect
from abc import ABC, abstractmethod
from typing import Any, Dict

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_array


class BaseEstimator(ABC):
    """Base class for regressors with scikit-learn-style parameter handling."""

    # ------------------------------------------------------------------ parameters
    @classmethod
    def _parameter_names(cls) -> list[str]:
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, parameter in signature.parameters.items()
            if name != "self" and parameter.kind != inspect.Parameter.VAR_KEYWORD
        ]

    def get_params(self) -> Dict[str, Any]:
        """Return the constructor parameters of this estimator."""
        return {name: getattr(self, name) for name in self._parameter_names()}

    def set_params(self, **params) -> "BaseEstimator":
        """Set constructor parameters in place and return ``self``."""
        valid = set(self._parameter_names())
        for name, value in params.items():
            if name not in valid:
                raise ValidationError(
                    f"{type(self).__name__} has no parameter {name!r}; valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    # ------------------------------------------------------------------ fitting protocol
    @abstractmethod
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "BaseEstimator":
        """Fit the estimator on ``features`` (``(n, p)``) and ``targets`` (``(n,)``)."""

    @abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (``(n, p)``), returning shape ``(n,)``."""

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination R² on the given data."""
        from repro.ml.metrics import r2_score

        return r2_score(targets, self.predict(features))

    # ------------------------------------------------------------------ shared validation
    def _validate_fit_inputs(self, features, targets) -> tuple[np.ndarray, np.ndarray]:
        features = check_array(features, name="features", ndim=2)
        targets = check_array(targets, name="targets", ndim=1)
        if features.shape[0] != targets.shape[0]:
            raise ValidationError(
                f"features has {features.shape[0]} rows but targets has {targets.shape[0]}"
            )
        return features, targets

    def _validate_predict_inputs(self, features, expected_features: int) -> np.ndarray:
        features = check_array(features, name="features", ndim=2)
        if features.shape[1] != expected_features:
            raise ValidationError(
                f"estimator was fitted with {expected_features} features, got {features.shape[1]}"
            )
        return features

    def _check_fitted(self, attribute: str) -> None:
        if not hasattr(self, attribute) or getattr(self, attribute) is None:
            raise NotFittedError(f"{type(self).__name__} must be fitted before calling predict()")

    # ------------------------------------------------------------------ compiled inference
    def compile(self, force: bool = False):
        """Compile this fitted estimator into a flat SoA predictor and cache it.

        Returns the cached :class:`~repro.ml.compiled.CompiledPredictor` when
        one exists (pass ``force=True`` to rebuild), otherwise flattens the
        fitted trees once and stores the result on the estimator — so the
        predictor pickles (and ships inside artifact bundles) with the model.
        Raises :class:`~repro.exceptions.ValidationError` for estimator
        families the compiler does not support or for unfitted estimators;
        probe with :meth:`repro.ml.compiled.CompiledPredictor.compilable`.
        """
        from repro.ml.compiled import CompiledPredictor

        cached = getattr(self, "_compiled", None)
        if cached is None or force:
            cached = CompiledPredictor(self)
            self._compiled = cached
        return cached

    def compiled_predict(self, features: np.ndarray) -> np.ndarray:
        """Predict through the compiled kernel (compiling on first use).

        Bit-identical to :meth:`predict` for compilable families — see
        :mod:`repro.ml.compiled`.
        """
        return self.compile().predict(features)

    def _invalidate_compiled(self) -> None:
        """Drop any cached compiled predictor.  Every ``fit`` path must call
        this so the compiled tables can never go stale behind a refit (or a
        warm-start continuation, which appends trees to the live ensemble)."""
        self._compiled = None

    @property
    def is_compiled(self) -> bool:
        """Whether a compiled predictor is currently cached on this estimator."""
        return getattr(self, "_compiled", None) is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of ``estimator`` with identical parameters."""
    return type(estimator)(**copy.deepcopy(estimator.get_params()))
