"""Regression metrics used to evaluate surrogate models (RMSE, MAE, R²)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_array, check_same_length


def _validate_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = check_array(y_true, name="y_true", ndim=1)
    y_pred = check_array(y_pred, name="y_pred", ndim=1)
    check_same_length(y_true, y_pred, names=("y_true", "y_pred"))
    return y_true, y_pred


def mean_squared_error(y_true, y_pred) -> float:
    """Mean squared error between true and predicted targets."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    """Root mean squared error — the surrogate quality metric used throughout the paper."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute error between true and predicted targets."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination.

    Returns 0.0 when the true targets are constant and predictions are exact,
    and a large negative number when they are constant but predictions differ —
    matching the common convention while avoiding division by zero.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    residual = float(np.sum((y_true - y_pred) ** 2))
    total = float(np.sum((y_true - y_true.mean()) ** 2))
    if total == 0.0:
        return 0.0 if residual == 0.0 else -np.inf
    return 1.0 - residual / total


def pearson_correlation(x, y) -> float:
    """Pearson correlation coefficient (used for the IoU-vs-RMSE analysis, Fig. 11)."""
    x = check_array(x, name="x", ndim=1)
    y = check_array(y, name="y", ndim=1)
    check_same_length(x, y, names=("x", "y"))
    if x.size < 2:
        raise ValidationError("at least two samples are required for a correlation")
    x_std = x.std()
    y_std = y.std()
    if x_std == 0.0 or y_std == 0.0:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (x_std * y_std))
