"""Compiled surrogate inference: flat structure-of-arrays tree ensembles.

The recursive :meth:`~repro.ml.tree.DecisionTreeRegressor.predict` walks a
linked ``_Node`` structure with one Python call (and several small numpy
temporaries) per node.  Inside the GSO loop that cost dominates query latency:
a single ``find`` issues thousands of surrogate evaluations over swarm-sized
batches, and per-node Python overhead swamps the actual arithmetic.

:class:`CompiledPredictor` flattens a fitted ensemble once into five parallel
node tables — ``feature``, ``threshold``, ``left_child``, ``right_child`` and
``leaf_value`` — with all trees concatenated into the same arrays and a
``roots`` vector marking each tree's entry point.  Nodes are laid out in
breadth-first order with siblings adjacent (``right_child == left_child + 1``),
and leaves are self-loops (``left_child == right_child == self`` with a ``+inf``
threshold), so the traversal kernel needs no leaf test at all:

    node = left_child[node] + (x[feature[node]] > threshold[node])

advances every (tree, row) pair one level and leaves parked leaves in place.
The numpy kernel applies that update level-synchronously to the whole
``(num_trees, num_rows)`` frontier, so one ``find``'s worth of surrogate calls
becomes ``max_depth`` vectorised gathers instead of ``num_trees x num_nodes``
Python visits (~10-30x on swarm-sized batches; large batches are processed in
cache-sized chunks).

Predictions are **bit-identical** to the recursive path, not merely close:
leaf routing uses the same ``x <= threshold`` comparison on the same float64
values, and per-row aggregation replays the recursive path's exact operation
order (sequential ``out += learning_rate * tree_prediction`` for boosting,
``stacked.mean(axis=0)`` for forests).  ``tests/unit/test_compiled.py`` and
``tests/property/test_property_compiled.py`` hold ``np.array_equal`` across
families, hyper-parameters and warm-start rounds.

An optional numba JIT path (per-row ``while`` loops, parallel over trees) can
be enabled with ``REPRO_COMPILED_JIT=1`` or ``CompiledPredictor(jit=True)``;
when numba is not installed the flag silently falls back to the numpy kernel,
so deployments never grow a hard dependency.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import BaseEstimator
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor, _Node
from repro.utils.validation import check_array

try:  # pragma: no cover - numba is an optional accelerator, absent in CI
    import numba as _numba
except ImportError:  # pragma: no cover
    _numba = None

#: Environment flag enabling the numba JIT traversal (silently ignored when
#: numba is not installed).
JIT_ENV_FLAG = "REPRO_COMPILED_JIT"

#: Rows per traversal chunk.  The level-synchronous kernel materialises
#: ``(num_trees, chunk)`` temporaries; chunking keeps them cache-resident on
#: large serving batches without changing any per-row result (each row's
#: traversal and aggregation order is independent of its neighbours).
DEFAULT_CHUNK_SIZE = 1024


def _jit_enabled(jit: Optional[bool]) -> bool:
    """Resolve the JIT request: explicit argument wins, else the env flag."""
    if jit is None:
        jit = os.environ.get(JIT_ENV_FLAG, "").strip().lower() in {"1", "true", "yes", "on"}
    return bool(jit) and _numba is not None


def _flatten_tree(root: _Node, arrays: "_NodeArrays") -> Tuple[int, int]:
    """Append ``root``'s nodes to the flat tables; return (root_index, depth).

    Breadth-first order keeps siblings adjacent, which is what lets the kernel
    compute the next node as ``left_child + went_right`` with no second child
    gather.  The walk is iterative, so trees deeper than Python's recursion
    limit compile fine (see the deep-tree regression tests).
    """
    offset = len(arrays.feature)
    nodes: List[Tuple[_Node, int]] = [(root, 0)]
    index_of = {id(root): offset}
    depth = 0
    cursor = 0
    while cursor < len(nodes):
        node, level = nodes[cursor]
        cursor += 1
        depth = max(depth, level)
        if not node.is_leaf:
            index_of[id(node.left)] = offset + len(nodes)
            nodes.append((node.left, level + 1))
            index_of[id(node.right)] = offset + len(nodes)
            nodes.append((node.right, level + 1))
    for position, (node, _) in enumerate(nodes):
        index = offset + position
        if node.is_leaf:
            arrays.feature.append(-1)
            arrays.threshold.append(np.inf)
            arrays.left.append(index)
        else:
            arrays.feature.append(int(node.feature))
            arrays.threshold.append(float(node.threshold))
            arrays.left.append(index_of[id(node.left)])
        arrays.value.append(float(node.value))
    return offset, depth


class _NodeArrays:
    """Mutable builders for the flat node tables while trees are appended."""

    def __init__(self) -> None:
        self.feature: List[int] = []
        self.threshold: List[float] = []
        self.left: List[int] = []
        self.value: List[float] = []


class CompiledPredictor:
    """A fitted tree ensemble compiled to flat SoA tables with a batch kernel.

    Parameters
    ----------
    estimator:
        A *fitted* :class:`~repro.ml.tree.DecisionTreeRegressor`,
        :class:`~repro.ml.forest.RandomForestRegressor` or
        :class:`~repro.ml.boosting.GradientBoostingRegressor` (or subclass).
        Anything else — including an unfitted instance — raises
        :class:`~repro.exceptions.ValidationError`; probe with
        :meth:`compilable` first.
    jit:
        ``True`` forces the numba traversal (silently falling back to numpy
        when numba is missing), ``False`` forces numpy, ``None`` (default)
        consults the ``REPRO_COMPILED_JIT`` environment flag.
    chunk_size:
        Rows per traversal chunk (see :data:`DEFAULT_CHUNK_SIZE`).

    The compiled tables are plain numpy arrays: the predictor pickles cheaply,
    rides inside :class:`~repro.core.finder.SuRF` artifact bundles, and never
    mutates (or references) the estimator it was compiled from.
    """

    def __init__(self, estimator: BaseEstimator, jit: Optional[bool] = None, chunk_size: int = DEFAULT_CHUNK_SIZE):
        if int(chunk_size) < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        roots_nodes, aggregation, base, weight, num_features = self._extract(estimator)
        arrays = _NodeArrays()
        roots: List[int] = []
        depths: List[int] = []
        for root in roots_nodes:
            root_index, depth = _flatten_tree(root, arrays)
            roots.append(root_index)
            depths.append(depth)

        #: Per-node split feature; ``-1`` marks a leaf.
        self.feature = np.asarray(arrays.feature, dtype=np.int32)
        #: Per-node split threshold; ``+inf`` on leaves so ``x > threshold``
        #: is always False and the self-loop keeps the row parked.
        self.threshold = np.asarray(arrays.threshold, dtype=np.float64)
        #: Per-node left child (absolute index); leaves point to themselves.
        self.left_child = np.asarray(arrays.left, dtype=np.int32)
        #: Per-node right child.  BFS keeps siblings adjacent, so this is
        #: always ``left_child + 1`` on internal nodes (the invariant the
        #: branchless kernel exploits) and a self-loop on leaves.
        self.right_child = np.where(
            self.feature < 0, self.left_child, self.left_child + 1
        ).astype(np.int32)
        #: Per-node value — the leaf prediction on leaves, the node's mean on
        #: internal nodes (kept for introspection).
        self.leaf_value = np.asarray(arrays.value, dtype=np.float64)
        #: Root index of every tree in the concatenated tables.
        self.roots = np.asarray(roots, dtype=np.int32)

        self._is_leaf = self.feature < 0
        # The kernel gathers features unconditionally; leaves read column 0
        # but discard the comparison (threshold is +inf), so clipping is safe.
        self._safe_feature = np.where(self._is_leaf, 0, self.feature).astype(np.int32)
        self._depths = tuple(depths)
        self._levels = max(depths) if depths else 0
        self._aggregation = aggregation
        self._base = float(base)
        self._weight = float(weight)
        self._num_features = int(num_features)
        self._chunk_size = int(chunk_size)
        self._jit = _jit_enabled(jit)

    # ------------------------------------------------------------------ construction
    SUPPORTED = (DecisionTreeRegressor, RandomForestRegressor, GradientBoostingRegressor)

    @classmethod
    def compilable(cls, estimator) -> bool:
        """Whether ``estimator`` is a fitted member of a compilable family."""
        if isinstance(estimator, GradientBoostingRegressor) or isinstance(estimator, RandomForestRegressor):
            return estimator._trees is not None and len(estimator._trees) > 0
        if isinstance(estimator, DecisionTreeRegressor):
            return estimator._root is not None
        return False

    @classmethod
    def _extract(cls, estimator):
        """Pull (tree roots, aggregation mode, base, weight, num_features)."""
        if not cls.compilable(estimator):
            if isinstance(estimator, cls.SUPPORTED):
                raise ValidationError(
                    f"{type(estimator).__name__} must be fitted before it can be compiled"
                )
            raise ValidationError(
                f"cannot compile a {type(estimator).__name__}; compilable families: "
                "DecisionTreeRegressor, RandomForestRegressor, GradientBoostingRegressor"
            )
        if isinstance(estimator, GradientBoostingRegressor):
            return (
                [tree._root for tree in estimator._trees],
                "sum",
                estimator._base_prediction,
                float(estimator.learning_rate),
                estimator._num_features,
            )
        if isinstance(estimator, RandomForestRegressor):
            return ([tree._root for tree in estimator._trees], "mean", 0.0, 1.0, estimator._num_features)
        return ([estimator._root], "single", 0.0, 1.0, estimator._num_features)

    # ------------------------------------------------------------------ introspection
    @property
    def num_trees(self) -> int:
        """Number of trees in the compiled ensemble."""
        return int(self.roots.size)

    @property
    def num_nodes(self) -> int:
        """Total nodes across all trees."""
        return int(self.feature.size)

    @property
    def max_depth(self) -> int:
        """Depth of the deepest tree (number of traversal levels)."""
        return int(self._levels)

    @property
    def num_features(self) -> int:
        """Feature-vector width the ensemble was fitted on."""
        return self._num_features

    @property
    def aggregation(self) -> str:
        """How per-tree leaves combine: ``"single"``, ``"mean"`` or ``"sum"``."""
        return self._aggregation

    @property
    def backend(self) -> str:
        """Which traversal kernel predictions run on (``"numba"``/``"numpy"``)."""
        return "numba" if self._jit else "numpy"

    # ------------------------------------------------------------------ prediction
    def predict(self, features) -> np.ndarray:
        """Predict targets for ``features`` (``(n, p)``), bit-identical to the
        recursive ensemble the tables were compiled from."""
        features = check_array(features, name="features", ndim=2)
        if features.shape[1] != self._num_features:
            raise ValidationError(
                f"compiled predictor expects {self._num_features} features, got {features.shape[1]}"
            )
        num_rows = features.shape[0]
        out = np.empty(num_rows, dtype=np.float64)
        for start in range(0, num_rows, self._chunk_size):
            stop = min(start + self._chunk_size, num_rows)
            chunk = np.ascontiguousarray(features[start:stop])
            self._aggregate(self._leaf_matrix(chunk), out[start:stop])
        return out

    def _leaf_matrix(self, features: np.ndarray) -> np.ndarray:
        """Leaf value per (tree, row) — each row's per-tree prediction."""
        if self._jit and _numba is not None:  # pragma: no cover - numba absent in CI
            return _leaves_numba(
                features.ravel(),
                features.shape[1],
                self.roots,
                self._safe_feature,
                self.threshold,
                self.left_child,
                self.leaf_value,
            )
        return self._leaves_numpy(features)

    def _leaves_numpy(self, features: np.ndarray) -> np.ndarray:
        """Level-synchronous traversal: the whole (tree, row) frontier steps
        one depth level per iteration; parked leaves self-loop in place."""
        num_rows, num_cols = features.shape
        flat = features.ravel()
        node = np.repeat(self.roots[:, None], num_rows, axis=1)
        row_offsets = (np.arange(num_rows, dtype=np.int32) * num_cols)[None, :]
        for _ in range(self._levels):
            cell = self._safe_feature.take(node)
            cell += row_offsets
            went_right = flat.take(cell) > self.threshold.take(node)
            node = self.left_child.take(node)
            node += went_right
        return self.leaf_value.take(node)

    def _aggregate(self, leaves: np.ndarray, out: np.ndarray) -> None:
        """Combine the (num_trees, n) leaf matrix into ``out`` replaying the
        recursive path's exact float operation order (see module docstring)."""
        if self._aggregation == "sum":
            out[:] = self._base
            for row in leaves:
                out += self._weight * row
        elif self._aggregation == "mean":
            out[:] = leaves.mean(axis=0)
        else:
            out[:] = leaves[0]


if _numba is not None:  # pragma: no cover - numba absent in CI

    @_numba.njit(parallel=True, cache=True)
    def _leaves_numba(flat, num_cols, roots, feature, threshold, left_child, leaf_value):
        num_trees = roots.shape[0]
        num_rows = flat.shape[0] // num_cols
        out = np.empty((num_trees, num_rows), dtype=np.float64)
        for tree in _numba.prange(num_trees):
            for row in range(num_rows):
                node = roots[tree]
                while left_child[node] != node:
                    if flat[row * num_cols + feature[node]] <= threshold[node]:
                        node = left_child[node]
                    else:
                        node = left_child[node] + 1
                out[tree, row] = leaf_value[node]
        return out

else:

    def _leaves_numba(*args):  # pragma: no cover - unreachable without numba
        raise NotFittedError("numba is not installed; the JIT traversal is unavailable")


class CompiledGradientBoostingRegressor(GradientBoostingRegressor):
    """Gradient boosting whose ``predict`` runs on the compiled SoA kernel.

    Training is inherited unchanged from
    :class:`~repro.ml.boosting.GradientBoostingRegressor` (including warm-start
    continuation, whose internal resume predictions also run compiled), and
    predictions are bit-identical to the recursive parent by construction —
    only faster.  Registered in the :data:`repro.ml.SURROGATES` registry as
    ``"compiled-boosting"``, so ``SurrogateTrainer(estimator="compiled-boosting")``
    and config-driven deployments pick it up by name.
    """

    def predict(self, features) -> np.ndarray:
        self._check_fitted("_trees")
        return self.compile().predict(features)


__all__ = ["CompiledPredictor", "CompiledGradientBoostingRegressor", "JIT_ENV_FLAG"]
