"""Histogram-based CART regression trees.

The tree is the building block for the gradient-boosted surrogate models
(:mod:`repro.ml.boosting`).  Split search is histogram based: every feature is
bucketed into at most ``max_bins`` quantile bins once per fit, and the best
split at a node is found from per-bin sums and counts with prefix sums —
exactly the strategy modern boosting libraries (XGBoost "hist", LightGBM)
use, which keeps pure-numpy training fast enough for the paper's workloads.

Leaf values support an optional L2 regularisation term ``reg_lambda`` so that
a leaf predicts ``sum(y) / (count + reg_lambda)``; with squared loss this is
the XGBoost leaf weight formula and lets the boosting module expose the same
``reg_lambda`` hyper-parameter the paper tunes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseEstimator
from repro.utils.rng import ensure_rng


@dataclass
class _Node:
    """A tree node: either an internal split or a leaf with a constant value."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class _BinnedData:
    """Feature matrix pre-bucketed into quantile bins (shared across boosting rounds)."""

    codes: np.ndarray  # (n, p) int32 bin index per sample and feature
    edges: list  # per-feature array of bin upper edges (len = n_bins_f - 1)

    @property
    def num_samples(self) -> int:
        return self.codes.shape[0]

    @property
    def num_features(self) -> int:
        return self.codes.shape[1]


def bin_features(features: np.ndarray, max_bins: int = 64) -> _BinnedData:
    """Bucket every feature into at most ``max_bins`` quantile bins.

    Returns the integer bin codes and, per feature, the thresholds (bin upper
    edges) used to translate a chosen bin split back into a real-valued split.
    """
    if max_bins < 2:
        raise ValidationError(f"max_bins must be >= 2, got {max_bins}")
    num_samples, num_features = features.shape
    codes = np.empty((num_samples, num_features), dtype=np.int32)
    edges = []
    quantiles = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    for feature_idx in range(num_features):
        column = features[:, feature_idx]
        cut_points = np.unique(np.quantile(column, quantiles))
        # Remove cut points equal to the max so the last bin is never empty.
        cut_points = cut_points[cut_points < column.max()] if cut_points.size else cut_points
        codes[:, feature_idx] = np.searchsorted(cut_points, column, side="right")
        edges.append(cut_points.astype(np.float64))
    return _BinnedData(codes=codes, edges=edges)


class DecisionTreeRegressor(BaseEstimator):
    """Regression tree grown greedily by maximising the variance-reduction gain.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (a single leaf has depth 0).
    min_samples_split:
        Minimum samples required to consider splitting a node.
    min_samples_leaf:
        Minimum samples each child must keep for a split to be valid.
    max_bins:
        Number of quantile bins used for histogram split search.
    reg_lambda:
        L2 regularisation added to leaf denominators (XGBoost-style).
    max_features:
        If set, the number of features sampled (without replacement) at each
        node — used by random forests.  ``None`` considers every feature.
    min_gain:
        Minimum gain required to accept a split.
    random_state:
        Seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_bins: int = 64,
        reg_lambda: float = 0.0,
        max_features: Optional[int] = None,
        min_gain: float = 1e-12,
        random_state=None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_bins = max_bins
        self.reg_lambda = reg_lambda
        self.max_features = max_features
        self.min_gain = min_gain
        self.random_state = random_state

        self._root: Optional[_Node] = None
        self._num_features: Optional[int] = None
        self.node_count_ = 0

    # ------------------------------------------------------------------ fitting
    def fit(self, features, targets) -> "DecisionTreeRegressor":
        features, targets = self._validate_fit_inputs(features, targets)
        self._validate_hyper_parameters()
        binned = bin_features(features, max_bins=int(self.max_bins))
        return self._fit_binned(binned, targets)

    def _fit_binned(self, binned: _BinnedData, targets: np.ndarray) -> "DecisionTreeRegressor":
        """Fit from pre-binned features (shared by :class:`GradientBoostingRegressor`)."""
        self._validate_hyper_parameters()
        self._invalidate_compiled()
        self._num_features = binned.num_features
        self._rng = ensure_rng(self.random_state)
        self.node_count_ = 0
        indices = np.arange(binned.num_samples)
        self._binned = binned
        self._targets = targets
        self._root = self._grow(indices, depth=0)
        # Release references used only while growing.
        del self._binned, self._targets
        return self

    def _validate_hyper_parameters(self) -> None:
        if int(self.max_depth) < 0:
            raise ValidationError(f"max_depth must be >= 0, got {self.max_depth}")
        if int(self.min_samples_split) < 2:
            raise ValidationError(f"min_samples_split must be >= 2, got {self.min_samples_split}")
        if int(self.min_samples_leaf) < 1:
            raise ValidationError(f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}")
        if float(self.reg_lambda) < 0:
            raise ValidationError(f"reg_lambda must be >= 0, got {self.reg_lambda}")

    def _leaf_value(self, target_sum: float, count: int) -> float:
        return target_sum / (count + float(self.reg_lambda)) if count else 0.0

    def _grow(self, indices: np.ndarray, depth: int) -> _Node:
        self.node_count_ += 1
        targets = self._targets[indices]
        target_sum = float(targets.sum())
        count = indices.size
        node = _Node(value=self._leaf_value(target_sum, count))

        if (
            depth >= int(self.max_depth)
            or count < int(self.min_samples_split)
            or np.all(targets == targets[0])
        ):
            return node

        split = self._best_split(indices, target_sum, count)
        if split is None:
            return node

        feature, bin_threshold, real_threshold = split
        codes = self._binned.codes[indices, feature]
        left_mask = codes <= bin_threshold
        node.feature = feature
        node.threshold = real_threshold
        node.left = self._grow(indices[left_mask], depth + 1)
        node.right = self._grow(indices[~left_mask], depth + 1)
        return node

    def _candidate_features(self) -> np.ndarray:
        num_features = self._num_features
        if self.max_features is None or int(self.max_features) >= num_features:
            return np.arange(num_features)
        size = max(1, int(self.max_features))
        return self._rng.choice(num_features, size=size, replace=False)

    def _best_split(self, indices: np.ndarray, target_sum: float, count: int):
        """Return ``(feature, bin_index, threshold)`` of the best split, or ``None``."""
        reg = float(self.reg_lambda)
        min_leaf = int(self.min_samples_leaf)
        parent_score = target_sum**2 / (count + reg)
        best_gain = float(self.min_gain)
        best = None

        targets = self._targets[indices]
        for feature in self._candidate_features():
            edges = self._binned.edges[feature]
            if edges.size == 0:
                continue
            num_bins = edges.size + 1
            codes = self._binned.codes[indices, feature]
            bin_counts = np.bincount(codes, minlength=num_bins)
            bin_sums = np.bincount(codes, weights=targets, minlength=num_bins)

            left_counts = np.cumsum(bin_counts)[:-1]
            left_sums = np.cumsum(bin_sums)[:-1]
            right_counts = count - left_counts
            right_sums = target_sum - left_sums

            valid = (left_counts >= min_leaf) & (right_counts >= min_leaf)
            if not np.any(valid):
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                score = left_sums**2 / (left_counts + reg) + right_sums**2 / (right_counts + reg)
            score = np.where(valid, score, -np.inf)
            best_bin = int(np.argmax(score))
            gain = float(score[best_bin]) - parent_score
            if gain > best_gain:
                best_gain = gain
                best = (int(feature), best_bin, float(edges[best_bin]))
        return best

    # ------------------------------------------------------------------ prediction
    def predict(self, features) -> np.ndarray:
        self._check_fitted("_root")
        features = self._validate_predict_inputs(features, self._num_features)
        predictions = np.empty(features.shape[0], dtype=np.float64)
        self._predict_into(self._root, features, np.arange(features.shape[0]), predictions)
        return predictions

    def _predict_into(self, node: _Node, features: np.ndarray, indices: np.ndarray, out: np.ndarray) -> None:
        # Iterative with an explicit stack: recursion would consume one Python
        # frame per split level, and an unconstrained depth-first chain (e.g.
        # max_depth=None-style fits on monotone targets) can approach the
        # interpreter's recursion limit.
        stack = [(node, indices)]
        while stack:
            node, indices = stack.pop()
            if node.is_leaf or indices.size == 0:
                out[indices] = node.value
                continue
            mask = features[indices, node.feature] <= node.threshold
            stack.append((node.right, indices[~mask]))
            stack.append((node.left, indices[mask]))

    # ------------------------------------------------------------------ introspection
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        self._check_fitted("_root")
        deepest = 0
        stack = [(self._root, 0)]
        while stack:
            node, level = stack.pop()
            if node.is_leaf:
                deepest = max(deepest, level)
            else:
                stack.append((node.left, level + 1))
                stack.append((node.right, level + 1))
        return deepest

    def num_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        self._check_fitted("_root")
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                count += 1
            else:
                stack.extend((node.left, node.right))
        return count
