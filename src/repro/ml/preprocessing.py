"""Feature scaling utilities (standardisation and min-max normalisation)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError
from repro.utils.validation import check_array


class StandardScaler:
    """Standardise features to zero mean and unit variance.

    Constant features are left centred but not scaled (their scale is forced
    to 1) so transforming never divides by zero.
    """

    def __init__(self):
        self.mean_ = None
        self.scale_ = None

    def fit(self, features) -> "StandardScaler":
        features = check_array(features, name="features", ndim=2)
        self.mean_ = features.mean(axis=0)
        scale = features.std(axis=0)
        self.scale_ = np.where(scale == 0.0, 1.0, scale)
        return self

    def transform(self, features) -> np.ndarray:
        if self.mean_ is None:
            raise NotFittedError("StandardScaler must be fitted before transform()")
        features = check_array(features, name="features", ndim=2)
        return (features - self.mean_) / self.scale_

    def fit_transform(self, features) -> np.ndarray:
        return self.fit(features).transform(features)

    def inverse_transform(self, features) -> np.ndarray:
        if self.mean_ is None:
            raise NotFittedError("StandardScaler must be fitted before inverse_transform()")
        features = check_array(features, name="features", ndim=2)
        return features * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features to the ``[0, 1]`` range; constant features map to 0."""

    def __init__(self):
        self.min_ = None
        self.range_ = None

    def fit(self, features) -> "MinMaxScaler":
        features = check_array(features, name="features", ndim=2)
        self.min_ = features.min(axis=0)
        data_range = features.max(axis=0) - self.min_
        self.range_ = np.where(data_range == 0.0, 1.0, data_range)
        return self

    def transform(self, features) -> np.ndarray:
        if self.min_ is None:
            raise NotFittedError("MinMaxScaler must be fitted before transform()")
        features = check_array(features, name="features", ndim=2)
        return (features - self.min_) / self.range_

    def fit_transform(self, features) -> np.ndarray:
        return self.fit(features).transform(features)

    def inverse_transform(self, features) -> np.ndarray:
        if self.min_ is None:
            raise NotFittedError("MinMaxScaler must be fitted before inverse_transform()")
        features = check_array(features, name="features", ndim=2)
        return features * self.range_ + self.min_
