"""k-nearest-neighbour regression — a non-parametric surrogate alternative."""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from repro.exceptions import ValidationError
from repro.ml.base import BaseEstimator


class KNeighborsRegressor(BaseEstimator):
    """Predicts the (optionally distance-weighted) mean target of the k nearest neighbours.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours to average over.
    weights:
        ``"uniform"`` for a plain mean or ``"distance"`` for inverse-distance
        weighting (exact matches dominate, as is conventional).
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform"):
        self.n_neighbors = n_neighbors
        self.weights = weights

        self._tree: Optional[cKDTree] = None
        self._targets: Optional[np.ndarray] = None
        self._num_features: Optional[int] = None

    def fit(self, features, targets) -> "KNeighborsRegressor":
        features, targets = self._validate_fit_inputs(features, targets)
        if int(self.n_neighbors) < 1:
            raise ValidationError(f"n_neighbors must be >= 1, got {self.n_neighbors}")
        if self.weights not in ("uniform", "distance"):
            raise ValidationError(f"weights must be 'uniform' or 'distance', got {self.weights!r}")
        self._num_features = features.shape[1]
        self._tree = cKDTree(features)
        self._targets = targets.copy()
        return self

    def predict(self, features) -> np.ndarray:
        self._check_fitted("_tree")
        features = self._validate_predict_inputs(features, self._num_features)
        k = min(int(self.n_neighbors), self._targets.shape[0])
        distances, indices = self._tree.query(features, k=k)
        if k == 1:
            distances = distances[:, None]
            indices = indices[:, None]
        neighbour_targets = self._targets[indices]
        if self.weights == "uniform":
            return neighbour_targets.mean(axis=1)
        # Inverse-distance weighting with exact matches handled explicitly.
        with np.errstate(divide="ignore"):
            inverse = 1.0 / distances
        exact = ~np.isfinite(inverse)
        predictions = np.empty(features.shape[0], dtype=np.float64)
        for row in range(features.shape[0]):
            if exact[row].any():
                predictions[row] = neighbour_targets[row][exact[row]].mean()
            else:
                weights = inverse[row]
                predictions[row] = np.average(neighbour_targets[row], weights=weights)
        return predictions
