"""Linear and ridge regression — the simplest surrogate baselines."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseEstimator


class LinearRegression(BaseEstimator):
    """Ordinary least squares fitted with a numerically stable least-squares solve."""

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept
        self.coefficients_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self._num_features: Optional[int] = None

    def fit(self, features, targets) -> "LinearRegression":
        features, targets = self._validate_fit_inputs(features, targets)
        self._num_features = features.shape[1]
        if self.fit_intercept:
            design = np.hstack([features, np.ones((features.shape[0], 1))])
        else:
            design = features
        solution, *_ = np.linalg.lstsq(design, targets, rcond=None)
        if self.fit_intercept:
            self.coefficients_ = solution[:-1]
            self.intercept_ = float(solution[-1])
        else:
            self.coefficients_ = solution
            self.intercept_ = 0.0
        return self

    def predict(self, features) -> np.ndarray:
        self._check_fitted("coefficients_")
        features = self._validate_predict_inputs(features, self._num_features)
        return features @ self.coefficients_ + self.intercept_


class RidgeRegression(BaseEstimator):
    """L2-regularised linear regression solved in closed form.

    Parameters
    ----------
    alpha:
        Regularisation strength (the intercept is never penalised).
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coefficients_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self._num_features: Optional[int] = None

    def fit(self, features, targets) -> "RidgeRegression":
        features, targets = self._validate_fit_inputs(features, targets)
        if float(self.alpha) < 0:
            raise ValidationError(f"alpha must be >= 0, got {self.alpha}")
        self._num_features = features.shape[1]

        if self.fit_intercept:
            feature_mean = features.mean(axis=0)
            target_mean = float(targets.mean())
            centered = features - feature_mean
            centered_targets = targets - target_mean
        else:
            centered = features
            centered_targets = targets

        gram = centered.T @ centered + float(self.alpha) * np.eye(features.shape[1])
        self.coefficients_ = np.linalg.solve(gram, centered.T @ centered_targets)
        if self.fit_intercept:
            self.intercept_ = target_mean - float(feature_mean @ self.coefficients_)
        else:
            self.intercept_ = 0.0
        return self

    def predict(self, features) -> np.ndarray:
        self._check_fitted("coefficients_")
        features = self._validate_predict_inputs(features, self._num_features)
        return features @ self.coefficients_ + self.intercept_
