"""Gradient-boosted regression trees (the paper's XGBoost surrogate, from scratch).

The model minimises squared loss by fitting shallow regression trees to the
current residuals and adding them with a shrinkage factor (``learning_rate``).
Leaf values carry an L2 regularisation term ``reg_lambda`` — with squared loss
this reproduces the XGBoost leaf-weight formula — so the model exposes exactly
the hyper-parameters the paper tunes in its GridSearch experiments:
``learning_rate``, ``max_depth``, ``n_estimators`` and ``reg_lambda``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.ml.base import BaseEstimator
from repro.ml.tree import DecisionTreeRegressor, bin_features
from repro.utils.rng import ensure_rng, optional_seed


class GradientBoostingRegressor(BaseEstimator):
    """Gradient boosting with squared loss on histogram regression trees.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds (trees).
    learning_rate:
        Shrinkage applied to every tree's contribution.
    max_depth:
        Depth of the individual trees.
    reg_lambda:
        L2 regularisation on leaf weights.
    subsample:
        Fraction of rows sampled (without replacement) for each tree;
        1.0 disables stochastic boosting.
    min_samples_leaf / min_samples_split / max_bins:
        Passed through to the underlying trees.
    early_stopping_rounds:
        If set together with ``validation_fraction``, training stops when the
        held-out RMSE has not improved for this many consecutive rounds.
    validation_fraction:
        Fraction of the training data held out for early stopping.
    warm_start:
        When ``True``, calling :meth:`fit` on an already-fitted model keeps
        the existing trees and boosts additional rounds up to ``n_estimators``
        on the data now provided (the scikit-learn ``warm_start`` idiom).
        Raise ``n_estimators`` above :attr:`num_trees_` before refitting —
        this is how the online loop folds freshly logged evaluations into a
        trained surrogate without paying for a full retrain.
    random_state:
        Seed controlling row subsampling and the validation split.
    """

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 5,
        reg_lambda: float = 1.0,
        subsample: float = 1.0,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        max_bins: int = 64,
        early_stopping_rounds: Optional[int] = None,
        validation_fraction: float = 0.1,
        warm_start: bool = False,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_bins = max_bins
        self.early_stopping_rounds = early_stopping_rounds
        self.validation_fraction = validation_fraction
        self.warm_start = warm_start
        self.random_state = random_state

        self._trees: Optional[List[DecisionTreeRegressor]] = None
        self._base_prediction: float = 0.0
        self._num_features: Optional[int] = None
        self.train_scores_: List[float] = []
        self.validation_scores_: List[float] = []

    # ------------------------------------------------------------------ fitting
    def fit(self, features, targets) -> "GradientBoostingRegressor":
        features, targets = self._validate_fit_inputs(features, targets)
        self._validate_hyper_parameters()
        continuing = bool(self.warm_start) and self._trees is not None
        if continuing:
            if features.shape[1] != self._num_features:
                raise ValidationError(
                    f"warm_start fit expects {self._num_features} features, got {features.shape[1]}"
                )
            if int(self.n_estimators) <= len(self._trees):
                raise ValidationError(
                    f"warm_start requires n_estimators > the {len(self._trees)} trees already "
                    f"fitted, got n_estimators={self.n_estimators}"
                )
        # Invalidate on entry as well as on exit: a warm-start continuation
        # calls self.predict() below, which would otherwise cache a compiled
        # predictor of the mid-fit ensemble while new trees are still pending.
        self._invalidate_compiled()
        rng = ensure_rng(self.random_state)
        self._num_features = features.shape[1]

        use_early_stopping = (
            self.early_stopping_rounds is not None and features.shape[0] >= 20
        )
        if use_early_stopping:
            num_valid = max(1, int(round(float(self.validation_fraction) * features.shape[0])))
            permutation = rng.permutation(features.shape[0])
            valid_idx, train_idx = permutation[:num_valid], permutation[num_valid:]
            valid_features, valid_targets = features[valid_idx], targets[valid_idx]
            features, targets = features[train_idx], targets[train_idx]
        else:
            valid_features = valid_targets = None

        if continuing:
            # Resume from the existing ensemble: its predictions on the data
            # now provided are the starting point the new rounds boost from.
            predictions = self.predict(features)
            valid_predictions = self.predict(valid_features) if use_early_stopping else None
        else:
            self._base_prediction = float(targets.mean())
            predictions = np.full(targets.shape[0], self._base_prediction)
            valid_predictions = (
                np.full(valid_targets.shape[0], self._base_prediction)
                if use_early_stopping
                else None
            )
            self._trees = []
            self.train_scores_ = []
            self.validation_scores_ = []

        binned = bin_features(features, max_bins=int(self.max_bins))
        best_valid = (
            float(np.sqrt(np.mean((valid_targets - valid_predictions) ** 2)))
            if continuing and use_early_stopping
            else np.inf
        )
        rounds_without_improvement = 0

        for _ in range(int(self.n_estimators) - len(self._trees)):
            residuals = targets - predictions
            tree = DecisionTreeRegressor(
                max_depth=int(self.max_depth),
                min_samples_split=int(self.min_samples_split),
                min_samples_leaf=int(self.min_samples_leaf),
                max_bins=int(self.max_bins),
                reg_lambda=float(self.reg_lambda),
                random_state=optional_seed(rng),
            )
            if float(self.subsample) < 1.0:
                sample_size = max(2, int(round(float(self.subsample) * features.shape[0])))
                rows = rng.choice(features.shape[0], size=sample_size, replace=False)
                tree.fit(features[rows], residuals[rows])
            else:
                tree._fit_binned(binned, residuals)
            self._trees.append(tree)

            update = float(self.learning_rate) * tree.predict(features)
            predictions += update
            self.train_scores_.append(float(np.sqrt(np.mean((targets - predictions) ** 2))))

            if use_early_stopping:
                valid_predictions += float(self.learning_rate) * tree.predict(valid_features)
                valid_rmse = float(np.sqrt(np.mean((valid_targets - valid_predictions) ** 2)))
                self.validation_scores_.append(valid_rmse)
                if valid_rmse < best_valid - 1e-12:
                    best_valid = valid_rmse
                    rounds_without_improvement = 0
                else:
                    rounds_without_improvement += 1
                    if rounds_without_improvement >= int(self.early_stopping_rounds):
                        break
        self._invalidate_compiled()
        return self

    def _validate_hyper_parameters(self) -> None:
        if int(self.n_estimators) < 1:
            raise ValidationError(f"n_estimators must be >= 1, got {self.n_estimators}")
        if not 0 < float(self.learning_rate) <= 1:
            raise ValidationError(f"learning_rate must be in (0, 1], got {self.learning_rate}")
        if not 0 < float(self.subsample) <= 1:
            raise ValidationError(f"subsample must be in (0, 1], got {self.subsample}")
        if float(self.reg_lambda) < 0:
            raise ValidationError(f"reg_lambda must be >= 0, got {self.reg_lambda}")

    # ------------------------------------------------------------------ prediction
    def predict(self, features) -> np.ndarray:
        self._check_fitted("_trees")
        features = self._validate_predict_inputs(features, self._num_features)
        predictions = np.full(features.shape[0], self._base_prediction)
        for tree in self._trees:
            predictions += float(self.learning_rate) * tree.predict(features)
        return predictions

    def staged_predict(self, features):
        """Yield predictions after each boosting round (useful for learning curves)."""
        self._check_fitted("_trees")
        features = self._validate_predict_inputs(features, self._num_features)
        predictions = np.full(features.shape[0], self._base_prediction)
        for tree in self._trees:
            predictions = predictions + float(self.learning_rate) * tree.predict(features)
            yield predictions.copy()

    @property
    def num_trees_(self) -> int:
        """Number of trees actually fitted (may be fewer than ``n_estimators``)."""
        self._check_fitted("_trees")
        return len(self._trees)
