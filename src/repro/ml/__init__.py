"""From-scratch machine-learning substrate.

The paper trains its surrogate models with scikit-learn / XGBoost; neither is
available offline, so this package provides the pieces the paper actually
uses, implemented on top of numpy only:

* regression trees and gradient-boosted trees with shrinkage and L2 leaf
  regularisation (the XGBoost-style hyper-parameters the paper tunes:
  ``learning_rate``, ``max_depth``, ``n_estimators``, ``reg_lambda``),
* random forest, k-nearest-neighbours and ridge regression as alternative
  surrogate families,
* compiled inference (:mod:`repro.ml.compiled`): fitted tree ensembles
  flattened into structure-of-arrays node tables and traversed by a
  vectorised level-synchronous kernel, bit-identical to the recursive path,
* train/test splitting, K-fold cross-validation and grid-search
  hyper-parameter tuning,
* regression metrics (RMSE, MAE, R²).
"""

from repro.ml.base import BaseEstimator, clone
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.compiled import CompiledGradientBoostingRegressor, CompiledPredictor
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.metrics import mean_absolute_error, mean_squared_error, r2_score, root_mean_squared_error
from repro.ml.model_selection import GridSearchCV, KFold, cross_val_score, train_test_split
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.registry import Registry

#: Plugin registry of surrogate estimator families, keyed by short name.
#: ``SurrogateTrainer(estimator="forest")`` and config-driven construction
#: through :mod:`repro.api.registries` resolve names here; register new
#: families via ``SURROGATES.register(name, estimator_cls)``.
SURROGATES = Registry("surrogate family")
SURROGATES.register("boosting", GradientBoostingRegressor, aliases=("gbrt", "xgboost-like"))
SURROGATES.register("compiled-boosting", CompiledGradientBoostingRegressor, aliases=("compiled-gbrt",))
SURROGATES.register("forest", RandomForestRegressor, aliases=("random-forest",))
SURROGATES.register("tree", DecisionTreeRegressor)
SURROGATES.register("knn", KNeighborsRegressor)
SURROGATES.register("linear", LinearRegression)
SURROGATES.register("ridge", RidgeRegression)

__all__ = [
    "BaseEstimator",
    "clone",
    "DecisionTreeRegressor",
    "GradientBoostingRegressor",
    "CompiledGradientBoostingRegressor",
    "CompiledPredictor",
    "RandomForestRegressor",
    "KNeighborsRegressor",
    "LinearRegression",
    "RidgeRegression",
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "train_test_split",
    "KFold",
    "cross_val_score",
    "GridSearchCV",
    "StandardScaler",
    "MinMaxScaler",
    "SURROGATES",
]
