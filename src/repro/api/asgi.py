"""The asyncio front door: an ASGI adapter over the typed envelopes.

:class:`AsgiApp` is a dependency-free `ASGI 3.0
<https://asgi.readthedocs.io/>`_ application that serves a
:class:`~repro.api.tenancy.ModelRegistry` (or a single
:class:`~repro.api.kernel.ServiceKernel`) over HTTP/JSON using the frozen
:class:`~repro.api.envelopes.FindRequest` / :class:`FindResponse` wire
format.  It runs under any ASGI server (``uvicorn repro.api.asgi:...``), under
the bundled :class:`HttpFrontDoor` dev server (pure stdlib, asyncio), or —
the mode every test and benchmark uses — **in-process** through
:func:`asgi_request`, with no sockets at all.

Routes
------
=======  ==============  =====================================================
method   path            behaviour
=======  ==============  =====================================================
GET      ``/healthz``    liveness: ``{"status": "ok", "models": [...]}``
GET      ``/models``     tenant names with generation + cache occupancy
GET      ``/stats``      per-tenant :class:`ServiceStats` counter dicts
GET      ``/metrics``    Prometheus text exposition over every tenant
GET      ``/trace/{id}`` one recorded trace (span tree) by envelope trace id
POST     ``/find``       one ``FindRequest`` JSON in, one ``FindResponse`` out
POST     ``/find_batch`` ``{"requests": [...]}`` in, ``{"responses": [...]}``
=======  ==============  =====================================================

``/metrics`` always answers (kernels without observability contribute their
``ServiceStats`` as gauges); ``/trace/{id}`` needs at least one kernel with
observability enabled and returns ``404`` for unknown or already-evicted ids.

``/find`` maps the serving verdict onto the HTTP status: ``served`` /
``cached`` / ``rejected`` are all ``200`` (a rejection is a valid answer),
``throttled`` → ``429``, ``shed`` → ``503``, ``timeout`` → ``504`` and
``error`` → ``500`` — the response body always carries the full envelope.
``/find_batch`` is always ``200``; per-request verdicts live inside the
envelopes.  Malformed payloads are ``400`` with the
:class:`~repro.exceptions.ValidationError` message, unknown models ``404``,
oversized bodies ``413``.

The event loop is never blocked: kernel calls (which may run GSO for
seconds) are dispatched to a thread (``asyncio.to_thread``), where the
middleware chain's own thread/process pools take over.  Thousands of
concurrent requests therefore queue in the loop cheaply while the kernel's
admission-control middleware decides what actually runs —
``benchmarks/test_bench_load.py`` drives exactly that shape.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from repro.api.envelopes import FindRequest
from repro.api.kernel import ServiceKernel
from repro.api.tenancy import ModelRegistry
from repro.exceptions import ValidationError

#: Serving verdict → HTTP status for single-request responses.
STATUS_HTTP = {
    "served": 200,
    "cached": 200,
    "rejected": 200,
    "throttled": 429,
    "shed": 503,
    "timeout": 504,
    "error": 500,
}


class AsgiApp:
    """ASGI 3.0 application over a registry (or one kernel).

    Parameters
    ----------
    service:
        A :class:`~repro.api.tenancy.ModelRegistry` (multi-tenant) or a
        single :class:`~repro.api.kernel.ServiceKernel`.
    max_body_bytes:
        Request bodies beyond this size are refused with ``413`` before any
        JSON parsing (a front door must bound memory per request).
    """

    def __init__(self, service, *, max_body_bytes: int = 1 << 20):
        if isinstance(service, ServiceKernel):
            registry = ModelRegistry()
            registry.register(service.name, service)
            self._default_model: Optional[str] = service.name
        elif isinstance(service, ModelRegistry):
            registry = service
            names = registry.names()
            self._default_model = names[0] if len(names) == 1 else None
        else:
            raise ValidationError(
                f"service must be a ModelRegistry or ServiceKernel, got {type(service)!r}"
            )
        if max_body_bytes < 1:
            raise ValidationError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        self.registry = registry
        self.max_body_bytes = int(max_body_bytes)

    # ------------------------------------------------------------------ ASGI entry
    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - websocket etc.
            raise RuntimeError(f"unsupported ASGI scope type {scope['type']!r}")
        try:
            status, payload = await self._dispatch(scope, receive)
        except ValidationError as exc:
            status, payload = 400, {"error": str(exc)}
        except _HttpError as exc:
            status, payload = exc.status, {"error": exc.message}
        except Exception as exc:  # noqa: BLE001 - the front door never crashes
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        if isinstance(payload, _PlainText):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type.encode("ascii")
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = b"application/json"
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": [
                    (b"content-type", content_type),
                    (b"content-length", str(len(body)).encode("ascii")),
                ],
            }
        )
        await send({"type": "http.response.body", "body": body})

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                self.registry.close()
                await send({"type": "lifespan.shutdown.complete"})
                return

    # ------------------------------------------------------------------ routing
    async def _dispatch(self, scope, receive) -> Tuple[int, Any]:
        method = scope.get("method", "GET").upper()
        path = scope.get("path", "/")
        if path in ("/healthz", "/models", "/stats"):
            if method not in ("GET", "HEAD"):
                raise _HttpError(405, f"{path} only supports GET")
            if path == "/healthz":
                return 200, {"status": "ok", "models": list(self.registry.names())}
            if path == "/models":
                return 200, {"models": self._model_table()}
            return 200, {
                name: stats.as_dict() for name, stats in self.registry.stats().items()
            }
        if path == "/metrics":
            if method not in ("GET", "HEAD"):
                raise _HttpError(405, "/metrics only supports GET")
            text = await asyncio.to_thread(self.registry.render_metrics)
            return 200, _PlainText(text, _PROMETHEUS_CONTENT_TYPE)
        if path.startswith("/trace/"):
            if method not in ("GET", "HEAD"):
                raise _HttpError(405, "/trace/{id} only supports GET")
            trace_id = path[len("/trace/"):]
            record = self.registry.find_trace(trace_id)
            if record is None:
                raise _HttpError(404, f"no recorded trace {trace_id!r}")
            return 200, record
        if path in ("/find", "/find_batch"):
            if method != "POST":
                raise _HttpError(405, f"{path} only supports POST")
            payload = await self._read_json(scope, receive)
            if path == "/find":
                return await self._find(payload)
            return await self._find_batch(payload)
        raise _HttpError(404, f"unknown path {path!r}")

    def _model_table(self) -> List[Dict[str, Any]]:
        table = []
        for name in self.registry.names():
            kernel = self.registry.get(name)
            table.append(
                {
                    "model": name,
                    "generation": kernel.generation,
                    "cached_queries": kernel.cached_queries,
                    "pending_log_entries": kernel.pending_log_entries,
                }
            )
        return table

    # ------------------------------------------------------------------ handlers
    def _parse_request(self, payload) -> FindRequest:
        if isinstance(payload, dict) and "model" not in payload and self._default_model:
            payload = {**payload, "model": self._default_model}
        try:
            request = FindRequest.from_dict(payload)
        except ValidationError:
            raise
        except (TypeError, ValueError) as exc:
            # Bad field types (e.g. a non-numeric threshold) surface as raw
            # ValueError from the envelope's coercions — still a client error.
            raise ValidationError(f"invalid FindRequest payload: {exc}") from exc
        if request.model not in self.registry:
            raise _HttpError(
                404,
                f"unknown model {request.model!r}; "
                f"registered: {list(self.registry.names())}",
            )
        return request

    async def _find(self, payload) -> Tuple[int, Any]:
        request = self._parse_request(payload)
        response = await asyncio.to_thread(self.registry.find, request)
        return STATUS_HTTP.get(response.status, 500), response.to_dict()

    async def _find_batch(self, payload) -> Tuple[int, Any]:
        if not isinstance(payload, dict) or "requests" not in payload:
            raise ValidationError('find_batch payload must be {"requests": [...]}')
        items = payload["requests"]
        if not isinstance(items, list):
            raise ValidationError(f"requests must be a list, got {type(items)!r}")
        requests = [self._parse_request(item) for item in items]
        responses = await asyncio.to_thread(self.registry.find_batch, requests)
        return 200, {"responses": [response.to_dict() for response in responses]}

    # ------------------------------------------------------------------ body handling
    async def _read_json(self, scope, receive):
        declared = _content_length(scope.get("headers") or [])
        if declared is not None and declared > self.max_body_bytes:
            raise _HttpError(413, f"request body exceeds {self.max_body_bytes} bytes")
        chunks: List[bytes] = []
        total = 0
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                raise _HttpError(400, "client disconnected mid-request")
            chunk = message.get("body", b"")
            total += len(chunk)
            if total > self.max_body_bytes:
                raise _HttpError(413, f"request body exceeds {self.max_body_bytes} bytes")
            chunks.append(chunk)
            if not message.get("more_body", False):
                break
        try:
            return json.loads(b"".join(chunks) or b"null")
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid JSON body: {exc}") from exc


#: The Prometheus text exposition content type (format version 0.0.4).
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _PlainText(NamedTuple):
    """Marker payload: serve as-is instead of JSON-encoding (``/metrics``)."""

    text: str
    content_type: str


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def _content_length(headers) -> Optional[int]:
    for name, value in headers:
        if bytes(name).lower() == b"content-length":
            try:
                return int(value)
            except (TypeError, ValueError):
                return None
    return None


# --------------------------------------------------------------------------- in-process client
class AsgiResponse(NamedTuple):
    """What :func:`asgi_request` returns — the whole HTTP exchange, decoded."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self):
        return json.loads(self.body.decode("utf-8"))


async def asgi_request(
    app,
    method: str,
    path: str,
    json_body=None,
    body: Optional[bytes] = None,
    headers: Optional[List[Tuple[bytes, bytes]]] = None,
) -> AsgiResponse:
    """Drive an ASGI app in-process — the test/benchmark client.

    Builds a minimal ``http`` scope, feeds the (optional) body through
    ``receive`` and collects the response messages; no sockets, no server,
    no third-party client.  ``json_body`` takes any JSON-serialisable object;
    ``body`` takes raw bytes (mutually exclusive).
    """
    if json_body is not None and body is not None:
        raise ValidationError("pass json_body or body, not both")
    if json_body is not None:
        body = json.dumps(json_body).encode("utf-8")
    payload = body or b""
    request_headers = list(headers or [])
    if payload and not any(n.lower() == b"content-length" for n, _ in request_headers):
        request_headers.append((b"content-length", str(len(payload)).encode("ascii")))
    scope = {
        "type": "http",
        "asgi": {"version": "3.0", "spec_version": "2.3"},
        "http_version": "1.1",
        "method": method.upper(),
        "path": path,
        "raw_path": path.encode("ascii"),
        "query_string": b"",
        "headers": request_headers,
        "client": ("127.0.0.1", 0),
        "server": ("testserver", 80),
        "scheme": "http",
    }
    sent = {"done": False}

    async def receive():
        if sent["done"]:
            # A well-behaved app never reads past the end of the body; block
            # until disconnect rather than spinning.
            return {"type": "http.disconnect"}
        sent["done"] = True
        return {"type": "http.request", "body": payload, "more_body": False}

    messages: List[dict] = []

    async def send(message):
        messages.append(message)

    await app(scope, receive, send)
    status = 500
    response_headers: Dict[str, str] = {}
    chunks: List[bytes] = []
    for message in messages:
        if message["type"] == "http.response.start":
            status = message["status"]
            for name, value in message.get("headers", []):
                response_headers[bytes(name).decode("latin-1").lower()] = bytes(
                    value
                ).decode("latin-1")
        elif message["type"] == "http.response.body":
            chunks.append(message.get("body", b""))
    return AsgiResponse(status, response_headers, b"".join(chunks))


# --------------------------------------------------------------------------- dev server
class HttpFrontDoor:
    """A tiny stdlib HTTP/1.1 bridge that serves an ASGI app over TCP.

    Not a production server — deploy under uvicorn/hypercorn for that — but
    enough to smoke-test the real socket path (``examples/load.py``) without
    adding a dependency: one asyncio event loop on a daemon thread,
    ``Content-Length`` bodies, ``Connection: close`` semantics.

    Usage::

        door = HttpFrontDoor(AsgiApp(registry)).start()
        ... http.client.HTTPConnection("127.0.0.1", door.port) ...
        door.stop()
    """

    def __init__(self, app, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.host = host
        self.port = port  # 0 = pick a free port; updated by start()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = threading.Event()

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> "HttpFrontDoor":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-http-front-door", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):  # pragma: no cover - startup hang
            raise RuntimeError("HTTP front door failed to start within 10s")
        return self

    def stop(self) -> None:
        loop, self._loop = self._loop, None
        thread, self._thread = self._thread, None
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=10.0)
        self._started.clear()

    def __enter__(self) -> "HttpFrontDoor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def boot():
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            self._started.set()

        loop.run_until_complete(boot())
        try:
            loop.run_forever()
        finally:
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            loop.close()

    # ------------------------------------------------------------------ HTTP plumbing
    async def _handle_connection(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            try:
                method, target, _version = request_line.decode("latin-1").split(None, 2)
            except ValueError:
                writer.write(b"HTTP/1.1 400 Bad Request\r\ncontent-length: 0\r\n\r\n")
                return
            headers: List[Tuple[bytes, bytes]] = []
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _sep, value = line.partition(b":")
                headers.append((name.strip().lower(), value.strip()))
            length = _content_length(headers) or 0
            body = await reader.readexactly(length) if length else b""
            path, _sep, query = target.partition("?")
            scope = {
                "type": "http",
                "asgi": {"version": "3.0", "spec_version": "2.3"},
                "http_version": "1.1",
                "method": method.upper(),
                "path": path,
                "raw_path": path.encode("latin-1"),
                "query_string": query.encode("latin-1"),
                "headers": headers,
                "scheme": "http",
                "server": (self.host, self.port),
                "client": writer.get_extra_info("peername") or ("127.0.0.1", 0),
            }
            fed = {"done": False}

            async def receive():
                if fed["done"]:
                    return {"type": "http.disconnect"}
                fed["done"] = True
                return {"type": "http.request", "body": body, "more_body": False}

            state = {"status": 200, "headers": [], "chunks": []}

            async def send(message):
                if message["type"] == "http.response.start":
                    state["status"] = message["status"]
                    state["headers"] = message.get("headers", [])
                elif message["type"] == "http.response.body":
                    state["chunks"].append(message.get("body", b""))

            await self.app(scope, receive, send)
            payload = b"".join(state["chunks"])
            lines = [f"HTTP/1.1 {state['status']} {_REASONS.get(state['status'], '')}".encode("latin-1")]
            seen_length = False
            for name, value in state["headers"]:
                if bytes(name).lower() == b"content-length":
                    seen_length = True
                lines.append(bytes(name) + b": " + bytes(value))
            if not seen_length:
                lines.append(b"content-length: " + str(len(payload)).encode("ascii"))
            lines.append(b"connection: close")
            writer.write(b"\r\n".join(lines) + b"\r\n\r\n" + payload)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):  # pragma: no cover
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover - teardown race
                pass


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


__all__ = [
    "AsgiApp",
    "AsgiResponse",
    "HttpFrontDoor",
    "STATUS_HTTP",
    "asgi_request",
]
