"""Process-pool execution for GSO runs: escape the GIL without losing bits.

The thread-pooled :class:`~repro.api.middleware.Execute` stage overlaps runs
only as far as NumPy releases the GIL; on a many-core host the pure-Python
parts of the swarm loop serialise.  :class:`ProcessExecute` swaps the thread
pool for a **persistent** :class:`concurrent.futures.ProcessPoolExecutor`:

* the fitted finder — compiled surrogate SoA tables included — is pickled
  **once per worker per model generation** through the pool initializer, not
  per task; each task ships only the tiny ``(query, max_proposals)`` pair and
  receives the pickled :class:`~repro.core.finder.RegionSearchResult` back;
* a hot swap (generation bump) is detected on the next batch and the pool is
  rebuilt against the new finder — in-flight tasks on the old pool finish on
  the generation they started with, exactly like the thread path;
* results are **bit-identical** to in-process execution: every run derives
  its RNG stream from the finder's configured seed, and the finder pickle
  round-trip is exact (asserted by ``tests/unit/test_fault_injection.py``);
* a finder that cannot be pickled (e.g. carrying a live caller-owned
  ``Generator``, or a test double with unpicklable state) silently falls back
  to the inherited thread launch for that batch, so the stage is always safe
  to install.

Worker exceptions surface per-request as status ``"error"`` and deadline
expiries as ``"timeout"`` — the inherited fault/deadline handling of
:class:`Execute` applies unchanged, because this class only overrides *where*
runs execute, not how their outcomes are classified.

Install it via ``ServiceKernel(finder, executor="process")`` or explicitly::

    from repro.api.admission import production_chain
    from repro.api.execution import ProcessExecute

    kernel = ServiceKernel(finder, middleware=production_chain(
        execute=ProcessExecute(max_workers=4),
    ))

Call :meth:`ProcessExecute.close` (or ``kernel.close()`` / the kernel's
context manager) to shut the worker pool down deterministically.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from repro.api.middleware import BatchContext, Execute, _obs_of
from repro.exceptions import ValidationError

# Worker-process global: the finder installed by the pool initializer.  Each
# worker unpickles it exactly once per pool generation.
_WORKER_FINDER = None


def _install_worker_finder(payload: bytes) -> None:
    global _WORKER_FINDER
    _WORKER_FINDER = pickle.loads(payload)


def _run_worker_query(query, max_proposals, obs_spec=None):
    """One run in a worker process.

    ``obs_spec`` is ``(model_name, gso_profile)`` when the parent kernel has
    observability on: the run is counted into a worker-local metrics registry
    whose snapshot rides back with the result (a 3-tuple) and is merged into
    the parent's registry — counters add, so no increment is lost crossing
    the process boundary.
    """
    start = time.perf_counter()
    if obs_spec is None:
        result = _WORKER_FINDER.find_regions(query, max_proposals=max_proposals)
        return result, time.perf_counter() - start
    from repro.obs.runtime import worker_run_delta

    model, profile_on = obs_spec
    result, extra = worker_run_delta(
        _WORKER_FINDER, query, max_proposals, model, profile_on
    )
    return result, time.perf_counter() - start, extra


class ProcessExecute(Execute):
    """Run distinct pending queries on a persistent process pool.

    Parameters
    ----------
    max_workers:
        Worker process count (``None`` = ``os.cpu_count()``, at least 1).
    mp_context:
        A :mod:`multiprocessing` start-method name (``"fork"`` /
        ``"spawn"`` / ``"forkserver"``) or a pre-built context; ``None``
        uses the platform default.
    """

    name = "execute-process"

    #: Process execution always goes through the pool (that is the point).
    _inline_allowed = False

    def __init__(self, max_workers: Optional[int] = None, mp_context=None):
        if max_workers is not None and max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        if isinstance(mp_context, str):
            import multiprocessing

            mp_context = multiprocessing.get_context(mp_context)
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_key = None  # (kernel id, generation) the pool was built for
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------ pool lifecycle
    def _pool_workers(self) -> int:
        if self.max_workers is not None:
            return self.max_workers
        return max(1, os.cpu_count() or 1)

    def _launch(self, ctx: BatchContext, runnable):
        """Submit to the shared process pool (rebuilt on generation change).

        Submission happens under the pool lock so a concurrent hot swap can
        never retire a pool between this batch acquiring it and finishing its
        submissions; once submitted, futures run to completion even if the
        pool is replaced a moment later (``shutdown(wait=False)`` retires it
        only after its queue drains).
        """
        if ctx.kernel._uses_shared_generator(ctx.finder):
            # A caller-owned live Generator cannot meaningfully be shared
            # with worker processes (each would advance a private copy);
            # preserve the single-worker in-process semantics instead.
            return super()._launch(ctx, runnable)
        key = (id(ctx.kernel), ctx.generation)
        with self._pool_lock:
            if self._pool is None or self._pool_key != key:
                try:
                    payload = pickle.dumps(ctx.finder)
                except Exception:  # noqa: BLE001 - unpicklable test doubles etc.
                    return super()._launch(ctx, runnable)
                if self._pool is not None:
                    self._pool.shutdown(wait=False)
                self._pool = ProcessPoolExecutor(
                    max_workers=self._pool_workers(),
                    mp_context=self._mp_context,
                    initializer=_install_worker_finder,
                    initargs=(payload,),
                )
                self._pool_key = key
            obs, _recorder = _obs_of(ctx)
            futures = [
                self._pool.submit(
                    _run_worker_query,
                    key_[0],
                    key_[1],
                    (ctx.states[indices[0]].request.model, obs.gso_profile)
                    if obs is not None
                    else None,
                )
                for key_, indices in runnable
            ]

        def finish(stalled: bool) -> None:
            # The pool is persistent: nothing to tear down per batch.  A
            # stalled worker keeps its slot busy until its run returns; the
            # batch has already stopped waiting on it.
            del stalled

        return futures, finish

    def _note_failure(self, exc: BaseException) -> None:
        # A worker that died (segfault, OOM kill) leaves the whole pool
        # broken; drop it so the next batch rebuilds instead of failing
        # forever.  Ordinary exceptions raised *inside* a run leave the pool
        # healthy and are ignored here.
        from concurrent.futures.process import BrokenProcessPool

        if isinstance(exc, BrokenProcessPool):
            with self._pool_lock:
                pool, self._pool, self._pool_key = self._pool, None, None
            if pool is not None:
                pool.shutdown(wait=False)

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a later batch rebuilds it)."""
        with self._pool_lock:
            pool, self._pool, self._pool_key = self._pool, None, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


__all__ = ["ProcessExecute"]
