"""One front door: typed envelopes, a middleware service kernel, model routing.

``repro.api`` is the single public entry point for serving deployments.  The
paper's headline property (Table I) makes query serving independent of the
dataset size, so the *service surface* is the scaling frontier — and this
package is that surface, re-architected from the PR 2–4 monolith into three
composable layers:

1. **Typed envelopes** (:mod:`repro.api.envelopes`) —
   :class:`FindRequest`/:class:`FindResponse` frozen dataclasses with
   dict/JSON round-trips, replacing ad-hoc tuples.
2. **Middleware kernel** (:mod:`repro.api.middleware`,
   :mod:`repro.api.kernel`) — every batch runs through a composable chain
   (``Normalize → SatisfiabilityGate → Cache → Coalesce → Execute →
   Harvest`` by default); deployments insert rate limiting, metrics or
   tracing without touching the core.  Batch coalescing and the
   generation-tagged cache semantics of the historical ``SuRFService`` are
   preserved bit-identically (``SuRFService`` itself survives as a thin shim
   over :class:`ServiceKernel`).
3. **Multi-tenant routing** (:mod:`repro.api.tenancy`) — a
   :class:`ModelRegistry` hosts many named finders (dataset × statistic
   tenants), routes requests by model name and drives per-model
   refresh/hot-swap from the online-learning loop.

On top of those sit the **load-control stages** (:mod:`repro.api.admission`:
per-request deadlines, per-tenant token-bucket rate limiting,
satisfiability-ranked admission control), a **process-pool execute stage**
(:mod:`repro.api.execution`) that runs GSO outside the GIL with bit-identical
results, and the **async front door** (:mod:`repro.api.asgi`): a
dependency-free ASGI app serving the envelopes over HTTP/JSON, with an
in-process test client and a stdlib dev server.

Plus the **declarative registries** (:mod:`repro.api.registries`): statistics,
backends, surrogate families and optimisers are all string-keyed plugin
registries, so engines, services and experiments are constructible from plain
config dicts.

Quickstart::

    from repro.api import FindRequest, ModelRegistry

    registry = ModelRegistry()
    registry.load("crimes/count", "bundles/crimes.surf")
    response = registry.find(FindRequest(threshold=500, model="crimes/count"))
    for proposal in response.proposals:
        print(proposal.center, proposal.predicted_value)
"""

from repro.api.admission import (
    AdmissionControl,
    Deadline,
    RateLimit,
    TokenBucket,
    production_chain,
)
from repro.api.asgi import AsgiApp, HttpFrontDoor, asgi_request
from repro.api.envelopes import (
    DEFAULT_MODEL,
    RESPONSE_STATUSES,
    FindRequest,
    FindResponse,
    ProposalPayload,
)
from repro.api.execution import ProcessExecute
from repro.api.kernel import ServiceKernel, ServiceStats
from repro.api.middleware import (
    PRE_GATE_STATUSES,
    BatchContext,
    Cache,
    Coalesce,
    Execute,
    Harvest,
    Middleware,
    Normalize,
    RequestState,
    SatisfiabilityGate,
    compose,
    default_chain,
    normalize_query,
)
from repro.api.registries import (
    BACKENDS,
    OPTIMIZERS,
    STATISTICS,
    SURROGATES,
    Registry,
    engine_from_config,
    kernel_from_config,
    resolve_backend,
    resolve_optimizer,
    resolve_statistic,
    resolve_surrogate,
    statistic_from_config,
)
from repro.api.tenancy import ModelRegistry

__all__ = [
    "DEFAULT_MODEL",
    "RESPONSE_STATUSES",
    "PRE_GATE_STATUSES",
    "FindRequest",
    "FindResponse",
    "ProposalPayload",
    "ServiceKernel",
    "ServiceStats",
    "ModelRegistry",
    "Middleware",
    "BatchContext",
    "RequestState",
    "compose",
    "default_chain",
    "normalize_query",
    "Normalize",
    "SatisfiabilityGate",
    "Cache",
    "Coalesce",
    "Execute",
    "Harvest",
    "Deadline",
    "TokenBucket",
    "RateLimit",
    "AdmissionControl",
    "production_chain",
    "ProcessExecute",
    "AsgiApp",
    "HttpFrontDoor",
    "asgi_request",
    "Registry",
    "STATISTICS",
    "BACKENDS",
    "SURROGATES",
    "OPTIMIZERS",
    "resolve_statistic",
    "resolve_backend",
    "resolve_surrogate",
    "resolve_optimizer",
    "statistic_from_config",
    "engine_from_config",
    "kernel_from_config",
]
