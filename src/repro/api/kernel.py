"""The service kernel: one model, one middleware chain, one front door.

A :class:`ServiceKernel` hosts **one** fitted
:class:`~repro.core.finder.SuRF` behind the composable middleware chain of
:mod:`repro.api.middleware` and answers typed
:class:`~repro.api.envelopes.FindRequest` envelopes.  It owns everything the
PR 2–4 ``SuRFService`` monolith owned — the LRU result cache, the Eq. 5 gate
threshold, the serving counters, the query log, and the online-learning
refresh/hot-swap machinery — but the per-request pipeline itself is pluggable:
pass ``middleware=[...]`` to insert rate limiting, metrics or tracing without
touching this file.  Multi-tenant deployments host many kernels behind a
:class:`~repro.api.tenancy.ModelRegistry`.

``SuRFService`` (:mod:`repro.serve.service`) survives as a thin
backward-compatible shim over this kernel; its serving semantics — batch
coalescing, generation-tagged caching, shared-generator fallback, harvest
counters — are preserved bit-identically (asserted against a frozen copy of
the PR 4 monolith by ``tests/property/test_property_api.py``).
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.envelopes import DEFAULT_MODEL, FindRequest, FindResponse, ProposalPayload
from repro.api.middleware import (
    BatchContext,
    Middleware,
    compose,
    default_chain,
    normalize_query,
)
from repro.core.finder import RegionSearchResult, SuRF
from repro.core.query import RegionQuery, SolutionSpace
from repro.exceptions import NotFittedError, ValidationError

from collections import OrderedDict


@dataclass
class ServiceStats:
    """Counters of everything a kernel did since construction (or ``reset``).

    ``cache_misses`` counts queries that needed a result not in the cache when
    they arrived; of those, ``coalesced`` were answered by sharing an identical
    in-flight run inside the same batch, so ``gso_runs`` — actual optimiser
    executions — equals ``cache_misses - coalesced``.  ``harvested`` counts
    exact evaluations recorded into the query log through this kernel — both
    ground-truthed proposals (``exact_engine``) and externally observed pairs
    (``observe``/``observe_many``); ``refreshes`` counts how many times a
    refresh actually swapped in new models.

    The degraded-path counters mirror the load-control statuses:
    ``throttled`` (per-tenant token bucket), ``shed`` (admission control
    dropped the run under pressure), ``timeouts`` (per-request deadline
    expired before or during the run) and ``errors`` (the optimiser run
    raised).  All four classes of request are counted in ``queries``;
    throttled/shed requests are *not* counted as cache hits, while timeouts
    and errors were classified as misses before their run failed.

    Every mutation of these counters happens under the kernel lock — either
    inline in the classification stage (which already holds it) or as one
    batched fold at the end of the execute stage, where worker threads
    accumulate locally instead of contending on (and racing) the shared
    object.

    ``baseline`` is the counter snapshot taken at the last generation
    hot-swap; :meth:`since_refresh` reports the deltas against it, so a
    dashboard watching ``hit_rate`` right after a swap sees the *new*
    generation's behaviour instead of a lifetime average dominated by the old
    one.
    """

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    coalesced: int = 0
    rejected: int = 0
    gso_runs: int = 0
    harvested: int = 0
    refreshes: int = 0
    throttled: int = 0
    shed: int = 0
    timeouts: int = 0
    errors: int = 0
    baseline: Optional["ServiceStats"] = None

    @property
    def hit_rate(self) -> float:
        """Fraction of queries answered from the cache (0.0 before any query)."""
        return self.cache_hits / self.queries if self.queries else 0.0

    def since_refresh(self) -> Dict[str, float]:
        """Counter deltas since the last refresh that swapped the model.

        Before the first swap (or after ``reset``) the deltas equal the
        lifetime counters.  ``hit_rate`` here is computed from the deltas.
        """
        base = self.baseline
        deltas: Dict[str, float] = {}
        for field_name in _STAT_COUNTER_FIELDS:
            deltas[field_name] = getattr(self, field_name) - (
                getattr(base, field_name) if base is not None else 0
            )
        deltas["hit_rate"] = (
            deltas["cache_hits"] / deltas["queries"] if deltas["queries"] else 0.0
        )
        return deltas

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for logs, metrics middlewares and benchmark tables.

        The key set is **stable** — the metrics middleware in
        ``examples/api.py`` and deployment dashboards key on it; new counters
        are appended, existing keys (including ``hit_rate``) never disappear.
        ``since_refresh`` is the one non-scalar entry: the post-hot-swap
        counter deltas from :meth:`since_refresh`.
        """
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "gso_runs": self.gso_runs,
            "harvested": self.harvested,
            "refreshes": self.refreshes,
            "throttled": self.throttled,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "hit_rate": self.hit_rate,
            "since_refresh": self.since_refresh(),
        }


#: The integer counter fields of :class:`ServiceStats`, in ``as_dict`` order.
_STAT_COUNTER_FIELDS = (
    "queries",
    "cache_hits",
    "cache_misses",
    "coalesced",
    "rejected",
    "gso_runs",
    "harvested",
    "refreshes",
    "throttled",
    "shed",
    "timeouts",
    "errors",
)


#: The constructor options a kernel accepts besides the finder itself; shared
#: with ``SuRFService.from_bundle`` / ``ModelRegistry.load`` kwarg validation.
KERNEL_OPTIONS = (
    "cache_size",
    "min_satisfiability",
    "max_proposals",
    "max_workers",
    "query_log",
    "incremental_trainer",
    "exact_engine",
    "middleware",
    "name",
    "executor",
    "observability",
)


def check_service_options(kwargs: dict, *, allowed: Sequence[str] = KERNEL_OPTIONS, where: str) -> None:
    """Reject unknown service options by name (instead of a late ``TypeError``).

    ``SuRFService.from_bundle(path, cache_sz=9)`` used to fail only after the
    bundle was loaded, with a generic ``TypeError``; this names the offending
    key up front and lists the valid ones.
    """
    unknown = sorted(set(kwargs) - set(allowed))
    if unknown:
        raise ValidationError(
            f"{where} got unknown option(s) {unknown}; valid options: {sorted(allowed)}"
        )


class ServiceKernel:
    """Middleware-driven serving runtime over one fitted finder.

    Parameters
    ----------
    finder:
        A fitted finder; typically ``SuRF.load(bundle_path)``.
    name:
        The tenant/model name this kernel serves under (requests routed by a
        :class:`~repro.api.tenancy.ModelRegistry` carry it; a standalone
        kernel accepts any request name and echoes it back).
    cache_size:
        Maximum number of query results kept in the LRU cache (0 disables
        caching; duplicate queries inside one batch are still coalesced).
    min_satisfiability:
        Queries whose Eq. 5 probability is **at or below** this value are
        rejected without running the optimiser.
    max_proposals:
        Default proposal cap forwarded to every GSO run (a request's own
        ``max_proposals`` overrides it per query).
    max_workers:
        Default thread-pool width for batch execution (``None`` picks
        ``min(num distinct queries, cpu count)`` per batch).
    query_log / incremental_trainer / exact_engine:
        The online-learning loop wiring; see
        :class:`repro.serve.service.SuRFService` — semantics are identical.
    middleware:
        The middleware chain to run every batch through; defaults to
        :func:`repro.api.middleware.default_chain`.  Order matters: the first
        element is outermost.
    executor:
        Which execution stage the *default* chain uses: ``"thread"`` (the
        historical in-process thread pool) or ``"process"`` (a persistent
        :class:`~repro.api.execution.ProcessExecute` pool that pickles the
        finder — compiled SoA tables included — once per worker per model
        generation, escaping the GIL for CPU-bound GSO runs).  Only valid
        when ``middleware`` is not given; a custom chain chooses its own
        execute stage explicitly.
    observability:
        ``True`` or a :class:`repro.obs.Observability` bundle enables the
        metrics/tracing layer: a ``Trace`` stage is prepended (unless the
        chain already carries one), every stage is timed into per-stage
        latency histograms, and the kernel's counters/cache/drift/backend
        state are registered as pull-time gauges.  ``None`` (the default)
        keeps the serving path completely uninstrumented.
    """

    def __init__(
        self,
        finder: SuRF,
        *,
        name: str = DEFAULT_MODEL,
        cache_size: int = 128,
        min_satisfiability: float = 0.0,
        max_proposals: Optional[int] = None,
        max_workers: Optional[int] = None,
        query_log=None,
        incremental_trainer=None,
        exact_engine=None,
        middleware: Optional[Sequence[Middleware]] = None,
        executor: str = "thread",
        observability=None,
    ):
        if not isinstance(finder, SuRF):
            raise ValidationError(f"finder must be a SuRF instance, got {type(finder)!r}")
        if finder.surrogate_ is None or finder.solution_space_ is None:
            raise NotFittedError("ServiceKernel requires a fitted SuRF finder")
        if finder.satisfiability_ is None:
            raise NotFittedError("ServiceKernel requires a finder with a satisfiability model")
        if not isinstance(name, str) or not name:
            raise ValidationError(f"name must be a non-empty string, got {name!r}")
        if cache_size < 0:
            raise ValidationError(f"cache_size must be >= 0, got {cache_size}")
        if not 0.0 <= min_satisfiability < 1.0:
            raise ValidationError(
                f"min_satisfiability must be in [0, 1), got {min_satisfiability}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        if exact_engine is not None and query_log is None:
            raise ValidationError("exact_engine requires a query_log to harvest into")
        self.name = name
        self._finder = finder
        self.cache_size = int(cache_size)
        self.min_satisfiability = float(min_satisfiability)
        self.max_proposals = max_proposals
        self.max_workers = max_workers
        self._query_log = query_log
        self._incremental_trainer = incremental_trainer
        self._exact_engine = exact_engine
        if executor not in ("thread", "process"):
            raise ValidationError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        if middleware is not None and executor != "thread":
            raise ValidationError(
                "executor only configures the default chain; a custom middleware "
                "list must include its own execute stage (e.g. ProcessExecute)"
            )
        if executor == "process":
            from repro.api.execution import ProcessExecute

            chain = default_chain()
            chain[-2] = ProcessExecute(max_workers=max_workers)
            self._middleware: List[Middleware] = chain
        else:
            self._middleware = (
                list(middleware) if middleware is not None else default_chain()
            )
        self._obs = self._wire_observability(observability)
        if self._obs is not None:
            from repro.obs.runtime import instrument_chain, register_kernel

            # ``self._middleware`` keeps the bare stages (close()/repr/the
            # ``middleware`` property are unchanged); only the composed
            # handler runs the instrumented copies.
            self._handler = compose(instrument_chain(self._middleware, self._obs))
            register_kernel(self._obs, self)
        else:
            self._handler = compose(self._middleware)
        # Keyed by (normalised query, effective max_proposals): requests for
        # the same threshold under different proposal caps never share results.
        self._cache: "OrderedDict[tuple, RegionSearchResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._refresh_lock = threading.Lock()
        self._stats = ServiceStats()
        self._generation = 0
        self._log_cursor = 0

    def _wire_observability(self, observability):
        """Resolve the ``observability`` option against the middleware chain.

        An explicit ``Trace`` stage in a custom chain wins (its bundle is
        adopted); otherwise a truthy option prepends one.  Returns the active
        :class:`~repro.obs.runtime.Observability`, or ``None`` when the
        kernel serves uninstrumented.
        """
        trace_stage = next(
            (
                stage
                for stage in self._middleware
                if getattr(stage, "obs_trace_stage", False)
            ),
            None,
        )
        if observability is None or observability is False:
            return trace_stage.observability if trace_stage is not None else None
        from repro.obs.runtime import Observability, Trace

        obs = Observability.coerce(observability)
        if trace_stage is None:
            self._middleware.insert(0, Trace(obs))
        elif trace_stage.observability is not obs:
            raise ValidationError(
                "the middleware chain already carries a Trace stage with a "
                "different Observability; configure one or the other"
            )
        return obs

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_bundle(cls, path, **options) -> "ServiceKernel":
        """Build a kernel straight from an artifact bundle on disk.

        Unknown options raise :class:`~repro.exceptions.ValidationError`
        naming the bad key *before* the bundle is loaded.
        """
        check_service_options(options, where="ServiceKernel.from_bundle")
        return cls(SuRF.load(path), **options)

    # ------------------------------------------------------------------ introspection
    @property
    def finder(self) -> SuRF:
        """The finder currently being served (a new object after each swap)."""
        return self._finder

    @property
    def query_log(self):
        """The wired :class:`~repro.online.QueryLog` (``None`` when offline-only)."""
        return self._query_log

    @property
    def middleware(self) -> Tuple[Middleware, ...]:
        """The chain this kernel runs (immutable view; first = outermost)."""
        return tuple(self._middleware)

    @property
    def observability(self):
        """The active :class:`repro.obs.Observability`, or ``None``."""
        return self._obs

    @property
    def generation(self) -> int:
        """How many model swaps this kernel has performed (0 = as constructed)."""
        with self._lock:
            return self._generation

    def _snapshot(self) -> Tuple[SuRF, int]:
        """Atomically capture the (finder, generation) pair being served."""
        with self._lock:
            return self._finder, self._generation

    def _uses_shared_generator(self, finder: Optional[SuRF] = None) -> bool:
        """Whether the finder draws from a caller-owned live ``Generator``.

        Such a stream is shared, mutable and not thread-safe, so batch
        execution must fall back to one worker.
        """
        if finder is None:
            finder = self._finder
        parameters = finder.gso_parameters
        return isinstance(finder.random_state, np.random.Generator) or (
            parameters is not None and isinstance(parameters.random_state, np.random.Generator)
        )

    # ------------------------------------------------------------------ cache internals
    def _cache_get(self, key) -> Optional[RegionSearchResult]:
        """LRU lookup; caller must hold the lock."""
        result = self._cache.get(key)
        if result is not None:
            self._cache.move_to_end(key)
        return result

    def _cache_put(self, key, result: RegionSearchResult, generation: int) -> None:
        """LRU insert with eviction; caller must hold the lock.

        A result computed against a finder generation that has since been
        swapped out is dropped: caching it would resurrect the stale model's
        answers after the refresh already invalidated them.
        """
        if self.cache_size == 0 or generation != self._generation:
            if generation != self._generation and self._obs is not None:
                self._obs.cache_evictions.labels(self.name).inc()
            return
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def clear_cache(self) -> None:
        """Drop every cached result (stats are kept)."""
        with self._lock:
            self._cache.clear()

    @property
    def cached_queries(self) -> int:
        """Number of results currently held in the cache."""
        with self._lock:
            return len(self._cache)

    @property
    def stats(self) -> ServiceStats:
        """A snapshot copy of the serving counters."""
        with self._lock:
            return replace(self._stats)

    def reset_stats(self) -> None:
        """Zero all counters (the cache is untouched)."""
        with self._lock:
            self._stats = ServiceStats()

    # ------------------------------------------------------------------ serving
    def _coerce_request(self, request: Union[FindRequest, RegionQuery]) -> FindRequest:
        if isinstance(request, FindRequest):
            return request
        if isinstance(request, RegionQuery):
            return FindRequest.from_query(request, model=self.name)
        raise ValidationError(
            f"expected a FindRequest or RegionQuery, got {type(request)!r}"
        )

    def serve(self, ctx: BatchContext) -> BatchContext:
        """Run a prepared context through the middleware chain (advanced use)."""
        return self._handler(ctx)

    def handle(self, request: Union[FindRequest, RegionQuery]) -> FindResponse:
        """Serve a single request through the middleware chain.

        Concurrent callers racing on the *same* uncached query may each run
        the optimiser (the results are identical); use :meth:`handle_batch`
        to coalesce known-duplicate requests.
        """
        start = perf_counter()
        request = self._coerce_request(request)
        ctx = BatchContext(self, [request])
        self._handler(ctx)
        state = ctx.states[0]
        # A lone request's latency is the whole call, matching the historical
        # single-query path (batch members report per-stage shares instead).
        state.elapsed_seconds = perf_counter() - start
        return self._response(state, ctx)

    def handle_batch(
        self,
        requests: Sequence[Union[FindRequest, RegionQuery]],
        max_workers: Optional[int] = None,
    ) -> List[FindResponse]:
        """Serve many requests at once, sharing work across them.

        Identical misses are coalesced — each distinct query runs GSO exactly
        once and every duplicate shares the result — and the distinct runs
        execute on a thread pool.  Responses come back in input order and are
        bit-identical to sequential :meth:`handle` calls under a fixed seed.
        The whole batch runs against the one finder generation captured at
        entry, even if a refresh lands mid-batch.
        """
        coerced = [self._coerce_request(request) for request in requests]
        ctx = BatchContext(self, coerced, max_workers=max_workers)
        self._handler(ctx)
        return [self._response(state, ctx) for state in ctx.states]

    def _response(self, state, ctx: BatchContext) -> FindResponse:
        proposals: Tuple[ProposalPayload, ...] = ()
        if state.result is not None and state.result.proposals:
            proposals = tuple(
                ProposalPayload.from_proposal(proposal) for proposal in state.result.proposals
            )
        return FindResponse(
            model=state.request.model,
            status=state.status,
            satisfiability=float(state.satisfiability),
            proposals=proposals,
            elapsed_seconds=float(state.elapsed_seconds),
            generation=int(ctx.generation),
            trace_id=state.trace_id,
            timing=state.timing,
            error=state.error,
            result=state.result,
        )

    # ------------------------------------------------------------------ online learning
    def _require_log(self):
        if self._query_log is None:
            raise ValidationError(
                "this service has no query log; construct it with query_log=QueryLog(...)"
            )
        return self._query_log

    def observe(self, region, value: float) -> None:
        """Record one externally observed exact evaluation into the query log."""
        self._require_log().record(region, value)
        with self._lock:
            self._stats.harvested += 1

    def observe_many(self, evaluations) -> None:
        """Record a batch of externally observed exact evaluations."""
        evaluations = list(evaluations)
        self._require_log().record_many(evaluations)
        with self._lock:
            self._stats.harvested += len(evaluations)

    @property
    def pending_log_entries(self) -> int:
        """Logged pairs not yet folded into the surrogate by a refresh."""
        if self._query_log is None:
            return 0
        with self._lock:
            cursor = self._log_cursor
        return max(0, self._query_log.total_recorded - cursor)

    def _ensure_incremental_trainer(self):
        if self._incremental_trainer is None:
            from repro.online.trainer import IncrementalTrainer

            self._incremental_trainer = IncrementalTrainer.from_finder(self._finder)
        return self._incremental_trainer

    def refresh(self, force_full: bool = False):
        """Fold freshly logged pairs into the surrogate and hot-swap the models.

        Drains the query log past the kernel's consumption cursor, hands the
        new pairs to the :class:`~repro.online.IncrementalTrainer` (warm-start
        rounds, or a full refit when drift was detected or ``force_full``),
        rebuilds the Eq. 5 satisfiability model from the enlarged sample, and
        atomically installs a **new finder object**: one pointer swap, a cache
        clear and a generation bump under the kernel lock.  In-flight queries
        complete against the generation they started with; their results are
        not cached.  With zero new pairs this is a strict no-op.  Concurrent
        refreshes are serialised on a dedicated lock.
        """
        self._require_log()
        with self._refresh_lock:
            trainer = self._ensure_incremental_trainer()
            with self._lock:
                cursor = self._log_cursor
            new_pairs, new_cursor = self._query_log.since(cursor)
            outcome = trainer.refresh(new_pairs, force_full=force_full)
            if outcome.mode == "noop":
                with self._lock:
                    self._log_cursor = new_cursor
                return outcome

            refreshed = self._swapped_finder(trainer)
            with self._lock:
                self._finder = refreshed
                self._generation += 1
                self._log_cursor = new_cursor
                evicted = len(self._cache)
                self._cache.clear()
                self._stats.refreshes += 1
                # Snapshot the counters so ``since_refresh`` reports the new
                # generation's behaviour from here on.
                self._stats.baseline = replace(self._stats, baseline=None)
            if evicted and self._obs is not None:
                self._obs.cache_evictions.labels(self.name).inc(evicted)
            return outcome

    def _swapped_finder(self, trainer) -> SuRF:
        """A new finder carrying the trainer's refreshed state.

        A shallow copy shares the immutable configuration (objective kind,
        GSO parameters, density model — the KDE describes the raw data, which
        the log cannot refresh) while the learned state is replaced wholesale.
        The solution space is re-inferred from the enlarged workload so the
        swarm can follow evaluations that drift beyond the original bounding
        box.
        """
        workload = trainer.workload
        refreshed = copy.copy(self._finder)
        refreshed.surrogate_ = trainer.surrogate
        refreshed.satisfiability_ = trainer.satisfiability
        refreshed.workload_features_ = workload.features
        refreshed.workload_targets_ = workload.targets
        refreshed.workload_size_ = len(workload)
        refreshed.solution_space_ = SolutionSpace.from_workload_features(
            workload.features,
            min_half_fraction=refreshed.min_half_fraction,
            max_half_fraction=refreshed.max_half_fraction,
        )
        return refreshed

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release middleware-held resources (idempotent).

        Today this shuts down the persistent worker pool of a
        :class:`~repro.api.execution.ProcessExecute` stage; any middleware
        exposing a ``close()`` method is invited to clean up.
        """
        for middleware in self._middleware:
            closer = getattr(middleware, "close", None)
            if callable(closer):
                closer()

    def __enter__(self) -> "ServiceKernel":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ misc
    normalize_query = staticmethod(normalize_query)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServiceKernel(name={self.name!r}, generation={self._generation}, "
            f"middleware={[getattr(m, 'name', type(m).__name__) for m in self._middleware]})"
        )


__all__ = ["ServiceKernel", "ServiceStats", "KERNEL_OPTIONS", "check_service_options"]
