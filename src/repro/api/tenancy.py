"""Multi-tenant model routing: one service, many named finders.

A deployment rarely serves one model: each **tenant** is a dataset × statistic
pair with its own fitted finder, cache, counters and online-learning loop.
The :class:`ModelRegistry` hosts one
:class:`~repro.api.kernel.ServiceKernel` per tenant name and routes every
:class:`~repro.api.envelopes.FindRequest` by its ``model`` field::

    registry = ModelRegistry()
    registry.register("crimes/count", crimes_finder)
    registry.load("taxi/avg-fare", "bundles/taxi.surf", cache_size=256)

    response = registry.find(FindRequest(threshold=500, model="crimes/count"))

Batches may mix tenants freely: :meth:`ModelRegistry.find_batch` groups the
requests per model, serves each group through its kernel's middleware chain
(keeping in-batch coalescing and parallel execution per tenant), and returns
the responses in input order.  The PR 3 online loop drives per-model
refresh/hot-swap through :meth:`refresh` / :meth:`refresh_all`; a
:class:`~repro.online.RefreshPolicy` can be attached to any individual kernel
(it exposes the same ``refresh``/``pending_log_entries`` surface the policy
expects).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.api.envelopes import FindRequest, FindResponse
from repro.api.kernel import (
    KERNEL_OPTIONS,
    ServiceKernel,
    ServiceStats,
    check_service_options,
)
from repro.api.middleware import Middleware
from repro.core.finder import SuRF
from repro.exceptions import ValidationError


#: Options :meth:`ModelRegistry.register` / :meth:`ModelRegistry.load` accept —
#: the kernel options minus ``name``, which the registry supplies itself.
TENANT_OPTIONS = tuple(option for option in KERNEL_OPTIONS if option != "name")


class ModelRegistry:
    """Routes typed requests to named :class:`ServiceKernel` tenants.

    Parameters
    ----------
    middleware:
        Default middleware chain for kernels built by :meth:`register` /
        :meth:`load` (``None`` = each kernel gets the standard chain).  A
        pre-built kernel keeps its own chain.
    """

    def __init__(self, middleware: Optional[Sequence[Middleware]] = None):
        self._default_middleware = list(middleware) if middleware is not None else None
        self._kernels: Dict[str, ServiceKernel] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ tenancy
    @staticmethod
    def _check_name(name: str) -> str:
        if not isinstance(name, str) or not name:
            raise ValidationError(f"model name must be a non-empty string, got {name!r}")
        return name

    def register(
        self,
        name: str,
        model: Union[SuRF, ServiceKernel],
        **options,
    ) -> ServiceKernel:
        """Add a tenant: a fitted finder (a kernel is built around it) or a
        pre-built kernel.  Unknown options and taken names raise
        :class:`ValidationError`; re-registering requires :meth:`unregister`
        first (accidental shadowing of a live tenant is never silent).
        """
        name = self._check_name(name)
        if isinstance(model, ServiceKernel):
            if options:
                raise ValidationError(
                    "options only apply when registering a finder; configure the "
                    "ServiceKernel directly instead"
                )
            kernel = model
        else:
            check_service_options(
                options, allowed=TENANT_OPTIONS, where="ModelRegistry.register"
            )
            options.setdefault("middleware", self._default_middleware)
            if options["middleware"] is None:
                options.pop("middleware")
            kernel = ServiceKernel(model, name=name, **options)
        with self._lock:
            if name in self._kernels:
                raise ValidationError(
                    f"model {name!r} is already registered; unregister it first"
                )
            # Adopt the name only once the slot is known to be free, so a
            # rejected registration never renames a live kernel.
            kernel.name = name
            self._kernels[name] = kernel
        return kernel

    def load(self, name: str, path, **options) -> ServiceKernel:
        """Register a tenant straight from an artifact bundle on disk.

        Unknown options raise :class:`ValidationError` naming the bad key
        *before* the bundle is loaded (the historical ``from_bundle`` silently
        deferred this to a ``TypeError`` after the expensive load).
        """
        self._check_name(name)
        check_service_options(options, allowed=TENANT_OPTIONS, where="ModelRegistry.load")
        return self.register(name, SuRF.load(path), **options)

    def unregister(self, name: str) -> ServiceKernel:
        """Detach and return a tenant's kernel (missing names raise)."""
        with self._lock:
            try:
                return self._kernels.pop(name)
            except KeyError:
                raise ValidationError(
                    f"unknown model {name!r}; registered: {sorted(self._kernels)}"
                ) from None

    def get(self, name: str) -> ServiceKernel:
        """The kernel serving ``name`` (unknown names raise, listing tenants)."""
        with self._lock:
            try:
                return self._kernels[name]
            except KeyError:
                raise ValidationError(
                    f"unknown model {name!r}; registered: {sorted(self._kernels)}"
                ) from None

    def names(self) -> Tuple[str, ...]:
        """All tenant names, sorted."""
        with self._lock:
            return tuple(sorted(self._kernels))

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._kernels

    def __len__(self) -> int:
        with self._lock:
            return len(self._kernels)

    # ------------------------------------------------------------------ serving
    def find(self, request: FindRequest) -> FindResponse:
        """Serve one request through the kernel its ``model`` field names."""
        if not isinstance(request, FindRequest):
            raise ValidationError(f"expected a FindRequest, got {type(request)!r}")
        return self.get(request.model).handle(request)

    def find_batch(
        self,
        requests: Sequence[FindRequest],
        max_workers: Optional[int] = None,
    ) -> List[FindResponse]:
        """Serve a mixed-tenant batch; responses come back in input order.

        Requests are grouped by model name and each group goes through its
        kernel's chain as one batch, so per-tenant coalescing, caching and
        parallel execution behave exactly as a single-tenant batch would.
        Tenant groups are independent (no shared locks, caches or RNG
        streams), so multi-group batches serve **concurrently** — one slow
        tenant does not serialise the others; ``max_workers`` is forwarded to
        each kernel's own execution pool.
        """
        groups: Dict[str, List[int]] = {}
        for index, request in enumerate(requests):
            if not isinstance(request, FindRequest):
                raise ValidationError(
                    f"expected FindRequest at position {index}, got {type(request)!r}"
                )
            groups.setdefault(request.model, []).append(index)
        # Resolve every tenant before serving any, so a typo'd model name
        # fails the whole batch up front instead of half-serving it.
        kernels = {name: self.get(name) for name in groups}
        responses: List[Optional[FindResponse]] = [None] * len(requests)

        def serve_group(item) -> None:
            name, indices = item
            batch = kernels[name].handle_batch(
                [requests[index] for index in indices], max_workers=max_workers
            )
            for index, response in zip(indices, batch):
                responses[index] = response

        if len(groups) <= 1:
            for item in groups.items():
                serve_group(item)
        else:
            with ThreadPoolExecutor(max_workers=len(groups)) as pool:
                # list() re-raises the first group's exception, if any.
                list(pool.map(serve_group, groups.items()))
        return responses  # type: ignore[return-value]

    # ------------------------------------------------------------------ online learning
    def refresh(self, name: str, force_full: bool = False):
        """Drive one tenant's refresh/hot-swap (PR 3 online loop)."""
        return self.get(name).refresh(force_full=force_full)

    def refresh_all(self, force_full: bool = False) -> Dict[str, object]:
        """Refresh every tenant that has a query log; returns name → outcome."""
        outcomes: Dict[str, object] = {}
        for name in self.names():
            kernel = self.get(name)
            if kernel.query_log is None:
                continue
            outcomes[name] = kernel.refresh(force_full=force_full)
        return outcomes

    @property
    def pending_log_entries(self) -> int:
        """Unconsumed log pairs summed across tenants (0 for log-less ones).

        Gives the registry the same ``pending_log_entries``/``refresh``-style
        surface a single kernel exposes, so a
        :class:`~repro.online.RefreshPolicy` can watch a whole fleet.
        """
        total = 0
        for name in self.names():
            kernel = self.get(name)
            if kernel.query_log is not None:
                total += kernel.pending_log_entries
        return total

    def stats(self) -> Dict[str, ServiceStats]:
        """Per-tenant counter snapshots (name → :class:`ServiceStats`)."""
        return {name: self.get(name).stats for name in self.names()}

    # ------------------------------------------------------------------ observability
    def _observabilities(self) -> List:
        """Each distinct :class:`~repro.obs.Observability` across tenants.

        Kernels may share one bundle (tenant labels keep their series apart);
        deduplication is by identity so a shared registry is scraped once.
        """
        seen: List = []
        for name in self.names():
            obs = self.get(name).observability
            if obs is not None and not any(obs is known for known in seen):
                seen.append(obs)
        return seen

    def render_metrics(self) -> str:
        """Prometheus text over every tenant (the ``GET /metrics`` body).

        One observability bundle renders directly; several distinct bundles
        are merged via snapshot into a fresh registry.  Tenants *without*
        observability still contribute: their :class:`ServiceStats` counters
        are exposed as ``repro_service_stats`` gauges, so the endpoint is
        never empty.
        """
        from repro.obs.metrics import MetricsRegistry

        observabilities = self._observabilities()
        if len(observabilities) == 1:
            merged = observabilities[0].metrics
        else:
            merged = MetricsRegistry()
            for obs in observabilities:
                merged.merge(obs.metrics.snapshot())
        bare = [
            name for name in self.names() if self.get(name).observability is None
        ]
        if bare:
            stats_gauge = merged.gauge(
                "repro_service_stats",
                "ServiceKernel lifetime counters, by name.",
                ("model", "counter"),
            )
            for name in bare:
                for counter_name, value in self.get(name).stats.as_dict().items():
                    if isinstance(value, (int, float)):
                        stats_gauge.labels(name, counter_name).set(value)
        return merged.render()

    def find_trace(self, trace_id: str):
        """A recorded trace as a JSON-safe dict, or ``None`` (``/trace/{id}``)."""
        for obs in self._observabilities():
            record = obs.tracer.get(trace_id)
            if record is not None:
                return record.to_dict()
        return None

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release every tenant's execution resources (idempotent).

        Forwards to each kernel's :meth:`ServiceKernel.close`, which shuts
        down any middleware-owned pools (e.g. a
        :class:`~repro.api.execution.ProcessExecute` worker pool).  Kernels
        stay registered and usable — a later batch simply rebuilds its pool.
        """
        for name in self.names():
            self.get(name).close()

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRegistry(models={list(self.names())})"


__all__ = ["ModelRegistry"]
