"""The composable middleware chain the service kernel runs every batch through.

The PR 2–4 serving monolith hard-wired normalisation, the Eq. 5 gate, the LRU
cache, request coalescing, thread-pool execution and query-log harvesting into
one method.  Here each of those stages is a small **middleware** with one
uniform contract::

    class Middleware:
        name = "..."
        def __call__(self, ctx: BatchContext, next: Callable) -> BatchContext:
            ...            # inspect/transform ctx on the way in
            next(ctx)      # run the rest of the chain
            ...            # inspect/transform ctx on the way out
            return ctx

The default chain is ``Normalize → SatisfiabilityGate → Cache → Coalesce →
Execute → Harvest`` (:func:`default_chain`), and a deployment inserts rate
limiting, metrics or tracing by passing its own list to
:class:`~repro.api.kernel.ServiceKernel` — no core edits.  The stages
preserve the monolith's semantics bit for bit:

* the **gate** snapshots one ``(finder, generation)`` pair and probes Eq. 5
  against it; if a hot swap lands mid-probe, :class:`Cache` raises
  :class:`StaleGeneration` and the gate retries the downstream chain against
  the new model, so probabilities, cache hits and GSO runs always belong to a
  single model generation;
* the **cache** classifies the whole batch under one lock on the way in and
  re-inserts fresh results *generation-tagged* on the way out (a result
  computed against a superseded finder is dropped, never cached);
* **coalesce** groups identical misses so each distinct query runs GSO once;
* **execute** runs the distinct queries on a thread pool (one worker when the
  finder draws from a caller-owned live ``numpy`` ``Generator``, which is not
  thread-safe), with every run against the snapshot finder;
* **harvest** ground-truths served proposals into the query log when the
  kernel has an exact engine wired (the PR 3 online loop's input).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.core.finder import RegionSearchResult, SuRF
from repro.core.query import RegionQuery
from repro.api.envelopes import FindRequest
from repro.exceptions import ValidationError
from repro.utils.validation import canonical_float


class StaleGeneration(Exception):
    """Internal control-flow signal: a hot swap landed between the Eq. 5 probe
    and the cache classification; the gate retries against the new model."""


def normalize_query(query: RegionQuery) -> RegionQuery:
    """Canonical form of a query, used as the cache key.

    Numeric fields are coerced to plain Python floats and rounded to 12
    significant digits (:func:`repro.utils.validation.canonical_float`), so a
    ``numpy.float64`` threshold, its float twin and a value carrying relative
    noise below ~1e-13 all hit the same cache entry.  Idempotent.
    """
    if not isinstance(query, RegionQuery):
        raise ValidationError(f"expected a RegionQuery, got {type(query)!r}")
    return RegionQuery(
        threshold=canonical_float(query.threshold),
        direction=query.direction,
        size_penalty=canonical_float(query.size_penalty),
    )


_NAN = float("nan")


#: Statuses decided *before* the satisfiability gate snapshots a model
#: generation (today: rate limiting).  They survive a :class:`StaleGeneration`
#: retry — the verdict did not depend on the superseded model — and the gate,
#: cache and executor all skip states carrying one.
PRE_GATE_STATUSES = frozenset({"throttled"})


class RequestState:
    """Mutable per-request slot inside a :class:`BatchContext`.

    ``__slots__``-based: the cached-hit path touches several of these fields
    per request and the benchmark holds the whole chain to <= 10% overhead
    over the PR 4 monolith.  ``deadline`` is an absolute expiry time on the
    deadline stage's clock (``None`` = unbounded); ``error`` carries the short
    exception text for ``"error"`` verdicts.
    """

    __slots__ = (
        "request",
        "query",
        "status",
        "satisfiability",
        "result",
        "elapsed_seconds",
        "deadline",
        "error",
        "trace_id",
        "timing",
    )

    def __init__(self, request: FindRequest):
        self.request = request
        self.query: Optional[RegionQuery] = None  # normalised by Normalize
        self.status = ""
        self.satisfiability = _NAN
        self.result: Optional[RegionSearchResult] = None
        self.elapsed_seconds = 0.0
        self.deadline: Optional[float] = None  # set by admission.Deadline
        self.error: Optional[str] = None
        # The id echoed on the response: the request's own, or one minted by
        # the Trace stage when observability is on (never the leader's — a
        # coalesced follower keeps its identity).
        self.trace_id: Optional[str] = request.trace_id
        self.timing: Optional[Dict[str, float]] = None  # opt-in obs breakdown

    def cache_key(self, kernel) -> Tuple[RegionQuery, Optional[int]]:
        """Cache/coalescing identity: the normalised query plus the effective
        proposal cap (a per-request ``max_proposals`` must never share a run
        with a differently-capped duplicate of the same query)."""
        cap = self.request.max_proposals
        return (self.query, cap if cap is not None else kernel.max_proposals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RequestState(status={self.status!r}, query={self.query!r})"


class BatchContext:
    """Everything one batch carries through the middleware chain.

    ``kernel`` is the owning :class:`~repro.api.kernel.ServiceKernel` (locks,
    cache, stats, config).  ``finder``/``generation`` are the model snapshot
    the gate captured.  ``pending`` is the coalescing map: each distinct
    uncached query → the request indices that asked for it.  ``extras`` is a
    free-form dict for custom middlewares (metrics, tracing, deadlines).
    """

    __slots__ = (
        "kernel",
        "states",
        "max_workers",
        "finder",
        "generation",
        "pending",
        "batch_start",
        "classify_seconds",
        "_extras",
    )

    def __init__(self, kernel, requests: Sequence[FindRequest], max_workers: Optional[int] = None):
        self.kernel = kernel
        self.states: List[RequestState] = [RequestState(request) for request in requests]
        self.max_workers = max_workers
        self.finder: Optional[SuRF] = None
        self.generation: int = -1
        self.pending: Dict[tuple, List[int]] = {}
        self.batch_start: float = time.perf_counter()
        self.classify_seconds: float = 0.0
        self._extras: Optional[dict] = None

    @property
    def extras(self) -> dict:
        """Free-form scratch space for custom middlewares (lazily allocated)."""
        if self._extras is None:
            self._extras = {}
        return self._extras

    def __len__(self) -> int:
        return len(self.states)

    def reset_classification(self) -> None:
        """Forget per-generation work so the gate can retry on a new snapshot.

        Pre-gate verdicts (:data:`PRE_GATE_STATUSES`, e.g. ``"throttled"``)
        are kept: they were decided before any model snapshot was taken, so a
        hot swap cannot invalidate them.  Deadlines are kept too — the budget
        clock keeps running across a generation retry.
        """
        for state in self.states:
            if state.status in PRE_GATE_STATUSES:
                continue
            state.status = ""
            state.satisfiability = _NAN
            state.result = None
            state.error = None
        self.pending = {}


Next = Callable[[BatchContext], BatchContext]


@runtime_checkable
class Middleware(Protocol):
    """The uniform middleware contract (any ``(ctx, next)`` callable works)."""

    def __call__(self, ctx: BatchContext, next: Next) -> BatchContext:  # pragma: no cover
        ...


def compose(chain: Sequence[Middleware]) -> Next:
    """Fold a middleware list into one handler (first element outermost)."""
    chain = list(chain)
    for position, middleware in enumerate(chain):
        if not callable(middleware):
            raise ValidationError(
                f"middleware at position {position} is not callable: {middleware!r}"
            )

    def terminal(ctx: BatchContext) -> BatchContext:
        return ctx

    handler: Next = terminal
    for middleware in reversed(chain):
        def step(ctx: BatchContext, mw=middleware, inner=handler) -> BatchContext:
            result = mw(ctx, inner)
            return ctx if result is None else result

        handler = step
    return handler


def _obs_of(ctx: BatchContext):
    """The batch's (Observability, BatchRecorder) pair, or ``(None, None)``.

    Installed by the :class:`repro.obs.runtime.Trace` stage; duck-typed so
    this module never imports :mod:`repro.obs`.  One dict read on the
    uninstrumented path (and none when no middleware touched ``extras``).
    """
    extras = ctx._extras
    if extras is None:
        return None, None
    return extras.get("obs"), extras.get("obs_trace")


# --------------------------------------------------------------------------- stages
class Normalize:
    """Canonicalise every request's query (the cache-key form).

    Built straight from the envelope fields — the request already carries
    validated numerics, so exactly one :class:`RegionQuery` is constructed
    per request (this is the cached-hit hot path).
    """

    name = "normalize"

    def __call__(self, ctx: BatchContext, next: Next) -> BatchContext:
        for state in ctx.states:
            request = state.request
            # The envelope is frozen, so its canonical query is computed once
            # and interned on the instance — repeated queries (the cache-hit
            # traffic this layer exists for) skip re-normalisation entirely.
            query = getattr(request, "_normalized", None)
            if query is None:
                query = RegionQuery(
                    threshold=canonical_float(request.threshold),
                    direction=request.direction,
                    size_penalty=canonical_float(request.size_penalty),
                )
                object.__setattr__(request, "_normalized", query)
            state.query = query
        return next(ctx)


class SatisfiabilityGate:
    """Snapshot one model generation, probe Eq. 5, and mark hopeless queries.

    The probe runs outside the kernel lock (it is an ``O(log W)`` read on an
    immutable model object); :class:`Cache` re-verifies the generation under
    the lock and raises :class:`StaleGeneration` if a refresh swapped models
    mid-probe, in which case this stage retries the whole downstream chain on
    the new snapshot — an old-generation probability is never paired with a
    new-generation cached result.
    """

    name = "satisfiability-gate"

    def __call__(self, ctx: BatchContext, next: Next) -> BatchContext:
        kernel = ctx.kernel
        while True:
            ctx.finder, ctx.generation = kernel._snapshot()
            for state in ctx.states:
                if state.status:  # pre-gate verdict (throttled): skip the probe
                    continue
                state.satisfiability = ctx.finder.satisfiability(state.query)
                if state.satisfiability <= kernel.min_satisfiability:
                    state.status = "rejected"
            try:
                return next(ctx)
            except StaleGeneration:
                _obs, recorder = _obs_of(ctx)
                if recorder is not None:
                    recorder.generation_retry(ctx, ctx.generation)
                ctx.reset_classification()


class Cache:
    """LRU lookup on the way in, generation-tagged insert on the way out.

    The whole batch is classified under **one** lock acquisition: rejected
    queries are counted, cached queries answered, and misses marked
    ``"served"`` — atomically against any concurrent refresh.  After the rest
    of the chain has produced results, fresh entries are inserted under the
    lock with the snapshot's generation tag; :meth:`ServiceKernel._cache_put`
    drops results belonging to a superseded generation.
    """

    name = "cache"

    def __call__(self, ctx: BatchContext, next: Next) -> BatchContext:
        kernel = ctx.kernel
        with kernel._lock:
            if kernel._generation != ctx.generation:
                raise StaleGeneration()
            stats = kernel._stats
            cache_get = kernel._cache_get
            default_cap = kernel.max_proposals
            for state in ctx.states:
                stats.queries += 1
                if state.status == "rejected":
                    stats.rejected += 1
                    continue
                if state.status:  # pre-gate verdict (throttled): count, skip lookup
                    stats.throttled += 1
                    continue
                cap = state.request.max_proposals
                cached = cache_get((state.query, cap if cap is not None else default_cap))
                if cached is not None:
                    stats.cache_hits += 1
                    state.status = "cached"
                    state.result = cached
                    continue
                stats.cache_misses += 1
                state.status = "served"
        next(ctx)
        if ctx.pending:
            with kernel._lock:
                for key, indices in ctx.pending.items():
                    result = ctx.states[indices[0]].result
                    if result is not None:
                        kernel._cache_put(key, result, ctx.generation)
        return ctx


class Coalesce:
    """Group identical misses: each distinct query runs GSO exactly once."""

    name = "coalesce"

    def __call__(self, ctx: BatchContext, next: Next) -> BatchContext:
        kernel = ctx.kernel
        pending: Optional[Dict[tuple, List[int]]] = None
        duplicates = 0
        for index, state in enumerate(ctx.states):
            if state.status == "served" and state.result is None:
                if pending is None:
                    pending = {}
                key = state.cache_key(kernel)
                if key in pending:
                    duplicates += 1
                    pending[key].append(index)
                else:
                    pending[key] = [index]
        if pending is not None:
            ctx.pending = pending
        if duplicates:
            with kernel._lock:
                kernel._stats.coalesced += duplicates
            _obs, recorder = _obs_of(ctx)
            if recorder is not None:
                recorder.note_coalesced(ctx)
        return next(ctx)


class Execute:
    """Run every distinct pending query against the snapshot finder.

    Distinct queries execute on a thread pool (the swarm kernels are
    NumPy-bound and release the GIL in their hot loops); seeded runs stay
    bit-identical to sequential execution because each run derives its RNG
    stream from the finder's configured seed.  A finder seeded with a live
    ``numpy`` ``Generator`` — shared, mutable, not thread-safe — is detected
    and executed on a single worker.

    The stage is **fault-isolating and deadline-aware**:

    * a run that raises marks only its own requesters ``"error"`` (the
      exception text on ``state.error``), removes the query from
      ``ctx.pending`` so nothing is cached or harvested for it, and leaves
      every other request in the batch untouched;
    * requests whose :class:`~repro.api.admission.Deadline` budget expired
      before their run started are marked ``"timeout"`` without running at
      all; a run that stalls past the *latest* deadline among its coalesced
      requesters is abandoned (the worker thread keeps running but the batch
      stops waiting) and its requesters marked ``"timeout"`` — again with no
      cache write.  Without a deadline stage in the chain nothing changes.

    ``gso_runs`` / ``timeouts`` / ``errors`` counters are accumulated locally
    per batch and folded into :class:`~repro.api.kernel.ServiceStats` under
    one lock acquisition at the end — worker threads never touch the shared
    counters (see the concurrent-increment regression test in
    ``tests/unit/test_api.py``).

    :class:`~repro.api.execution.ProcessExecute` subclasses this stage to run
    the swarm on a :class:`~concurrent.futures.ProcessPoolExecutor` instead.
    """

    name = "execute"

    #: Subclasses that must always go through a pool (e.g. the process
    #: executor) set this to False.
    _inline_allowed = True

    def __call__(self, ctx: BatchContext, next: Next) -> BatchContext:
        # Rejected/cached/throttled responses cost one classification-loop
        # share each, not the whole batch's wall clock.
        ctx.classify_seconds = time.perf_counter() - ctx.batch_start
        per_query_seconds = ctx.classify_seconds / (len(ctx.states) or 1)
        for state in ctx.states:
            if state.status != "served":  # rejected, cached or throttled
                state.elapsed_seconds = per_query_seconds

        if ctx.pending:
            self._run_pending(ctx)
        return next(ctx)

    # ------------------------------------------------------------------ hooks
    def _workers_for(self, ctx: BatchContext, num_distinct: int) -> int:
        kernel = ctx.kernel
        workers = ctx.max_workers if ctx.max_workers is not None else kernel.max_workers
        if workers is None:
            workers = min(num_distinct, os.cpu_count() or 1)
        if kernel._uses_shared_generator(ctx.finder):
            # A shared live Generator is mutated by every run and is not
            # thread-safe; concurrent draws could corrupt its state.
            workers = 1
        return workers

    def _launch(self, ctx: BatchContext, runnable):
        """Submit every runnable ``(key, indices)`` item; return (futures, finish).

        ``finish(stalled)`` is called once all outcomes are collected;
        ``stalled`` is True when at least one run was abandoned past its
        deadline, in which case the pool must not block on it.
        """
        workers = self._workers_for(ctx, len(runnable))
        pool = ThreadPoolExecutor(max_workers=max(1, workers))
        finder = ctx.finder
        obs, _recorder = _obs_of(ctx)

        def run_one(query, max_proposals):
            run_start = time.perf_counter()
            hook = obs.run_profiler(finder) if obs is not None else None
            if hook is not None:
                result = finder.find_regions(
                    query, max_proposals=max_proposals, profile_hook=hook
                )
            else:
                result = finder.find_regions(query, max_proposals=max_proposals)
            seconds = time.perf_counter() - run_start
            if hook is not None:
                return result, seconds, hook.summary()
            return result, seconds

        futures = [
            pool.submit(run_one, key[0], key[1]) for key, _indices in runnable
        ]

        def finish(stalled: bool) -> None:
            # An abandoned (timed-out) run keeps its worker thread busy;
            # shutting down without waiting lets the batch return while the
            # stray run finishes in the background and is discarded.
            pool.shutdown(wait=not stalled)

        return futures, finish

    # ------------------------------------------------------------------ the run loop
    def _run_pending(self, ctx: BatchContext) -> None:
        kernel = ctx.kernel
        clock = (
            ctx._extras.get("deadline_clock", time.monotonic)
            if ctx._extras is not None
            else time.monotonic
        )
        distinct = list(ctx.pending.items())
        runs = timeouts = errors = 0

        def give_up(key, indices, status, message=None) -> None:
            ctx.pending.pop(key, None)
            batch_seconds = time.perf_counter() - ctx.batch_start
            for index in indices:
                state = ctx.states[index]
                state.status = status
                state.result = None
                state.error = message
                state.elapsed_seconds = batch_seconds

        # Queue-wait expiry: a query every requester has already given up on
        # is never run at all.
        runnable = []
        now = clock()
        for key, indices in distinct:
            states = [ctx.states[index] for index in indices]
            if states and all(
                state.deadline is not None and now >= state.deadline for state in states
            ):
                give_up(key, indices, "timeout")
                timeouts += len(indices)
            else:
                runnable.append((key, indices))

        if runnable:
            has_deadline = any(
                ctx.states[index].deadline is not None
                for _key, indices in runnable
                for index in indices
            )
            workers = self._workers_for(ctx, len(runnable))
            if (
                self._inline_allowed
                and not has_deadline
                and (workers <= 1 or len(runnable) == 1)
            ):
                runs, timeouts, errors = self._run_inline(
                    ctx, runnable, clock, give_up, runs, timeouts, errors
                )
            else:
                runs, timeouts, errors = self._run_pooled(
                    ctx, runnable, clock, give_up, runs, timeouts, errors
                )

        if runs or timeouts or errors:
            with kernel._lock:
                stats = kernel._stats
                stats.gso_runs += runs
                stats.timeouts += timeouts
                stats.errors += errors

    def _run_inline(self, ctx, runnable, clock, give_up, runs, timeouts, errors):
        """Sequential execution (single worker / single distinct query)."""
        finder = ctx.finder
        obs, recorder = _obs_of(ctx)
        for key, indices in runnable:
            query, max_proposals = key
            hook = obs.run_profiler(finder) if obs is not None else None
            run_start = time.perf_counter()
            try:
                if hook is not None:
                    result = finder.find_regions(
                        query, max_proposals=max_proposals, profile_hook=hook
                    )
                else:
                    result = finder.find_regions(query, max_proposals=max_proposals)
            except Exception as exc:  # noqa: BLE001 - isolated per request
                give_up(key, indices, "error", f"{type(exc).__name__}: {exc}")
                errors += len(indices)
                continue
            runs += 1
            seconds = time.perf_counter() - run_start
            if obs is not None:
                self._record_run(
                    ctx, obs, recorder, indices, result, seconds,
                    hook.summary() if hook is not None else None,
                )
            timeouts += self._deliver(ctx, key, indices, result, seconds, clock)
        return runs, timeouts, errors

    def _run_pooled(self, ctx, runnable, clock, give_up, runs, timeouts, errors):
        futures, finish = self._launch(ctx, runnable)
        stalled = False
        obs, recorder = _obs_of(ctx)
        for (key, indices), future in zip(runnable, futures):
            states = [ctx.states[index] for index in indices]
            deadlines = [state.deadline for state in states]
            # The run is waited on until the *latest* requester gives up; a
            # single unbounded requester keeps the wait unbounded.
            wait_seconds = None
            if deadlines and all(deadline is not None for deadline in deadlines):
                wait_seconds = max(0.0, max(deadlines) - clock())
            try:
                # Workers return ``(result, seconds)`` or, when observability
                # is on, ``(result, seconds, extra)`` — a profile summary from
                # a thread worker, or a metrics-delta dict from a process one.
                outcome = future.result(timeout=wait_seconds)
            except FuturesTimeoutError:
                future.cancel()
                stalled = True
                give_up(key, indices, "timeout")
                timeouts += len(indices)
                continue
            except Exception as exc:  # noqa: BLE001 - isolated per request
                give_up(key, indices, "error", f"{type(exc).__name__}: {exc}")
                errors += len(indices)
                self._note_failure(exc)
                continue
            result, seconds = outcome[0], outcome[1]
            extra = outcome[2] if len(outcome) > 2 else None
            runs += 1
            if obs is not None:
                profile = extra
                merged = False
                if isinstance(extra, dict) and "metrics" in extra:
                    # A process worker already counted its run into a local
                    # registry; merging the snapshot adds those increments
                    # here, so the parent must not count the run again.
                    obs.metrics.merge(extra["metrics"])
                    profile = extra.get("profile")
                    merged = True
                self._record_run(
                    ctx, obs, recorder, indices, result, seconds, profile, merged=merged
                )
            timeouts += self._deliver(ctx, key, indices, result, seconds, clock)
        finish(stalled)
        return runs, timeouts, errors

    def _record_run(
        self, ctx, obs, recorder, indices, result, seconds, profile, merged=False
    ) -> None:
        """Count one finished optimiser run and attach its span."""
        if not merged:
            obs.record_gso_run(ctx.states[indices[0]].request.model, result, profile)
        if recorder is not None:
            recorder.run_span(indices, seconds, result, profile)

    def _note_failure(self, exc: BaseException) -> None:
        """Hook for subclasses to react to run failures (e.g. a broken pool)."""

    def _deliver(self, ctx, key, indices, result, seconds, clock) -> int:
        """Assign a completed run to its requesters, expiring late deadlines.

        Returns the number of requesters marked ``"timeout"``.  If *every*
        requester's deadline has passed the key is dropped from
        ``ctx.pending`` so the late result is never cached or harvested.
        """
        now = clock()
        delivered = timeouts = 0
        for index in indices:
            state = ctx.states[index]
            if state.deadline is not None and now > state.deadline:
                state.status = "timeout"
                state.result = None
                state.elapsed_seconds = seconds
                timeouts += 1
            else:
                state.result = result
                state.elapsed_seconds = seconds
                delivered += 1
        if delivered == 0:
            ctx.pending.pop(key, None)
        return timeouts


class Harvest:
    """Ground-truth served proposals into the query log (online loop input).

    Runs only when the kernel has both an ``exact_engine`` and a
    ``query_log``; each fresh GSO run's proposals are evaluated *exactly* and
    the finite ``([x, l], y)`` pairs recorded — the deliberate exception to
    "no data access at query time" (opt-in, feeds only the log; responses
    still report surrogate predictions).  Unlike the PR 4 monolith, which
    harvested inside each worker thread, harvesting happens *after* the
    batch's runs complete, in batch order — the log's contents are identical
    but deterministically ordered, harvest cost no longer counts against
    per-query ``elapsed_seconds``, and a parallel-capable ``exact_engine``
    (e.g. sharded) still fans each ``evaluate_many`` out internally.
    """

    name = "harvest"

    def __call__(self, ctx: BatchContext, next: Next) -> BatchContext:
        kernel = ctx.kernel
        if kernel._exact_engine is not None and kernel._query_log is not None and ctx.pending:
            from repro.surrogate.workload import RegionEvaluation

            harvested = 0
            for _key, indices in ctx.pending.items():
                result = ctx.states[indices[0]].result
                if result is None or not result.proposals:
                    continue
                regions = [proposal.region for proposal in result.proposals]
                values = np.asarray(
                    kernel._exact_engine.evaluate_many(regions), dtype=np.float64
                )
                finite = np.isfinite(values)
                kernel._query_log.record_many(
                    [
                        RegionEvaluation(region, float(value))
                        for region, value, keep in zip(regions, values, finite)
                        if keep
                    ]
                )
                harvested += int(finite.sum())
            if harvested:
                with kernel._lock:
                    kernel._stats.harvested += harvested
        return next(ctx)


def default_chain() -> List[Middleware]:
    """The standard pipeline: Normalize → Gate → Cache → Coalesce → Execute → Harvest."""
    return [Normalize(), SatisfiabilityGate(), Cache(), Coalesce(), Execute(), Harvest()]


__all__ = [
    "BatchContext",
    "RequestState",
    "Middleware",
    "StaleGeneration",
    "PRE_GATE_STATUSES",
    "compose",
    "default_chain",
    "normalize_query",
    "Normalize",
    "SatisfiabilityGate",
    "Cache",
    "Coalesce",
    "Execute",
    "Harvest",
]
